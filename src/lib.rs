//! Workspace root crate: hosts the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`). The library surface
//! simply re-exports the workspace members for convenience.

pub use icrowd;
pub use icrowd_assign as assign;
pub use icrowd_baselines as baselines;
pub use icrowd_core as core;
pub use icrowd_estimate as estimate;
pub use icrowd_graph as graph;
pub use icrowd_platform as platform;
pub use icrowd_sim as sim;
pub use icrowd_text as text;
