//! The ItemCompare campaign with the assignment-size sweep
//! (Appendix D.3): how accuracy responds to the number of workers per
//! microtask, for RandomMV and iCrowd.
//!
//! ```sh
//! cargo run --release --example item_compare
//! ```

use icrowd::core::ICrowdConfig;
use icrowd::AssignStrategy;
use icrowd_sim::campaign::{run_campaign, Approach, CampaignConfig};
use icrowd_sim::datasets::item_compare;

fn main() {
    let dataset = item_compare(42);
    let (t, d, w) = dataset.statistics();
    println!("ItemCompare: {t} comparison microtasks, {d} domains, {w} workers\n");

    println!(
        "{:<10} {:>8} {:>10} {:>10}",
        "approach", "k", "overall", "answers"
    );
    for k in [1usize, 3, 5] {
        for approach in [Approach::RandomMV, Approach::ICrowd(AssignStrategy::Adapt)] {
            let config = CampaignConfig {
                icrowd: ICrowdConfig {
                    assignment_size: k,
                    ..CampaignConfig::default().icrowd
                },
                ..Default::default()
            };
            let r = run_campaign(&dataset, approach, &config);
            println!(
                "{:<10} {:>8} {:>10.3} {:>10}",
                r.approach, k, r.overall, r.answers
            );
        }
    }

    // The paper's Section 6.4 note: the Auto domain has no strong worker
    // (its best is capped at 0.76), so iCrowd's edge there is limited.
    let config = CampaignConfig::default();
    let r = run_campaign(&dataset, Approach::ICrowd(AssignStrategy::Adapt), &config);
    println!("\niCrowd per-domain accuracies (note the capped Auto domain):");
    for dacc in &r.per_domain {
        println!("  {:<8} {:.3}", dacc.domain, dacc.accuracy());
    }
}
