//! The YahooQA campaign: iCrowd against every baseline on the paper's
//! first dataset (Section 6.1).
//!
//! ```sh
//! cargo run --release --example yahooqa_eval
//! ```

use icrowd::AssignStrategy;
use icrowd_sim::campaign::{run_campaign, Approach, CampaignConfig};
use icrowd_sim::datasets::yahooqa;

fn main() {
    let dataset = yahooqa(42);
    let (t, d, w) = dataset.statistics();
    println!("YahooQA: {t} question-answer microtasks, {d} domains, {w} workers\n");

    let config = CampaignConfig::default();
    println!(
        "{:<12} {:>8} {:>9} {:>7} {:>12}",
        "approach", "overall", "answers", "cents", "elapsed(ms)"
    );
    for approach in [
        Approach::RandomMV,
        Approach::RandomEM,
        Approach::AvgAccPV,
        Approach::ICrowd(AssignStrategy::QfOnly),
        Approach::ICrowd(AssignStrategy::BestEffort),
        Approach::ICrowd(AssignStrategy::Adapt),
    ] {
        let r = run_campaign(&dataset, approach, &config);
        println!(
            "{:<12} {:>8.3} {:>9} {:>7} {:>12.0}",
            r.approach, r.overall, r.answers, r.spend_cents, r.elapsed_ms
        );
    }

    println!("\nper-domain view of the full iCrowd run:");
    let r = run_campaign(&dataset, Approach::ICrowd(AssignStrategy::Adapt), &config);
    for d in &r.per_domain {
        println!(
            "  {:<16} {:.3} ({}/{})",
            d.domain,
            d.accuracy(),
            d.correct,
            d.total
        );
    }
}
