//! Quickstart: run iCrowd end-to-end on the paper's Table-1 microtasks
//! with a tiny simulated crowd.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use icrowd::core::{ICrowdConfig, Tick, WarmupConfig};
use icrowd::platform::market::{MarketConfig, Marketplace, WorkerBehavior, WorkerScript};
use icrowd::{AssignStrategy, ICrowdBuilder};
use icrowd_sim::datasets::table1::table1;
use icrowd_text::{JaccardSimilarity, Tokenizer};

fn main() {
    // 1. The microtasks: Table 1's twelve entity-resolution questions,
    //    with requester ground truth on the qualification subset.
    let dataset = table1();

    // 2. Build the framework: Jaccard similarity at threshold 0.5
    //    regenerates the paper's Figure-3 graph; qualification tasks are
    //    selected by influence maximization automatically.
    let metric = JaccardSimilarity::new(&dataset.tasks, &Tokenizer::keeping_stopwords());
    let mut server = ICrowdBuilder::new(dataset.tasks.clone())
        .config(ICrowdConfig {
            similarity_threshold: 0.5,
            warmup: WarmupConfig {
                num_qualification: 3,
                ..Default::default()
            },
            ..Default::default()
        })
        .strategy(AssignStrategy::Adapt)
        .metric(&metric)
        .build();

    // 3. A simulated crowd: three product-line experts, a generalist and
    //    a spammer (see the dataset's worker profiles).
    let workers = dataset.spawn_workers(7);
    let behaviors: Vec<(WorkerScript, Box<dyn WorkerBehavior>)> = workers
        .into_iter()
        .map(|w| {
            (
                WorkerScript::default(),
                Box::new(w) as Box<dyn WorkerBehavior>,
            )
        })
        .collect();

    // 4. Run the marketplace until every microtask is globally completed.
    let market = Marketplace::new(dataset.tasks.clone(), MarketConfig::default());
    let outcome = market.run_sequential(&mut server, behaviors);

    // 5. Inspect the results.
    println!("campaign finished at {}", outcome.end);
    println!(
        "answers collected: {} (crowd cost: {} cents)",
        outcome.answers,
        outcome.ledger.total_spend()
    );
    let results = server.results();
    let mut correct = 0;
    for task in dataset.tasks.iter() {
        let predicted = results[&task.id];
        let truth = task.ground_truth.unwrap();
        if predicted == truth {
            correct += 1;
        }
        println!(
            "  {}: predicted {predicted}, truth {truth} {}",
            task.id,
            if predicted == truth { "✓" } else { "✗" }
        );
    }
    println!(
        "accuracy: {correct}/{} = {:.0}%",
        dataset.tasks.len(),
        100.0 * correct as f64 / dataset.tasks.len() as f64
    );
    assert!(Tick::ZERO < outcome.end);
}
