//! Entity resolution at scale — the CrowdER-style workload the paper's
//! introduction motivates.
//!
//! Generates 150 product-matching microtasks across three product lines
//! (phones, tablets, audio), simulates a crowd of line-specific experts,
//! and shows how iCrowd discovers each worker's strong line through the
//! similarity graph and routes pairs accordingly — comparing the final
//! quality against random assignment.
//!
//! ```sh
//! cargo run --release --example entity_resolution
//! ```

use icrowd::core::{Answer, DomainRegistry, Microtask, TaskSet};
use icrowd::AssignStrategy;
use icrowd_sim::campaign::{run_campaign, Approach, CampaignConfig, MetricChoice};
use icrowd_sim::datasets::Dataset;
use icrowd_sim::profiles::WorkerProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates record-pair microtasks for one product line.
fn product_pairs(
    tasks: &mut TaskSet,
    domains: &mut DomainRegistry,
    line: &str,
    models: &[&str],
    attrs: &[&str],
    count: usize,
    rng: &mut StdRng,
) {
    let domain = domains.intern(line);
    for _ in 0..count {
        let model_a = models[rng.gen_range(0..models.len())];
        let matched = rng.gen_bool(0.4);
        let model_b = if matched {
            model_a
        } else {
            models[rng.gen_range(0..models.len())]
        };
        let matched = model_a == model_b; // random collision may match
        let attr = |rng: &mut StdRng| attrs[rng.gen_range(0..attrs.len())];
        let text = format!(
            "{line} {model_a} {} {} vs {line} {model_b} {} {}",
            attr(rng),
            attr(rng),
            attr(rng),
            attr(rng)
        );
        tasks.push_with(|id| {
            Microtask::binary(id, text.clone())
                .with_domain(domain)
                .with_ground_truth(if matched { Answer::YES } else { Answer::NO })
        });
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut tasks = TaskSet::new();
    let mut domains = DomainRegistry::new();
    product_pairs(
        &mut tasks,
        &mut domains,
        "phone",
        &["astra5", "astra5pro", "nimbus2", "nimbus2e", "pixelite"],
        &["64gb", "128gb", "black", "silver", "5g", "dualsim"],
        50,
        &mut rng,
    );
    product_pairs(
        &mut tasks,
        &mut domains,
        "tablet",
        &["slate8", "slate8plus", "canvas11", "canvas11x", "folio"],
        &["wifi", "lte", "32gb", "256gb", "stylus", "keyboard"],
        50,
        &mut rng,
    );
    product_pairs(
        &mut tasks,
        &mut domains,
        "audio",
        &["pulsebuds", "pulsebuds2", "stagepro", "stagemini", "aria"],
        &["anc", "wireless", "charging", "case", "bass", "studio"],
        50,
        &mut rng,
    );

    // A crowd of line specialists plus noise.
    let mut workers = Vec::new();
    for (i, line) in ["phone", "tablet", "audio"].iter().enumerate() {
        for j in 0..4 {
            let mut acc = vec![0.45; 3];
            acc[i] = 0.88 + 0.02 * j as f64;
            workers.push(WorkerProfile {
                name: format!("{line}-expert-{j}"),
                domain_accuracy: acc,
            });
        }
    }
    for j in 0..6 {
        workers.push(WorkerProfile {
            name: format!("casual-{j}"),
            domain_accuracy: vec![0.55, 0.55, 0.55],
        });
    }

    let dataset = Dataset {
        name: "EntityResolution".into(),
        tasks,
        domains,
        workers,
    };

    let config = CampaignConfig {
        metric: MetricChoice::CosTfIdf,
        ..Default::default()
    };
    println!("entity-resolution campaign: 150 pairs, 3 product lines, 18 workers\n");
    for approach in [Approach::RandomMV, Approach::ICrowd(AssignStrategy::Adapt)] {
        let r = run_campaign(&dataset, approach, &config);
        println!(
            "{:<10} overall accuracy {:.3} ({} answers, {} cents)",
            r.approach, r.overall, r.answers, r.spend_cents
        );
        for d in &r.per_domain {
            println!("    {:<8} {:.3}", d.domain, d.accuracy());
        }
    }
}
