//! The Appendix-A deployment loop, demonstrated in concurrent mode:
//! worker threads fire ExternalQuestion requests at a single-threaded
//! iCrowd server over channels, exactly like AMT callbacks hitting the
//! paper's web server. Prints the event flow and the payment ledger.
//!
//! ```sh
//! cargo run --release --example amt_server
//! ```

use icrowd::core::{ICrowdConfig, WarmupConfig};
use icrowd::platform::concurrent::run_concurrent;
use icrowd::platform::market::WorkerBehavior;
use icrowd::platform::ExternalQuestionServer;
use icrowd::{AssignStrategy, ICrowdBuilder};
use icrowd_sim::datasets::table1::table1;
use icrowd_text::{JaccardSimilarity, Tokenizer};

fn main() {
    let dataset = table1();
    let metric = JaccardSimilarity::new(&dataset.tasks, &Tokenizer::keeping_stopwords());
    let mut server = ICrowdBuilder::new(dataset.tasks.clone())
        .config(ICrowdConfig {
            similarity_threshold: 0.5,
            warmup: WarmupConfig {
                num_qualification: 3,
                ..Default::default()
            },
            ..Default::default()
        })
        .strategy(AssignStrategy::Adapt)
        .metric(&metric)
        .build();

    // Five worker threads hammer the server concurrently.
    let behaviors: Vec<Box<dyn WorkerBehavior + Send>> = dataset
        .spawn_workers(11)
        .into_iter()
        .map(|w| Box::new(w) as Box<dyn WorkerBehavior + Send>)
        .collect();

    println!("starting the concurrent ExternalQuestion loop with 5 worker threads...");
    let outcome = run_concurrent(&dataset.tasks, &mut server, behaviors, 30);
    println!(
        "collected {} answers; per-worker: {:?}",
        outcome.answers, outcome.per_worker
    );
    println!(
        "campaign complete: {} (declined requests: {}, performance tests: {})",
        server.is_complete(),
        server.declined_requests(),
        server.test_assignments()
    );

    let results = server.results();
    let correct = dataset
        .tasks
        .iter()
        .filter(|t| results.get(&t.id) == t.ground_truth.as_ref())
        .count();
    println!(
        "final accuracy: {correct}/{} microtasks",
        dataset.tasks.len()
    );
}
