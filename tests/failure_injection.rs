//! Failure injection: abandoned assignments, protocol slop, injected
//! marketplace faults and worker churn must not wedge the framework —
//! and must never corrupt its vote or payment accounting.

use icrowd::core::{Answer, ICrowdConfig, Microtask, TaskId, TaskSet, Tick, WarmupConfig};
use icrowd::platform::{
    ChurnSpike, ExternalQuestionServer, FaultConfig, MarketConfig, Marketplace, RejectReason,
    SubmitOutcome, WorkerScript,
};
use icrowd::{AssignStrategy, ICrowd, ICrowdBuilder};
use icrowd_platform::market::WorkerBehavior;
use icrowd_text::metric::MatrixSimilarity;
use proptest::prelude::*;

fn tasks(n: u32) -> TaskSet {
    (0..n)
        .map(|i| Microtask::binary(TaskId(i), format!("task {i}")).with_ground_truth(Answer::YES))
        .collect()
}

fn server(n: u32, window: u64) -> ICrowd {
    let ts = tasks(n);
    let metric = MatrixSimilarity::from_edges(&ts, &[], "empty");
    ICrowdBuilder::new(ts)
        .config(ICrowdConfig {
            activity_window: window,
            warmup: WarmupConfig {
                num_qualification: 1,
                ..Default::default()
            },
            ..Default::default()
        })
        .strategy(AssignStrategy::Adapt)
        .metric(&metric)
        .build()
}

#[test]
fn abandoned_assignments_release_capacity_after_the_activity_window() {
    let mut srv = server(4, 10);
    // Ghost worker passes warm-up, takes a regular task and vanishes.
    let q = srv.request_task("GHOST", Tick(0)).unwrap();
    srv.submit_answer("GHOST", q, Answer::YES, Tick(0));
    let abandoned = srv.request_task("GHOST", Tick(1)).unwrap();

    // Three diligent workers churn; after the window expires the
    // abandoned task must become assignable again and the campaign must
    // complete.
    let mut tick = 20u64; // past GHOST's activity window
    let mut guard = 0;
    while !srv.is_complete() {
        guard += 1;
        assert!(guard < 400, "abandoned task wedged the campaign");
        for name in ["A", "B", "C"] {
            if let Some(t) = srv.request_task(name, Tick(tick)) {
                srv.submit_answer(name, t, Answer::YES, Tick(tick));
            }
            tick += 1;
        }
    }
    // The abandoned task completed via other workers.
    assert!(srv.consensus().is_completed(abandoned));
}

#[test]
fn duplicate_and_unsolicited_submissions_are_rejected() {
    let mut srv = server(3, 30);
    let q = srv.request_task("A", Tick(0)).unwrap();
    assert_eq!(
        srv.submit_answer("A", q, Answer::YES, Tick(0)),
        SubmitOutcome::Accepted
    );
    let t1 = srv.request_task("A", Tick(1)).unwrap();
    assert_eq!(
        srv.submit_answer("A", t1, Answer::YES, Tick(1)),
        SubmitOutcome::Accepted
    );
    // Submitting the same task twice is a duplicate: refused, the first
    // vote stands untouched.
    assert_eq!(
        srv.submit_answer("A", t1, Answer::NO, Tick(2)),
        SubmitOutcome::Rejected(RejectReason::Duplicate)
    );
    assert_eq!(
        srv.consensus()
            .votes(t1)
            .answer_of(icrowd::core::WorkerId(0)),
        Some(Answer::YES),
        "duplicate must not overwrite the recorded vote"
    );
    // An answer for a task never assigned to B (after B's own warm-up
    // flow) is unsolicited: refused, never counted.
    let qb = srv.request_task("B", Tick(3)).unwrap();
    srv.submit_answer("B", qb, Answer::YES, Tick(3));
    let unsolicited = TaskId(if t1 == TaskId(2) { 1 } else { 2 });
    assert_eq!(
        srv.submit_answer("B", unsolicited, Answer::NO, Tick(4)),
        SubmitOutcome::Rejected(RejectReason::NotAssigned)
    );
    assert!(srv
        .consensus()
        .votes(unsolicited)
        .answer_of(icrowd::core::WorkerId(1))
        .is_none());
    assert_eq!(srv.answers_rejected(), 2);
}

#[test]
fn expired_lease_answers_are_rejected_and_the_task_is_reassigned() {
    let mut srv = server(4, 5); // lease = activity window = 5 ticks
    let qa = srv.request_task("A", Tick(0)).unwrap();
    srv.submit_answer("A", qa, Answer::YES, Tick(0));
    let stale = srv.request_task("A", Tick(1)).unwrap(); // lease expires at 6
    assert_eq!(srv.leases_expired(), 0);

    // B's much-later request sweeps expired leases: A's assignment is
    // reclaimed and the task re-enters the candidate pool.
    let qb = srv.request_task("B", Tick(50)).unwrap();
    srv.submit_answer("B", qb, Answer::YES, Tick(50));
    assert_eq!(srv.leases_expired(), 1);

    // A's answer arrives after her lease was reclaimed: refused.
    assert_eq!(
        srv.submit_answer("A", stale, Answer::YES, Tick(51)),
        SubmitOutcome::Rejected(RejectReason::LeaseExpired)
    );
    assert_eq!(srv.answers_rejected(), 1);

    // Diligent workers complete the campaign, reclaimed task included.
    let mut tick = 52u64;
    let mut guard = 0;
    while !srv.is_complete() {
        guard += 1;
        assert!(guard < 400, "reclaimed task wedged the campaign");
        for name in ["B", "C", "D"] {
            if let Some(t) = srv.request_task(name, Tick(tick)) {
                srv.submit_answer(name, t, Answer::YES, Tick(tick));
            }
            tick += 1;
        }
    }
    assert!(srv.consensus().is_completed(stale));
}

#[test]
fn a_crowd_of_rejected_workers_cannot_complete_but_does_not_panic() {
    // 8 tasks, 3 of them qualification: 5 regular tasks can never
    // complete once every worker is rejected.
    let ts = tasks(8);
    let metric = MatrixSimilarity::from_edges(&ts, &[], "empty");
    let mut srv = ICrowdBuilder::new(ts)
        .config(ICrowdConfig {
            warmup: WarmupConfig {
                num_qualification: 3,
                reject_threshold: 0.9,
                reject_after: 3,
            },
            ..Default::default()
        })
        .strategy(AssignStrategy::Adapt)
        .metric(&metric)
        .build();
    // Both workers answer all qualifications wrong → rejected.
    for name in ["A", "B"] {
        for tick in 0..3 {
            let t = srv.request_task(name, Tick(tick)).unwrap();
            srv.submit_answer(name, t, Answer::NO, Tick(tick));
        }
        assert_eq!(srv.request_task(name, Tick(10)), None, "{name} rejected");
    }
    assert!(!srv.is_complete());
    assert!(srv.declined_requests() >= 2);
}

#[test]
fn re_requests_after_stale_purge_get_fresh_assignments() {
    let mut srv = server(5, 5);
    let q = srv.request_task("A", Tick(0)).unwrap();
    srv.submit_answer("A", q, Answer::YES, Tick(0));
    let first = srv.request_task("A", Tick(1)).unwrap();
    // A goes silent past the window, then returns: her stale in-flight
    // was purged, and the re-request hands out a (possibly identical,
    // but freshly tracked) assignment without panicking.
    let second = srv.request_task("A", Tick(100)).unwrap();
    srv.submit_answer("A", second, Answer::YES, Tick(100));
    let _ = first;
    // Subsequent flow still works.
    assert!(srv.request_task("A", Tick(101)).is_some());
}

/// Workers who always answer the ground truth (YES for `tasks()`).
struct Truthful;
impl WorkerBehavior for Truthful {
    fn answer(&mut self, task: &Microtask) -> Answer {
        task.ground_truth.unwrap_or(Answer::YES)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any fault plan — drops, duplicates, late delivery, stalls and a
    /// churn spike in one run — leaves the books balanced: the campaign
    /// terminates, every payment matches the per-assignment reward, no
    /// task collects more than `k` votes, and no vote is double-counted.
    #[test]
    fn random_fault_plans_never_corrupt_the_accounting(
        seed in 0u64..1_000,
        drop_rate in 0.0f64..0.4,
        dup_rate in 0.0f64..0.4,
        late_rate in 0.0f64..0.4,
        stall_rate in 0.0f64..0.1,
        churn_fraction in 0.0f64..0.3,
    ) {
        let n = 8u32;
        let ts = tasks(n);
        let metric = MatrixSimilarity::from_edges(&ts, &[], "empty");
        let mut srv = ICrowdBuilder::new(ts.clone())
            .config(ICrowdConfig {
                warmup: WarmupConfig {
                    num_qualification: 1,
                    ..Default::default()
                },
                ..Default::default()
            })
            .strategy(AssignStrategy::Adapt)
            .metric(&metric)
            .build();
        let k = ICrowdConfig::default().assignment_size;
        let market = Marketplace::new(ts, MarketConfig::default());
        let behaviors: Vec<(WorkerScript, Box<dyn WorkerBehavior>)> = (0..12)
            .map(|i| {
                (
                    WorkerScript {
                        arrival: Tick(i as u64),
                        max_answers: 60,
                        ticks_per_answer: 1,
                    },
                    Box::new(Truthful) as Box<dyn WorkerBehavior>,
                )
            })
            .collect();
        let faults = FaultConfig {
            seed,
            drop_rate,
            dup_rate,
            late_rate,
            stall_rate,
            churn: vec![ChurnSpike { at: 10, fraction: churn_fraction }],
            ..Default::default()
        };
        let outcome = market.run_with_faults(&mut srv, behaviors, Some(faults.clone()));

        prop_assert!(outcome.accounting.balanced(), "{:?}", outcome.accounting);
        prop_assert_eq!(
            outcome.ledger.total_spend(),
            outcome.ledger.num_payments() as u64
                * u64::from(MarketConfig::default().reward_cents)
        );
        prop_assert_eq!(outcome.accounting.answers_rejected, srv.answers_rejected());
        for t in 0..n {
            prop_assert!(
                srv.consensus().votes(TaskId(t)).len() <= k,
                "task {t} holds more than k votes"
            );
        }
        // Heap-based lease expiry and counter-based remaining capacity
        // must match their swept/recomputed oracles after any fault mix.
        srv.validate_incremental_state();

        // Same fault plan against a capped-pool server: the incremental
        // candidate caches must also survive drops, dups, expiries and
        // churn without drifting from the estimator.
        let ts2 = tasks(n);
        let metric2 = MatrixSimilarity::from_edges(&ts2, &[], "empty");
        let mut capped = ICrowdBuilder::new(ts2.clone())
            .config(ICrowdConfig {
                warmup: WarmupConfig {
                    num_qualification: 1,
                    ..Default::default()
                },
                ..Default::default()
            })
            .strategy(AssignStrategy::Adapt)
            .metric(&metric2)
            .candidate_limit(4)
            .build();
        let market2 = Marketplace::new(ts2, MarketConfig::default());
        let behaviors2: Vec<(WorkerScript, Box<dyn WorkerBehavior>)> = (0..12)
            .map(|i| {
                (
                    WorkerScript {
                        arrival: Tick(i as u64),
                        max_answers: 60,
                        ticks_per_answer: 1,
                    },
                    Box::new(Truthful) as Box<dyn WorkerBehavior>,
                )
            })
            .collect();
        let outcome2 = market2.run_with_faults(&mut capped, behaviors2, Some(faults));
        prop_assert!(outcome2.accounting.balanced(), "{:?}", outcome2.accounting);
        prop_assert_eq!(outcome2.accounting.answers_rejected, capped.answers_rejected());
        capped.validate_incremental_state();
    }
}
