//! Failure injection: abandoned assignments, protocol slop and worker
//! churn must not wedge the framework.

use icrowd::core::{Answer, ICrowdConfig, Microtask, TaskId, TaskSet, Tick, WarmupConfig};
use icrowd::platform::ExternalQuestionServer;
use icrowd::{AssignStrategy, ICrowd, ICrowdBuilder};
use icrowd_text::metric::MatrixSimilarity;

fn tasks(n: u32) -> TaskSet {
    (0..n)
        .map(|i| Microtask::binary(TaskId(i), format!("task {i}")).with_ground_truth(Answer::YES))
        .collect()
}

fn server(n: u32, window: u64) -> ICrowd {
    let ts = tasks(n);
    let metric = MatrixSimilarity::from_edges(&ts, &[], "empty");
    ICrowdBuilder::new(ts)
        .config(ICrowdConfig {
            activity_window: window,
            warmup: WarmupConfig {
                num_qualification: 1,
                ..Default::default()
            },
            ..Default::default()
        })
        .strategy(AssignStrategy::Adapt)
        .metric(&metric)
        .build()
}

#[test]
fn abandoned_assignments_release_capacity_after_the_activity_window() {
    let mut srv = server(4, 10);
    // Ghost worker passes warm-up, takes a regular task and vanishes.
    let q = srv.request_task("GHOST", Tick(0)).unwrap();
    srv.submit_answer("GHOST", q, Answer::YES, Tick(0));
    let abandoned = srv.request_task("GHOST", Tick(1)).unwrap();

    // Three diligent workers churn; after the window expires the
    // abandoned task must become assignable again and the campaign must
    // complete.
    let mut tick = 20u64; // past GHOST's activity window
    let mut guard = 0;
    while !srv.is_complete() {
        guard += 1;
        assert!(guard < 400, "abandoned task wedged the campaign");
        for name in ["A", "B", "C"] {
            if let Some(t) = srv.request_task(name, Tick(tick)) {
                srv.submit_answer(name, t, Answer::YES, Tick(tick));
            }
            tick += 1;
        }
    }
    // The abandoned task completed via other workers.
    assert!(srv.consensus().is_completed(abandoned));
}

#[test]
fn duplicate_and_unsolicited_submissions_are_tolerated() {
    let mut srv = server(3, 30);
    let q = srv.request_task("A", Tick(0)).unwrap();
    srv.submit_answer("A", q, Answer::YES, Tick(0));
    let t1 = srv.request_task("A", Tick(1)).unwrap();
    srv.submit_answer("A", t1, Answer::YES, Tick(1));
    // Duplicate submission of the same task: dropped, no panic.
    srv.submit_answer("A", t1, Answer::NO, Tick(2));
    // Unsolicited submission for a task never assigned to B (after B's
    // own warm-up flows): tolerated.
    let qb = srv.request_task("B", Tick(3)).unwrap();
    srv.submit_answer("B", qb, Answer::YES, Tick(3));
    srv.submit_answer("B", TaskId(2), Answer::NO, Tick(4));
    // The vote actually counted as a regular vote for B.
    assert!(srv
        .consensus()
        .votes(TaskId(2))
        .answer_of(icrowd::core::WorkerId(1))
        .is_some());
}

#[test]
fn a_crowd_of_rejected_workers_cannot_complete_but_does_not_panic() {
    // 8 tasks, 3 of them qualification: 5 regular tasks can never
    // complete once every worker is rejected.
    let ts = tasks(8);
    let metric = MatrixSimilarity::from_edges(&ts, &[], "empty");
    let mut srv = ICrowdBuilder::new(ts)
        .config(ICrowdConfig {
            warmup: WarmupConfig {
                num_qualification: 3,
                reject_threshold: 0.9,
                reject_after: 3,
            },
            ..Default::default()
        })
        .strategy(AssignStrategy::Adapt)
        .metric(&metric)
        .build();
    // Both workers answer all qualifications wrong → rejected.
    for name in ["A", "B"] {
        for tick in 0..3 {
            let t = srv.request_task(name, Tick(tick)).unwrap();
            srv.submit_answer(name, t, Answer::NO, Tick(tick));
        }
        assert_eq!(srv.request_task(name, Tick(10)), None, "{name} rejected");
    }
    assert!(!srv.is_complete());
    assert!(srv.declined_requests() >= 2);
}

#[test]
fn re_requests_after_stale_purge_get_fresh_assignments() {
    let mut srv = server(5, 5);
    let q = srv.request_task("A", Tick(0)).unwrap();
    srv.submit_answer("A", q, Answer::YES, Tick(0));
    let first = srv.request_task("A", Tick(1)).unwrap();
    // A goes silent past the window, then returns: her stale in-flight
    // was purged, and the re-request hands out a (possibly identical,
    // but freshly tracked) assignment without panicking.
    let second = srv.request_task("A", Tick(100)).unwrap();
    srv.submit_answer("A", second, Answer::YES, Tick(100));
    let _ = first;
    // Subsequent flow still works.
    assert!(srv.request_task("A", Tick(101)).is_some());
}
