//! Platform-loop invariants: payments balance against events, the
//! concurrent deployment matches the sequential one in aggregate, and
//! the event log replays.

use icrowd::core::{Answer, ICrowdConfig, Microtask, TaskId, TaskSet, WarmupConfig};
use icrowd::platform::concurrent::run_concurrent;
use icrowd::platform::market::{MarketConfig, Marketplace, WorkerBehavior, WorkerScript};
use icrowd::platform::{EventLog, ExternalQuestionServer, MarketEvent};
use icrowd::{AssignStrategy, ICrowdBuilder};
use icrowd_sim::datasets::table1;

fn build_server(tasks: TaskSet) -> impl ExternalQuestionServer {
    let metric =
        icrowd::text::JaccardSimilarity::new(&tasks, &icrowd::text::Tokenizer::keeping_stopwords());
    ICrowdBuilder::new(tasks)
        .config(ICrowdConfig {
            similarity_threshold: 0.4,
            warmup: WarmupConfig {
                num_qualification: 2,
                ..Default::default()
            },
            ..Default::default()
        })
        .strategy(AssignStrategy::Adapt)
        .metric(&metric)
        .build()
}

fn crowd(n: usize) -> Vec<(WorkerScript, Box<dyn WorkerBehavior>)> {
    table1()
        .spawn_workers(3)
        .into_iter()
        .cycle()
        .take(n)
        .map(|w| {
            (
                WorkerScript::default(),
                Box::new(w) as Box<dyn WorkerBehavior>,
            )
        })
        .collect()
}

#[test]
fn payments_balance_against_the_event_log() {
    let ds = table1();
    let mut server = build_server(ds.tasks.clone());
    let market = Marketplace::new(ds.tasks.clone(), MarketConfig::default());
    let outcome = market.run_sequential(&mut server, crowd(5));

    // Ledger totals equal the HitSubmitted events' rewards.
    let submitted: u64 = outcome
        .events
        .events()
        .iter()
        .filter_map(|e| match e {
            MarketEvent::HitSubmitted { reward_cents, .. } => Some(u64::from(*reward_cents)),
            _ => None,
        })
        .sum();
    assert_eq!(outcome.ledger.total_spend(), submitted);
    // Earnings sum equals spend.
    let earned: u64 = outcome.ledger.iter().map(|(_, c)| c).sum();
    assert_eq!(earned, outcome.ledger.total_spend());
    // Every answer event corresponds to exactly one collected answer.
    let answer_events = outcome
        .events
        .events()
        .iter()
        .filter(|e| matches!(e, MarketEvent::AnswerSubmitted { .. }))
        .count();
    assert_eq!(answer_events, outcome.answers);
}

#[test]
fn event_log_round_trips_through_json() {
    let ds = table1();
    let mut server = build_server(ds.tasks.clone());
    let market = Marketplace::new(ds.tasks.clone(), MarketConfig::default());
    let outcome = market.run_sequential(&mut server, crowd(4));
    let text = outcome.events.to_json_lines();
    let parsed = EventLog::from_json_lines(&text).expect("replayable log");
    assert_eq!(parsed.events(), outcome.events.events());
}

#[test]
fn concurrent_mode_completes_the_same_campaign() {
    let ds = table1();
    // Sequential reference.
    let mut seq_server = build_server(ds.tasks.clone());
    let market = Marketplace::new(ds.tasks.clone(), MarketConfig::default());
    let seq = market.run_sequential(&mut seq_server, crowd(5));
    assert!(seq_server.is_complete());

    // Concurrent run with the same crowd profiles.
    let mut conc_server = build_server(ds.tasks.clone());
    let behaviors: Vec<Box<dyn WorkerBehavior + Send>> = table1()
        .spawn_workers(3)
        .into_iter()
        .map(|w| Box::new(w) as Box<dyn WorkerBehavior + Send>)
        .collect();
    let conc = run_concurrent(&ds.tasks, &mut conc_server, behaviors, usize::MAX);
    assert!(conc_server.is_complete(), "concurrent campaign must finish");
    // Aggregate invariant: both collect enough answers to complete every
    // non-gold task (k vote capacity, early consensus allowed).
    assert!(conc.answers > 0);
    assert!(seq.answers > 0);
    // Workers fire-and-forget their submissions, so `per_worker` counts
    // answers *produced*; the server may reject a few that lose a race
    // (task already at consensus when the submission lands). Accepted
    // answers can therefore trail production, never exceed it.
    let per_worker_total: usize = conc.per_worker.iter().sum();
    assert!(conc.answers <= per_worker_total);
}

#[test]
fn sold_out_marketplace_stops_cleanly() {
    // One HIT with one assignment and ten tasks per HIT: the second
    // worker cannot accept anything and leaves without events exploding.
    let tasks: TaskSet = (0..4)
        .map(|i| Microtask::binary(TaskId(i), format!("t{i}")).with_ground_truth(Answer::YES))
        .collect();
    let mut server = build_server(tasks.clone());
    let config = MarketConfig {
        num_hits: 1,
        assignments_per_hit: 1,
        ..Default::default()
    };
    let market = Marketplace::new(tasks, config);
    let outcome = market.run_sequential(&mut server, crowd(2));
    // Only the first worker worked.
    let workers_with_answers: std::collections::HashSet<_> = outcome
        .events
        .events()
        .iter()
        .filter_map(|e| match e {
            MarketEvent::AnswerSubmitted { worker, .. } => Some(worker.clone()),
            _ => None,
        })
        .collect();
    assert!(workers_with_answers.len() <= 1);
}
