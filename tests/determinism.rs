//! Determinism: identical seeds must reproduce identical campaigns,
//! bit for bit, across the whole stack — datasets, LDA, graph, PPR,
//! assignment, marketplace and aggregation.

use icrowd::AssignStrategy;
use icrowd_sim::campaign::{run_campaign, Approach, CampaignConfig, MetricChoice};
use icrowd_sim::datasets::{item_compare, yahooqa};

#[test]
fn same_seed_reproduces_the_whole_campaign() {
    let config = CampaignConfig::default();
    for approach in [
        Approach::ICrowd(AssignStrategy::Adapt),
        Approach::RandomMV,
        Approach::RandomEM,
        Approach::AvgAccPV,
    ] {
        let a = run_campaign(&yahooqa(9), approach, &config);
        let b = run_campaign(&yahooqa(9), approach, &config);
        assert_eq!(a.overall, b.overall, "{}", a.approach);
        assert_eq!(a.answers, b.answers, "{}", a.approach);
        assert_eq!(a.spend_cents, b.spend_cents, "{}", a.approach);
        assert_eq!(a.worker_assignments, b.worker_assignments, "{}", a.approach);
        assert_eq!(a.gold, b.gold, "{}", a.approach);
        for (x, y) in a.per_domain.iter().zip(&b.per_domain) {
            assert_eq!(x, y, "{}", a.approach);
        }
    }
}

#[test]
fn different_seeds_produce_different_campaigns() {
    let config = CampaignConfig::default();
    let a = run_campaign(
        &item_compare(1),
        Approach::ICrowd(AssignStrategy::Adapt),
        &CampaignConfig {
            seed: 1,
            ..config.clone()
        },
    );
    let b = run_campaign(
        &item_compare(2),
        Approach::ICrowd(AssignStrategy::Adapt),
        &CampaignConfig { seed: 2, ..config },
    );
    // Answers counts colliding is possible but both colliding with
    // identical per-worker distributions is (astronomically) not.
    assert!(
        a.worker_assignments != b.worker_assignments || a.overall != b.overall,
        "two seeds produced identical campaigns"
    );
}

#[test]
fn lda_similarity_is_deterministic_within_a_campaign() {
    // Cos(topic) includes a Gibbs sampler; the campaign seeds it, so two
    // runs must pick identical gold sets (which depend on the graph).
    let config = CampaignConfig {
        metric: MetricChoice::CosTopic { num_topics: 6 },
        ..Default::default()
    };
    let a = run_campaign(&yahooqa(3), Approach::RandomMV, &config);
    let b = run_campaign(&yahooqa(3), Approach::RandomMV, &config);
    assert_eq!(a.gold, b.gold);
}
