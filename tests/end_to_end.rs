//! End-to-end campaigns across every crate: datasets → similarity →
//! graph → estimation → assignment → platform → aggregation → metrics.

use icrowd::core::{ICrowdConfig, WarmupConfig};
use icrowd::AssignStrategy;
use icrowd_sim::campaign::{run_campaign, Approach, CampaignConfig, MetricChoice};
use icrowd_sim::datasets::{table1, yahooqa};

fn table1_config() -> CampaignConfig {
    CampaignConfig {
        metric: MetricChoice::Jaccard,
        icrowd: ICrowdConfig {
            similarity_threshold: 0.4,
            warmup: WarmupConfig {
                num_qualification: 3,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn every_approach_completes_a_yahooqa_campaign() {
    let ds = yahooqa(7);
    let config = CampaignConfig::default();
    for approach in [
        Approach::RandomMV,
        Approach::RandomEM,
        Approach::AvgAccPV,
        Approach::ICrowd(AssignStrategy::Adapt),
        Approach::ICrowd(AssignStrategy::BestEffort),
        Approach::ICrowd(AssignStrategy::QfOnly),
    ] {
        let r = run_campaign(&ds, approach, &config);
        assert!(
            r.overall > 0.3,
            "{} collapsed to {:.3}",
            r.approach,
            r.overall
        );
        assert!(
            r.answers > 100,
            "{}: only {} answers",
            r.approach,
            r.answers
        );
        // Every domain is measured.
        assert_eq!(r.per_domain.len(), 6);
        let measured: usize = r.per_domain.iter().map(|d| d.total).sum();
        assert_eq!(measured, 110 - r.gold.len());
    }
}

#[test]
fn icrowd_beats_random_assignment_on_expert_crowds() {
    // Averaged over seeds to be robust against crowd noise: the adaptive
    // strategy must beat random assignment + majority voting on the
    // domain-diverse YahooQA regime — the paper's headline claim.
    let config = CampaignConfig::default();
    let (mut ic_sum, mut mv_sum) = (0.0, 0.0);
    for seed in [42u64, 1337, 20150531, 7] {
        let ds = yahooqa(seed);
        let config = CampaignConfig {
            seed,
            ..config.clone()
        };
        ic_sum += run_campaign(&ds, Approach::ICrowd(AssignStrategy::Adapt), &config).overall;
        mv_sum += run_campaign(&ds, Approach::RandomMV, &config).overall;
    }
    assert!(
        ic_sum > mv_sum + 0.1,
        "iCrowd ({:.3} avg) should clearly beat RandomMV ({:.3} avg)",
        ic_sum / 4.0,
        mv_sum / 4.0
    );
}

#[test]
fn campaign_accounting_is_consistent() {
    let ds = table1();
    let r = run_campaign(
        &ds,
        Approach::ICrowd(AssignStrategy::Adapt),
        &table1_config(),
    );
    // Spend is a multiple of the per-HIT reward.
    assert_eq!(r.spend_cents % 10, 0);
    // Worker assignment counts cover every profile.
    assert_eq!(r.worker_assignments.len(), ds.workers.len());
    let assigned: u32 = r.worker_assignments.iter().map(|&(_, c)| c).sum();
    assert!(assigned > 0);
    // Regular assignments can't exceed collected answers.
    assert!((assigned as usize) <= r.answers);
}

#[test]
fn gold_tasks_are_excluded_from_measurement_for_every_approach() {
    let ds = table1();
    let config = table1_config();
    for approach in [Approach::RandomMV, Approach::ICrowd(AssignStrategy::Adapt)] {
        let r = run_campaign(&ds, approach, &config);
        let measured: usize = r.per_domain.iter().map(|d| d.total).sum();
        assert_eq!(measured + r.gold.len(), ds.tasks.len(), "{}", r.approach);
    }
}
