//! The metrics plane's wire formats, round-tripped: trace events must
//! survive JSONL export → parse intact (the `icrowd obs` analyzer and
//! any external tooling read exactly these lines), window reports must
//! be valid JSON, and — the invariant the whole plane hangs on —
//! telemetry must never change consensus labels.

use icrowd::AssignStrategy;
use icrowd_sim::campaign::{labels_lines, run_campaign, Approach, CampaignConfig};
use icrowd_sim::datasets::table1;
use serde_json::Value;

/// The telemetry registry is process-global; every test here arms or
/// resets it, so they serialize through one lock.
fn guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn trace_events_round_trip_through_jsonl() {
    let _g = guard();
    icrowd_obs::reset();
    icrowd_obs::enable();

    // One request's causal tree: root → engine → {driver, journal}.
    {
        let _root = icrowd_obs::trace_begin(42, "serve.rpc.request");
        let _engine = icrowd_obs::TraceSpan::start("engine.request");
        {
            let _driver = icrowd_obs::TraceSpan::start("driver.poll");
        }
        let _journal = icrowd_obs::TraceSpan::start("journal.append");
    }

    let recorded = icrowd_obs::snapshot().traces;
    assert_eq!(recorded.len(), 4, "root + three children");

    // Export, then parse every trace line back and compare field for
    // field against what the registry recorded.
    let exported = icrowd_obs::export_jsonl();
    let mut parsed = Vec::new();
    for line in exported.lines() {
        let v: Value = serde_json::from_str(line).expect("every exported line is valid JSON");
        if v.get("type").and_then(Value::as_str) == Some("trace") {
            parsed.push(v);
        }
    }
    assert_eq!(parsed.len(), recorded.len());
    for (v, e) in parsed.iter().zip(&recorded) {
        assert_eq!(v.get("trace").and_then(Value::as_u64), Some(e.trace_id));
        assert_eq!(
            v.get("span").and_then(Value::as_u64),
            Some(u64::from(e.span_id))
        );
        assert_eq!(
            v.get("parent").and_then(Value::as_u64),
            Some(u64::from(e.parent_id))
        );
        assert_eq!(v.get("name").and_then(Value::as_str), Some(e.name));
        assert_eq!(v.get("start_ns").and_then(Value::as_u64), Some(e.start_ns));
        assert_eq!(v.get("dur_ns").and_then(Value::as_u64), Some(e.dur_ns));
    }

    // The parsed lines alone must reconstruct the causal tree: exactly
    // one root, and every parent id resolves within the same trace.
    let ids: Vec<u64> = parsed
        .iter()
        .map(|v| v.get("span").and_then(Value::as_u64).unwrap())
        .collect();
    let roots = parsed
        .iter()
        .filter(|v| v.get("parent").and_then(Value::as_u64) == Some(0))
        .count();
    assert_eq!(roots, 1);
    for v in &parsed {
        let parent = v.get("parent").and_then(Value::as_u64).unwrap();
        assert!(
            parent == 0 || ids.contains(&parent),
            "dangling parent {parent}"
        );
    }

    icrowd_obs::disable();
    icrowd_obs::reset();
}

#[test]
fn window_reports_are_valid_json() {
    let _g = guard();
    icrowd_obs::reset();
    icrowd_obs::enable();

    icrowd_obs::record_span_ns("serve.request", 1_500);
    icrowd_obs::counter_add("serve.conn_accepted", 3);
    icrowd_obs::gauge_set("serve.queue_depth", 7.0);

    let report = icrowd_obs::window_advance();
    let v: Value = serde_json::from_str(&report.to_json()).expect("window JSON parses");
    assert_eq!(v.get("type").and_then(Value::as_str), Some("window"));
    assert_eq!(v.get("seq").and_then(Value::as_u64), Some(report.seq));
    assert!(v.get("spans").and_then(Value::as_array).is_some());
    let counters = v.get("counters").and_then(Value::as_array).unwrap();
    assert!(counters
        .iter()
        .any(
            |c| c.get("name").and_then(Value::as_str) == Some("serve.conn_accepted")
                && c.get("delta").and_then(Value::as_u64) == Some(3)
        ));
    let gauges = v.get("gauges").and_then(Value::as_array).unwrap();
    assert!(gauges.iter().any(|g| g.get("name").and_then(Value::as_str)
        == Some("serve.queue_depth")
        && g.get("last").and_then(Value::as_f64) == Some(7.0)));

    icrowd_obs::disable();
    icrowd_obs::reset();
}

#[test]
fn telemetry_on_or_off_labels_are_byte_identical() {
    let _g = guard();
    let config = CampaignConfig::default();
    let approach = Approach::ICrowd(AssignStrategy::Adapt);

    icrowd_obs::disable();
    icrowd_obs::reset();
    let off = run_campaign(&table1(), approach, &config);

    icrowd_obs::reset();
    icrowd_obs::enable();
    let on = run_campaign(&table1(), approach, &config);
    icrowd_obs::disable();
    icrowd_obs::reset();

    assert_eq!(
        labels_lines(&off.labels),
        labels_lines(&on.labels),
        "telemetry must observe the campaign, not steer it"
    );
    assert_eq!(off.overall, on.overall);
    assert_eq!(off.answers, on.answers);
    assert_eq!(off.spend_cents, on.spend_cents);
}
