//! Library-level integration of the CLI command surface (the same code
//! path `icrowd <cmd>` runs; the binary itself is a three-line shim).

use icrowd_cli::{run, Args};

fn run_line(line: &str) -> Result<String, icrowd_cli::CliError> {
    run(&Args::parse(line.split_whitespace().map(str::to_owned)).unwrap())
}

#[test]
fn compare_on_table1_lists_all_approaches() {
    let out = run_line("compare --dataset table1 --q 3 --threshold 0.4").unwrap();
    for name in ["RandomMV", "RandomEM", "AvgAccPV", "iCrowd"] {
        assert!(out.contains(name), "missing {name}: {out}");
    }
}

#[test]
fn campaign_json_has_the_full_result_schema() {
    let out = run_line(
        "campaign --dataset quiz --approach icrowd --q 4 --threshold 0.2 --metric cos-tfidf --json",
    )
    .unwrap();
    let v: serde_json::Value = serde_json::from_str(&out).unwrap();
    for key in [
        "dataset",
        "approach",
        "overall_accuracy",
        "per_domain",
        "answers",
        "spend_cents",
        "gold_tasks",
        "elapsed_ms",
    ] {
        assert!(!v[key].is_null(), "missing key {key}");
    }
    assert_eq!(v["dataset"], "Quiz");
}

#[test]
fn quals_strategy_switch_changes_selection() {
    let inf = run_line("quals --dataset yahooqa --q 6").unwrap();
    let rand = run_line("quals --dataset yahooqa --q 6 --strategy random").unwrap();
    assert!(inf.contains("InfQF"));
    assert!(rand.contains("RamdomQF"));
    assert_ne!(inf, rand, "the two strategies pick different tasks");
}
