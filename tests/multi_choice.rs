//! Multi-choice microtasks end to end — the paper's Section 2.1 note
//! that the techniques extend beyond YES/NO.

use icrowd::core::{ICrowdConfig, WarmupConfig};
use icrowd::AssignStrategy;
use icrowd_sim::campaign::{run_campaign, Approach, CampaignConfig, MetricChoice};
use icrowd_sim::datasets::quiz;

fn quiz_config() -> CampaignConfig {
    CampaignConfig {
        metric: MetricChoice::CosTfIdf,
        icrowd: ICrowdConfig {
            similarity_threshold: 0.2,
            warmup: WarmupConfig {
                num_qualification: 6,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn four_choice_campaigns_complete_for_every_approach() {
    let ds = quiz(11);
    let config = quiz_config();
    for approach in [
        Approach::RandomMV,
        Approach::RandomEM,
        Approach::AvgAccPV,
        Approach::ICrowd(AssignStrategy::Adapt),
    ] {
        let r = run_campaign(&ds, approach, &config);
        // Chance level for four choices is 0.25; any working pipeline
        // lands well above it.
        assert!(
            r.overall > 0.35,
            "{} scored {:.3} on 4-choice tasks",
            r.approach,
            r.overall
        );
        assert!(r.answers > 0);
        let measured: usize = r.per_domain.iter().map(|d| d.total).sum();
        assert_eq!(measured, 80 - r.gold.len(), "{}", r.approach);
    }
}

#[test]
fn majority_threshold_still_governs_completion_with_four_choices() {
    // With 4 choices and k = 3, two agreeing votes complete a task but a
    // 1/1/1 split cannot; campaigns must still terminate because the
    // marketplace keeps assigning until capacity is reached and final
    // answers fall back to plurality.
    let ds = quiz(5);
    let r = run_campaign(&ds, Approach::ICrowd(AssignStrategy::Adapt), &quiz_config());
    assert!(r.overall > 0.0);
}

#[test]
fn early_stopping_works_with_four_choices() {
    let ds = quiz(3);
    let mut config = quiz_config();
    config.icrowd.early_stop_confidence = Some(0.9);
    config.icrowd.assignment_size = 5;
    let with_stop = run_campaign(&ds, Approach::ICrowd(AssignStrategy::Adapt), &config);
    let mut config_off = quiz_config();
    config_off.icrowd.assignment_size = 5;
    let without = run_campaign(&ds, Approach::ICrowd(AssignStrategy::Adapt), &config_off);
    assert!(
        with_stop.answers <= without.answers,
        "early stopping must not cost more answers ({} vs {})",
        with_stop.answers,
        without.answers
    );
}
