//! Cross-crate invariants: the algebraic relationships between layers
//! that no unit test can see in isolation.

use icrowd::assign::greedy::scheme_objective;
use icrowd::assign::{greedy_assign, optimal_assign, top_worker_set, TopWorkerSet};
use icrowd::core::{
    majority_vote, worker_set_accuracy, Answer, ICrowdConfig, PprConfig, TaskId, Vote, WorkerId,
};
use icrowd::estimate::{AccuracyEstimator, EstimationMode};
use icrowd::graph::{
    power_iteration, GraphBuilder, LinearityIndex, SimilarityGraph, SparseTaskVector,
};
use icrowd::text::{CosineTfIdf, JaccardSimilarity, TaskSimilarity, Tokenizer};
use icrowd_sim::datasets::{table1, yahooqa};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn linearity_index_reproduces_direct_ppr_on_real_datasets() {
    // Algorithm 1's online path (index lookup) must equal Equation (4)'s
    // direct solve on the actual YahooQA similarity graph.
    let ds = yahooqa(5);
    let metric = CosineTfIdf::new(&ds.tasks, &Tokenizer::new());
    let graph = GraphBuilder::new(0.5).build(&ds.tasks, &metric);
    let cfg = PprConfig {
        index_epsilon: 0.0,
        ..Default::default()
    };
    let index = LinearityIndex::build(&graph, 1.0, &cfg);
    let q = SparseTaskVector::from_pairs(vec![(3, 1.0), (40, 0.25), (99, 0.75)]);
    let via_index = index.estimate_dense(&q);
    let direct = power_iteration(&graph, &q.to_dense(graph.num_tasks()), 1.0, &cfg);
    for (a, b) in via_index.iter().zip(&direct) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }
}

#[test]
fn greedy_never_beats_optimal_and_respects_disjointness() {
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..30 {
        let sets: Vec<TopWorkerSet> = (0..rng.gen_range(2..12u32))
            .map(|t| {
                let size = rng.gen_range(1..=3usize);
                let members: Vec<(WorkerId, f64)> = (0..size)
                    .map(|_| (WorkerId(rng.gen_range(0..8u32)), rng.gen_range(0.2..1.0)))
                    .collect();
                // Dedup worker ids inside a set.
                let mut seen = std::collections::HashSet::new();
                let members: Vec<_> = members
                    .into_iter()
                    .filter(|(w, _)| seen.insert(*w))
                    .collect();
                top_worker_set(TaskId(t), members, size)
            })
            .collect();
        let g = greedy_assign(&sets);
        let o = optimal_assign(&sets);
        assert!(scheme_objective(&g) <= scheme_objective(&o) + 1e-9);
        for scheme in [&g, &o] {
            let mut used = std::collections::HashSet::new();
            for a in scheme.iter() {
                for w in a.worker_ids() {
                    assert!(used.insert(w), "worker {w} reused");
                }
            }
        }
    }
}

#[test]
fn estimator_is_consistent_with_majority_voting_semantics() {
    // A task completed 2-0 by two high-prior workers must raise both
    // workers' observed accuracy above 0.5, and the consensus answer must
    // equal what majority voting would say.
    let g = SimilarityGraph::from_edges(3, &[(TaskId(0), TaskId(1), 0.9)]);
    let mut est = AccuracyEstimator::new(g, ICrowdConfig::default(), EstimationMode::Normalized);
    est.record_qualification(WorkerId(0), TaskId(0), Answer::YES, Answer::YES);
    est.record_qualification(WorkerId(1), TaskId(0), Answer::YES, Answer::YES);
    let votes = vec![
        Vote {
            worker: WorkerId(0),
            answer: Answer::NO,
        },
        Vote {
            worker: WorkerId(1),
            answer: Answer::NO,
        },
    ];
    let mv = majority_vote(&votes, 2).unwrap();
    assert_eq!(mv.answer, Answer::NO);
    est.record_completed_task(TaskId(1), &votes, mv.answer);
    for w in [WorkerId(0), WorkerId(1)] {
        let q = est.observed_at(w, TaskId(1)).unwrap();
        assert!(q > 0.5, "agreeing with a credible consensus: q = {q}");
    }
}

#[test]
fn figure3_pipeline_is_self_consistent() {
    // Table 1 → Jaccard → graph → index → influence covers the three
    // product families with exactly three qualification tasks.
    let ds = table1();
    let metric = JaccardSimilarity::new(&ds.tasks, &Tokenizer::keeping_stopwords());
    let graph = GraphBuilder::new(0.5).build(&ds.tasks, &metric);
    let index = LinearityIndex::build(&graph, 1.0, &PprConfig::default());
    let quals = icrowd::assign::select_qualification_influence(&index, 3);
    assert_eq!(quals.len(), 3);
    let domains: std::collections::HashSet<_> =
        quals.iter().map(|&q| ds.tasks[q].domain.unwrap()).collect();
    assert_eq!(
        domains.len(),
        3,
        "influence maximization should pick one task per product family, got {quals:?}"
    );
}

#[test]
fn similarity_metrics_agree_on_extremes() {
    // All text metrics must call identical texts maximal and disjoint
    // texts minimal — a contract the graph layer relies on.
    let tasks: icrowd::core::TaskSet =
        ["alpha beta gamma", "alpha beta gamma", "delta epsilon zeta"]
            .iter()
            .enumerate()
            .map(|(i, t)| icrowd::core::Microtask::binary(TaskId(i as u32), *t))
            .collect();
    let tok = Tokenizer::keeping_stopwords();
    let metrics: Vec<Box<dyn TaskSimilarity>> = vec![
        Box::new(JaccardSimilarity::new(&tasks, &tok)),
        Box::new(CosineTfIdf::new(&tasks, &tok)),
    ];
    for m in &metrics {
        assert!(
            m.similarity(TaskId(0), TaskId(1)) > 0.999,
            "{} on identical texts",
            m.name()
        );
        assert!(
            m.similarity(TaskId(0), TaskId(2)) < 1e-9,
            "{} on disjoint texts",
            m.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Pr(W)` of the top worker set is monotone under adding the
    /// next-best worker when `|W|` is even (a tie-breaking vote can only
    /// help), linking Definition 3 to Equation (1).
    #[test]
    fn adding_a_tiebreaker_never_hurts(
        probs in proptest::collection::vec(0.5f64..0.99, 3..8),
    ) {
        let mut sorted = probs.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let even = &sorted[..2];
        let odd = &sorted[..3];
        prop_assert!(worker_set_accuracy(odd) + 1e-12 >= worker_set_accuracy(even));
    }

    /// Graph construction from any symmetric metric keeps estimates
    /// finite and in range across the estimator.
    #[test]
    fn estimator_stays_in_range_on_random_graphs(
        edges in proptest::collection::vec((0u32..12, 0u32..12, 0.1f64..1.0), 0..40),
        quals in proptest::collection::vec((0u32..12, proptest::bool::ANY), 1..6),
    ) {
        let edges: Vec<_> = edges
            .into_iter()
            .filter(|(a, b, _)| a != b)
            .map(|(a, b, s)| (TaskId(a), TaskId(b), s))
            .collect();
        let g = SimilarityGraph::from_edges(12, &edges);
        let mut est = AccuracyEstimator::new(g, ICrowdConfig::default(), EstimationMode::Normalized);
        for (t, ok) in quals {
            let ans = if ok { Answer::YES } else { Answer::NO };
            est.record_qualification(WorkerId(0), TaskId(t), ans, Answer::YES);
        }
        for &v in est.accuracies(WorkerId(0)) {
            prop_assert!(v.is_finite());
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
