//! End-to-end tests of the TCP serving layer: a campaign driven over
//! real sockets by the concurrent load generator must complete, keep
//! the marketplace accounting's conservation laws, and produce
//! consensus labels byte-identical to the in-process path at the same
//! seed.

use std::sync::{Arc, Barrier};

use icrowd::AssignStrategy;
use icrowd_serve::protocol::Request;
use icrowd_serve::{client, run_loadgen, serve, CampaignEngine, Conn, LoadgenConfig, ServeConfig};
use icrowd_sim::campaign::{labels_lines, run_campaign, Approach, CampaignConfig, MetricChoice};
use icrowd_sim::datasets::table1;
use serde_json::Value;

/// A fast campaign configuration (table1, Jaccard, 3 gold tasks).
fn quick_config() -> CampaignConfig {
    let mut config = CampaignConfig {
        metric: MetricChoice::Jaccard,
        ..Default::default()
    };
    config.icrowd.similarity_threshold = 0.3;
    config.icrowd.warmup.num_qualification = 3;
    config
}

fn start(approach: Approach, handlers: usize, queue_cap: usize) -> icrowd_serve::ServerHandle {
    let engine = CampaignEngine::new("table1", table1(), approach, quick_config());
    serve(
        engine,
        &ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            handlers,
            queue_cap,
            ..Default::default()
        },
    )
    .expect("bind ephemeral port")
}

/// The tentpole acceptance path: ≥8 concurrent loadgen workers drive a
/// served campaign to completion, the accounting balances, and the
/// final consensus is byte-identical to the in-process run.
#[test]
fn loadgen_campaign_matches_in_process_labels_byte_for_byte() {
    let approach = Approach::ICrowd(AssignStrategy::Adapt);
    let expected = run_campaign(&table1(), approach, &quick_config());

    let handle = start(approach, 4, 32);
    let report = run_loadgen(&LoadgenConfig {
        addr: handle.addr().to_string(),
        workers: 8,
        think_ms: 0,
        faults: None,
        shutdown: true,
        fetch_labels: true,
        ..Default::default()
    })
    .expect("loadgen completes");
    let served = handle.join();

    assert!(report.complete, "campaign did not complete: {report:?}");
    assert!(report.balanced, "conservation law violated: {report:?}");
    assert_eq!(
        report.labels.as_deref(),
        Some(labels_lines(&expected.labels).as_str()),
        "served consensus diverged from the in-process path"
    );
    assert_eq!(labels_lines(&served.labels), labels_lines(&expected.labels));
    assert_eq!(served.answers, expected.answers);
    assert_eq!(served.spend_cents, expected.spend_cents);
    assert!(served.accounting.balanced());
    assert!(served.completed);
    assert!(report.requests > 0 && report.accepted > 0);
}

/// Two threads racing the same submission: exactly one acceptance, one
/// duplicate rejection, and the accounting never double-counts (which
/// would show up as `balanced == false` — the double-payment detector).
#[test]
fn duplicate_submission_race_settles_exactly_once() {
    let handle = start(Approach::RandomMV, 4, 32);
    let addr = handle.addr().to_string();

    // Find the worker whose turn is first and get her assignment.
    let mut assigned = None;
    'outer: for _ in 0..100 {
        for i in 1..=5u32 {
            let worker = format!("W{i}");
            let v = client::call_once(
                addr.as_str(),
                &Request::RequestTask {
                    worker: worker.clone(),
                },
            )
            .expect("poll");
            if v.get("type").and_then(Value::as_str) == Some("task") {
                assigned = Some((worker, v.get("task").and_then(Value::as_u64).unwrap()));
                break 'outer;
            }
        }
    }
    let (worker, task) = assigned.expect("some worker gets assigned");

    let barrier = Arc::new(Barrier::new(2));
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let worker = worker.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut conn = Conn::open(addr.as_str()).expect("connect");
                barrier.wait();
                conn.call(&Request::SubmitAnswer {
                    worker,
                    task: icrowd_core::task::TaskId(task as u32),
                    answer: icrowd_core::answer::Answer(0),
                })
                .expect("submit")
            })
        })
        .collect();
    let verdicts: Vec<Value> = racers.into_iter().map(|t| t.join().unwrap()).collect();

    let results: Vec<&str> = verdicts
        .iter()
        .map(|v| v.get("result").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(
        results.iter().filter(|r| **r == "accepted").count(),
        1,
        "exactly one acceptance: {verdicts:?}"
    );
    assert_eq!(
        results.iter().filter(|r| **r == "rejected").count(),
        1,
        "exactly one rejection: {verdicts:?}"
    );
    let rejected = verdicts
        .iter()
        .find(|v| v.get("result").and_then(Value::as_str) == Some("rejected"))
        .unwrap();
    assert_eq!(
        rejected.get("reason").and_then(Value::as_str),
        Some("duplicate"),
        "{rejected:?}"
    );

    // The conservation law holds: both submissions counted, one each way.
    let status = client::call_once(addr.as_str(), &Request::Status).expect("status");
    assert_eq!(status["balanced"].as_bool(), Some(true), "{status:?}");
    let a = &status["accounting"];
    assert_eq!(a["submitted"].as_u64(), Some(2));
    assert_eq!(a["accepted"].as_u64(), Some(1));
    assert_eq!(a["rejected"].as_u64(), Some(1));

    handle.shutdown();
    let result = handle.join();
    assert!(result.accounting.balanced(), "no double payment at drain");
}

/// Backpressure: with one handler pinned by an idle connection and the
/// queue full, the acceptor rejects with an explicit `BUSY` line
/// instead of hanging or resetting.
#[test]
fn overloaded_server_rejects_with_busy() {
    let handle = start(Approach::RandomMV, 1, 1);
    let addr = handle.addr().to_string();

    // Pin the only handler: a round-trip guarantees it owns conn1.
    let mut conn1 = Conn::open(addr.as_str()).expect("conn1");
    conn1.call(&Request::Hello).expect("hello");
    // Fill the queue with an idle connection the handler can't reach.
    let _conn2 = Conn::open(addr.as_str()).expect("conn2");
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Overflow: the acceptor must answer BUSY and close.
    let mut conn3 = Conn::open(addr.as_str()).expect("conn3");
    let v = conn3.call(&Request::Hello).expect("busy line");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{v:?}");
    assert_eq!(v.get("type").and_then(Value::as_str), Some("busy"), "{v:?}");

    // The pinned handler still serves its connection.
    let v = conn1.call(&Request::Status).expect("status on pinned conn");
    assert_eq!(v.get("type").and_then(Value::as_str), Some("status"));

    handle.shutdown();
    let _ = handle.join();
}

/// Malformed protocol lines get an error response; the connection (and
/// the campaign) survive.
#[test]
fn malformed_requests_get_error_responses_not_resets() {
    let handle = start(Approach::RandomMV, 2, 8);
    let addr = handle.addr().to_string();

    use std::io::{BufRead as _, BufReader, Write as _};
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for bad in [
        "this is not json",
        "{\"op\":\"EXPLODE\"}",
        "{\"no\":\"op\"}",
    ] {
        writer.write_all(bad.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v: Value = serde_json::from_str(&line).expect("error response parses");
        assert_eq!(v["ok"].as_bool(), Some(false), "{line}");
    }
    // Same connection still serves valid requests afterwards.
    writer.write_all(b"{\"op\":\"HELLO\"}\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v: Value = serde_json::from_str(&line).unwrap();
    assert_eq!(v["type"].as_str(), Some("hello"));
    assert_eq!(v["dataset"].as_str(), Some("table1"));

    handle.shutdown();
    let _ = handle.join();
}

/// Client-side fault injection: duplicate submissions are rejected as
/// strays, the campaign still completes, and consensus is unchanged —
/// duplicates must never alter labels or double-pay.
#[test]
fn loadgen_duplicates_do_not_perturb_consensus() {
    let approach = Approach::RandomMV;
    let expected = run_campaign(&table1(), approach, &quick_config());

    let handle = start(approach, 4, 32);
    let report = run_loadgen(&LoadgenConfig {
        addr: handle.addr().to_string(),
        workers: 8,
        think_ms: 0,
        faults: Some(icrowd_serve::ClientFaultConfig {
            dup: 0.5,
            late: 0.0,
            late_ms: 0,
            seed: 11,
        }),
        shutdown: true,
        fetch_labels: true,
        ..Default::default()
    })
    .expect("loadgen completes");
    let served = handle.join();

    assert!(report.complete);
    assert!(report.balanced);
    assert!(report.dups_sent > 0, "fault plan injected no duplicates");
    assert!(
        served.accounting.answers_rejected >= report.dups_sent,
        "every duplicate copy must be rejected: {:?} vs {} dups",
        served.accounting,
        report.dups_sent
    );
    assert_eq!(
        labels_lines(&served.labels),
        labels_lines(&expected.labels),
        "duplicates changed the consensus"
    );
    assert!(served.accounting.balanced());
}
