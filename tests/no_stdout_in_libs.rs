//! Guard: library crates never write to stdout/stderr unconditionally.
//!
//! Diagnostics belong in the `icrowd-obs` sink (spans, counters,
//! events), not interleaved with caller output — a library `println!`
//! corrupts the CLI's `--json` mode and every bench bin's table. Only
//! binaries (`cli/src/main.rs`, the bench bins) and test code may print.
//!
//! The check is textual on purpose: it catches regressions at review
//! speed without build-system hooks, and the macro names are distinctive
//! enough that false positives are limited to doc prose (scanned lines
//! starting with `//` are skipped).

use std::path::{Path, PathBuf};

/// Library source trees that must stay print-free. `cli/src` is
/// included (the lib builds the output string; only `main.rs` prints);
/// `bench` is excluded wholesale — it is a reporting harness.
const LIB_SRC_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/text/src",
    "crates/graph/src",
    "crates/estimate/src",
    "crates/assign/src",
    "crates/baselines/src",
    "crates/platform/src",
    "crates/sim/src",
    "crates/icrowd/src",
    "crates/obs/src",
    "crates/cli/src",
    "crates/server/src",
];

const FORBIDDEN: &[&str] = &["println!", "print!", "eprintln!", "eprint!", "dbg!"];

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn library_crates_do_not_print() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for dir in LIB_SRC_DIRS {
        let dir = root.join(dir);
        assert!(dir.is_dir(), "expected source dir {}", dir.display());
        rust_files(&dir, &mut files);
    }
    assert!(files.len() > 30, "scan found too few files — wrong root?");

    let mut offenders = Vec::new();
    for file in &files {
        if file.ends_with("cli/src/main.rs") {
            continue; // the one true printer
        }
        let text = std::fs::read_to_string(file).expect("readable source");
        for (lineno, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue; // doc/comment prose may mention the macros
            }
            // `write!`/`writeln!` to a String or file are fine; the
            // forbidden names don't collide with them textually.
            for forbidden in FORBIDDEN {
                if trimmed.contains(forbidden) {
                    offenders.push(format!("{}:{}: {}", file.display(), lineno + 1, trimmed));
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "library crates must not print; route diagnostics through icrowd-obs:\n{}",
        offenders.join("\n")
    );
}
