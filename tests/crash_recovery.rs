//! Kill-and-recover end-to-end tests: a journaled served campaign that
//! dies mid-flight must recover from its journal and finish with
//! consensus labels byte-identical to an uninterrupted run — with every
//! answer accepted exactly once, even though clients re-submit across
//! the restart.

use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use icrowd_serve::protocol::Request;
use icrowd_serve::{
    client, recover, run_loadgen, serve, CampaignEngine, LoadgenConfig, ServeConfig,
};
use icrowd_sim::campaign::{labels_lines, run_campaign, Approach, CampaignConfig, MetricChoice};
use icrowd_sim::datasets::table1;
use serde_json::Value;

/// A fast campaign configuration (table1, Jaccard, 3 gold tasks).
fn quick_config() -> CampaignConfig {
    let mut config = CampaignConfig {
        metric: MetricChoice::Jaccard,
        ..Default::default()
    };
    config.icrowd.similarity_threshold = 0.3;
    config.icrowd.warmup.num_qualification = 3;
    config
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("icrowd_crash_{name}_{}", std::process::id()))
}

/// Publishes the server address for `--addr-file` clients: write to a
/// temp file, then rename — readers never observe a partial write.
fn publish_addr(addr_file: &PathBuf, addr: &str) {
    let staged = addr_file.with_extension("tmp");
    std::fs::write(&staged, addr).expect("write addr file");
    std::fs::rename(&staged, addr_file).expect("publish addr file");
}

/// S1 regression: restart the server mid-campaign. The loadgen rides
/// through the outage (backoff + addr-file re-resolution), re-submits
/// idempotently, and the recovered campaign ends byte-identical to the
/// in-process baseline with exactly-once accepted answers.
#[test]
fn journaled_serve_restart_preserves_exactly_once_and_labels() {
    let approach = Approach::RandomMV;
    let expected = run_campaign(&table1(), approach, &quick_config());

    let journal = tmp("restart.journal");
    let addr_file = tmp("restart.addr");
    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(&addr_file).ok();

    let engine = CampaignEngine::new("table1", table1(), approach, quick_config());
    engine
        .start_journal(&journal, 1, 8)
        .expect("journal starts");
    let handle = serve(engine, &ServeConfig::default()).expect("bind ephemeral port");
    publish_addr(&addr_file, &handle.addr().to_string());

    let loadgen_config = LoadgenConfig {
        addr: String::new(),
        addr_file: Some(addr_file.to_string_lossy().into_owned()),
        workers: 4,
        ..Default::default()
    };
    let (tx, rx) = mpsc::channel();
    let loadgen = {
        let config = loadgen_config;
        std::thread::spawn(move || {
            let _ = tx.send(run_loadgen(&config));
        })
    };

    // Let the campaign make real progress, then kill the first server.
    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = handle.addr().to_string();
    loop {
        assert!(
            Instant::now() < deadline,
            "campaign made no progress before the crash point"
        );
        if let Ok(status) = client::call_once(addr.as_str(), &Request::Status) {
            let accepted = status
                .get("accounting")
                .and_then(|a| a.get("accepted"))
                .and_then(Value::as_u64)
                .unwrap_or(0);
            if accepted >= 3 {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
    let interrupted = handle.join(); // partial result — discarded
    assert!(!interrupted.completed, "crash point was after completion");

    // Recover from the journal and resume serving on a fresh port.
    let (recovered, report) = recover(&journal, "table1", table1(), approach, quick_config(), 1, 8)
        .expect("recovery succeeds");
    assert!(report.ops_replayed > 0, "nothing was journaled: {report:?}");
    let handle = serve(recovered, &ServeConfig::default()).expect("rebind");
    publish_addr(&addr_file, &handle.addr().to_string());

    loadgen.join().expect("loadgen thread");
    let lg = rx
        .recv()
        .expect("loadgen result")
        .expect("loadgen completes");
    let served = handle.join();

    assert!(lg.complete, "campaign did not complete: {lg:?}");
    assert!(lg.balanced, "conservation law violated: {lg:?}");
    assert!(
        lg.retries > 0,
        "the restart produced no client retries — the outage was not exercised"
    );
    assert_eq!(
        lg.labels.as_deref(),
        Some(labels_lines(&expected.labels).as_str()),
        "recovered consensus diverged from the uninterrupted baseline"
    );
    assert_eq!(
        served.answers, expected.answers,
        "accepted answers not exactly-once across the restart"
    );
    assert_eq!(labels_lines(&served.labels), labels_lines(&expected.labels));
    assert!(served.accounting.balanced());

    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(&addr_file).ok();
}

/// A torn tail (garbage appended by a crash mid-write) is truncated on
/// recovery; the surviving prefix still replays to the exact state.
#[test]
fn recovery_truncates_torn_tail_and_preserves_state() {
    let approach = Approach::RandomMV;
    let journal = tmp("torn.journal");
    std::fs::remove_file(&journal).ok();

    let ds = table1();
    let config = quick_config();
    let engine = CampaignEngine::new("table1", ds.clone(), approach, config.clone());
    engine.start_journal(&journal, 1, 4).expect("journal");

    // Drive a few assignments through the request interface.
    let sims = ds.spawn_workers(config.seed);
    let mut sims: Vec<_> = sims.into_iter().map(Some).collect();
    'outer: for _round in 0..4 {
        for (i, slot) in sims.iter_mut().enumerate() {
            let worker = format!("W{}", i + 1);
            let Some(sim) = slot.as_mut() else {
                continue;
            };
            match engine.handle(
                &Request::RequestTask {
                    worker: worker.clone(),
                },
                0,
            ) {
                icrowd_serve::Response::Task(task) => {
                    let answer =
                        icrowd_platform::market::WorkerBehavior::answer(sim, &ds.tasks[task]);
                    engine.handle(
                        &Request::SubmitAnswer {
                            worker,
                            task,
                            answer,
                        },
                        0,
                    );
                }
                icrowd_serve::Response::Left => {
                    *slot = None;
                }
                _ => {}
            }
            if engine.checkpoint().1 >= 6 {
                break 'outer;
            }
        }
    }
    let checkpoint = engine.checkpoint();
    assert!(checkpoint.1 > 0, "no answers accepted");
    drop(engine); // crash without finalize

    // Simulate a torn write: half a frame of garbage at the tail.
    let clean_len = std::fs::metadata(&journal).unwrap().len();
    let mut bytes = std::fs::read(&journal).unwrap();
    bytes.extend_from_slice(&[0x42, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe]);
    std::fs::write(&journal, &bytes).unwrap();

    let (recovered, report) = recover(&journal, "table1", table1(), approach, config, 1, 4)
        .expect("recovery succeeds despite the torn tail");
    assert_eq!(report.truncated_bytes, 7, "{report:?}");
    assert_eq!(recovered.checkpoint(), checkpoint, "state diverged");
    assert_eq!(
        std::fs::metadata(&journal).unwrap().len(),
        clean_len,
        "torn tail was not cut off the file"
    );
    let result = recovered.finalize();
    assert!(result.accounting.balanced());
    std::fs::remove_file(&journal).ok();
}

/// Recovery refuses to resume a journal under a different campaign
/// identity (here: a different approach at the same seed).
#[test]
fn recovery_refuses_a_journal_for_a_different_campaign() {
    let journal = tmp("identity.journal");
    std::fs::remove_file(&journal).ok();
    let engine = CampaignEngine::new("table1", table1(), Approach::RandomMV, quick_config());
    engine.start_journal(&journal, 1, 0).expect("journal");
    engine.handle(
        &Request::RequestTask {
            worker: "W1".into(),
        },
        0,
    );
    drop(engine);

    match recover(
        &journal,
        "table1",
        table1(),
        Approach::RandomEM,
        quick_config(),
        1,
        0,
    ) {
        Err(e) => assert!(e.contains("header mismatch"), "{e}"),
        Ok(_) => panic!("a RandomMV journal must not recover as RandomEM"),
    }
    std::fs::remove_file(&journal).ok();
}
