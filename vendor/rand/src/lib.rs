//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of the rand 0.8 API it actually uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality and deterministic, but the streams do NOT
//! match upstream `rand`'s ChaCha-based `StdRng` (nothing in this
//! repository depends on the exact stream, only on seed-determinism).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types producible from raw random bits (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws a value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range random values can be drawn from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed at 32 bytes for this stand-in).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a single `u64` (via SplitMix64 expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let v: Vec<u64> = (0..4).map(|_| rng.gen()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }
}
