//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal serde replacement. Unlike real serde's
//! format-agnostic visitor architecture, this stand-in is JSON-only:
//! [`Serialize`] writes JSON text directly and [`Deserialize`] reads from
//! a parsed [`Value`] tree. The derive macros (re-exported from the
//! companion `serde_derive` stub) generate impls following serde's JSON
//! conventions — newtype structs serialize transparently, enums are
//! externally tagged — so anything this stand-in writes, it reads back.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON number preserving integer exactness.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The number as `f64` (always possible, maybe lossy).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The number as `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// A parsed JSON value (the deserialization source).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

const NULL: &Value = &Value::Null;

impl Value {
    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (key/value slice), if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// serde_json-style indexing: missing keys and non-objects yield
    /// `Null` rather than panicking.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            #[allow(unused_comparisons)]
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v as i64))
                }
            }
        }
    )*};
}
value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F(f64::from(v)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.to_json(&mut out);
        write!(f, "{out}")
    }
}

/// Types serializable to JSON text.
pub trait Serialize {
    /// Appends this value's JSON representation to `out`.
    fn to_json(&self, out: &mut String);
}

/// Types deserializable from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs the value.
    ///
    /// # Errors
    /// Returns [`Error`] when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Writes `s` as a JSON string literal (with escaping) into `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` as JSON (non-finite values become `null`, matching
/// serde_json's lossy default).
pub fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

// ---- Helpers used by derive-generated code ----

/// Asserts `v` is an object, naming `ty` in the error.
pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    v.as_object()
        .ok_or_else(|| Error::custom(format!("expected object for {ty}")))
}

/// Asserts `v` is an array of length `n`, naming `ty` in the error.
pub fn expect_array<'a>(v: &'a Value, n: usize, ty: &str) -> Result<&'a [Value], Error> {
    match v.as_array() {
        Some(a) if a.len() == n => Ok(a),
        Some(a) => Err(Error::custom(format!(
            "expected {n} elements for {ty}, got {}",
            a.len()
        ))),
        None => Err(Error::custom(format!("expected array for {ty}"))),
    }
}

/// Field lookup for derive-generated struct deserialization; missing
/// fields read as `null` (so `Option` fields default to `None`).
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
    obj.iter().find(|(k, _)| k == key).map_or(NULL, |(_, v)| v)
}

/// Splits an externally-tagged enum value into `(variant, payload)`:
/// a bare string is a unit variant, a single-key object carries a payload.
pub fn expect_enum<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, &'a Value), Error> {
    match v {
        Value::String(s) => Ok((s.as_str(), NULL)),
        Value::Object(o) if o.len() == 1 => Ok((o[0].0.as_str(), &o[0].1)),
        _ => Err(Error::custom(format!(
            "expected externally tagged enum for {ty}"
        ))),
    }
}

// ---- Serialize / Deserialize impls for std types ----

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self, out: &mut String) {
        write_json_f64(out, *self);
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_json(&self, out: &mut String) {
        write_json_f64(out, f64::from(*self));
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self, out: &mut String) {
        (**self).to_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self, out: &mut String) {
        match self {
            Some(v) => v.to_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.to_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self, out: &mut String) {
        self.as_slice().to_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json(&self, out: &mut String) {
        // Sorted keys: deterministic output regardless of hasher state.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        out.push('{');
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, k);
            out.push(':');
            self[*k].to_json(out);
        }
        out.push('}');
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, val)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, k);
            out.push(':');
            val.to_json(out);
        }
        out.push('}');
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident/$idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self, out: &mut String) {
                out.push('[');
                let mut __first = true;
                $(
                    if !__first {
                        out.push(',');
                    }
                    __first = false;
                    self.$idx.to_json(out);
                )+
                let _ = __first;
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$(stringify!($name)),+].len();
                let arr = expect_array(v, LEN, "tuple")?;
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

impl Serialize for Value {
    fn to_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.to_json(out),
            Value::Number(Number::U(u)) => out.push_str(&u.to_string()),
            Value::Number(Number::I(i)) => out.push_str(&i.to_string()),
            Value::Number(Number::F(f)) => write_json_f64(out, *f),
            Value::String(s) => write_json_string(out, s),
            Value::Array(a) => a.to_json(out),
            Value::Object(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.to_json(out);
                }
                out.push('}');
            }
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_string<T: Serialize + ?Sized>(v: &T) -> String {
        let mut out = String::new();
        v.to_json(&mut out);
        out
    }

    #[test]
    fn scalars_serialize() {
        assert_eq!(to_string(&42u32), "42");
        assert_eq!(to_string(&-7i64), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(to_string(&Option::<u32>::None), "null");
        assert_eq!(to_string(&vec![1u32, 2]), "[1,2]");
        assert_eq!(to_string(&f64::NAN), "null");
    }

    #[test]
    fn value_indexing_and_comparison() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("x".into())),
            ("n".into(), Value::Number(Number::U(3))),
        ]);
        assert_eq!(v["name"], "x");
        assert!(v["missing"].is_null());
        assert_eq!(v["n"].as_f64(), Some(3.0));
        assert_eq!(v["n"].as_u64(), Some(3));
    }

    #[test]
    fn option_roundtrip_through_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let v = Value::Number(Number::U(5));
        assert_eq!(Option::<u32>::from_value(&v).unwrap(), Some(5));
    }

    #[test]
    fn numbers_compare_across_variants() {
        assert_eq!(Number::U(3), Number::F(3.0));
        assert_eq!(Number::I(-2), Number::F(-2.0));
        assert!(Number::F(0.5) != Number::U(0));
    }
}
