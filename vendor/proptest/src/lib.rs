//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range/tuple/vec/regex-string/bool strategies, and the
//! `proptest!`/`prop_assert!` macros. Compared to real proptest there is
//! no shrinking and no failure persistence; each test's RNG is seeded
//! deterministically from its module path and name, so runs are
//! reproducible and failures report the case number.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to drive generation (splitmix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG deterministically from a test's identity.
    pub fn for_test(module: &str, name: &str) -> Self {
        // FNV-1a over "module::name" for a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in module
            .bytes()
            .chain(b"::".iter().copied())
            .chain(name.bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width 64-bit range: the +1 wrapped to zero and
                    // every representable value is admissible.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                // unit_f64 is half-open; fold the missing endpoint in by
                // widening a hair and clamping.
                let x = lo + rng.unit_f64() * (hi - lo) * (1.0 + 1e-9);
                x.min(hi) as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Simplified regex string strategy: supports char classes `[a-z0-9_]`,
/// literal characters, and the quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a char class or a literal.
        let class: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                let c = chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                i += 2;
                vec![*c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!class.is_empty(), "empty char class in pattern `{pattern}`");
        // Parse an optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("quantifier lower bound"),
                        b.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

/// Length specification for [`collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy generating either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite fast while
        // still exercising varied inputs.
        Self { cases: 64 }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(module_path!(), stringify!($name));
                for __case in 0..__config.cases {
                    let __run = || {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                    };
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__run),
                    );
                    if let Err(err) = __outcome {
                        eprintln!(
                            "proptest case {}/{} failed in {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(err);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_test("t", "ranges");
        for _ in 0..200 {
            let v = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let f = (0.25f64..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::for_test("t", "regex");
        for _ in 0..100 {
            let s = "[a-c]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = "x[0-1]{2}".generate(&mut rng);
            assert_eq!(t.len(), 3);
            assert!(t.starts_with('x'));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::for_test("t", "vec");
        for _ in 0..100 {
            let v = crate::collection::vec((0u32..4, 0.0f64..1.0), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(0u32..9, 8).generate(&mut rng);
        assert_eq!(exact.len(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_binds_arguments(a in 0u32..10, b in crate::bool::ANY) {
            prop_assert!(a < 10);
            prop_assert_eq!(u8::from(b) <= 1, true);
        }
    }
}
