//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` with no
//! syn/quote dependency: the input `TokenStream` is walked directly and
//! impl code is emitted as formatted strings. Supported input shapes are
//! the ones this workspace uses — non-generic structs (named, tuple/
//! newtype, unit) and enums (unit, tuple, and struct variants) — encoded
//! with serde's JSON conventions: newtypes are transparent, enums are
//! externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

struct Field {
    name: String,
    ty: String,
}

enum VariantShape {
    Unit,
    Tuple(Vec<String>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        types: Vec<String>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

impl Item {
    fn name(&self) -> &str {
        match self {
            Item::NamedStruct { name, .. }
            | Item::TupleStruct { name, .. }
            | Item::UnitStruct { name }
            | Item::Enum { name, .. } => name,
        }
    }
}

// ---- Parsing ----

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute: consume the bracketed group.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&mut it);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return parse_enum(&mut it);
            }
            Some(_) => {}
            None => panic!("derive input contained no struct or enum"),
        }
    }
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

fn expect_ident(it: &mut TokenIter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected {what}, found {other:?}"),
    }
}

fn parse_struct(it: &mut TokenIter) -> Item {
    let name = expect_ident(it, "struct name");
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
            name,
            fields: parse_named_fields(g.stream()),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::TupleStruct {
            name,
            types: parse_tuple_types(g.stream()),
        },
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stand-in derive does not support generic types ({name})")
        }
        other => panic!("unexpected token after struct name: {other:?}"),
    }
}

fn parse_enum(it: &mut TokenIter) -> Item {
    let name = expect_ident(it, "enum name");
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stand-in derive does not support generic enums ({name})")
        }
        other => panic!("expected enum body, found {other:?}"),
    };
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        // Skip attributes on the variant.
        while let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '#' {
                it.next();
                it.next();
            } else {
                break;
            }
        }
        let vname = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let types = parse_tuple_types(g.stream());
                it.next();
                VariantShape::Tuple(types)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '=' {
                while let Some(tt) = it.peek() {
                    if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    it.next();
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
        variants.push(Variant { name: vname, shape });
    }
    Item::Enum { name, variants }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        let ty = collect_type(&mut it);
        fields.push(Field { name, ty });
    }
    fields
}

fn parse_tuple_types(stream: TokenStream) -> Vec<String> {
    let mut types = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the type.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        if it.peek().is_none() {
            break;
        }
        types.push(collect_type(&mut it));
    }
    types
}

/// Collects one type's tokens up to a top-level `,` (tracking `<...>`
/// nesting so commas inside generic arguments stay attached).
fn collect_type(it: &mut TokenIter) -> String {
    let mut depth = 0i32;
    let mut tokens: Vec<TokenTree> = Vec::new();
    while let Some(tt) = it.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                it.next();
                break;
            }
            _ => {}
        }
        tokens.push(it.next().unwrap());
    }
    tokens.into_iter().collect::<TokenStream>().to_string()
}

// ---- Code generation ----

fn gen_serialize(item: &Item) -> String {
    let name = item.name();
    let body = match item {
        Item::NamedStruct { fields, .. } => {
            let mut b = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!(
                    "serde::write_json_string(out, \"{n}\");\nout.push(':');\nserde::Serialize::to_json(&self.{n}, out);\n",
                    n = f.name
                ));
            }
            b.push_str("out.push('}');");
            b
        }
        Item::TupleStruct { types, .. } if types.len() == 1 => {
            // Newtype: serialize transparently as the inner value.
            "serde::Serialize::to_json(&self.0, out);".to_string()
        }
        Item::TupleStruct { types, .. } => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..types.len() {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!("serde::Serialize::to_json(&self.{i}, out);\n"));
            }
            b.push_str("out.push(']');");
            b
        }
        Item::UnitStruct { .. } => "out.push_str(\"null\");".to_string(),
        Item::Enum { variants, .. } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{v} => serde::write_json_string(out, \"{v}\"),\n",
                            v = v.name
                        ));
                    }
                    VariantShape::Tuple(types) => {
                        let binds: Vec<String> =
                            (0..types.len()).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{v}({binds}) => {{\nout.push('{{');\nserde::write_json_string(out, \"{v}\");\nout.push(':');\n",
                            v = v.name,
                            binds = binds.join(", ")
                        );
                        if binds.len() == 1 {
                            arm.push_str("serde::Serialize::to_json(__f0, out);\n");
                        } else {
                            arm.push_str("out.push('[');\n");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    arm.push_str("out.push(',');\n");
                                }
                                arm.push_str(&format!("serde::Serialize::to_json({b}, out);\n"));
                            }
                            arm.push_str("out.push(']');\n");
                        }
                        arm.push_str("out.push('}');\n},\n");
                        arms.push_str(&arm);
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut arm = format!(
                            "{name}::{v} {{ {binds} }} => {{\nout.push('{{');\nserde::write_json_string(out, \"{v}\");\nout.push(':');\nout.push('{{');\n",
                            v = v.name,
                            binds = binds.join(", ")
                        );
                        for (i, f) in fields.iter().enumerate() {
                            if i > 0 {
                                arm.push_str("out.push(',');\n");
                            }
                            arm.push_str(&format!(
                                "serde::write_json_string(out, \"{n}\");\nout.push(':');\nserde::Serialize::to_json({n}, out);\n",
                                n = f.name
                            ));
                        }
                        arm.push_str("out.push('}');\nout.push('}');\n},\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Serialize for {name} {{\n#[allow(unused_variables, clippy::all)]\nfn to_json(&self, out: &mut String) {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = item.name();
    let body = match item {
        Item::NamedStruct { fields, .. } => {
            let mut b =
                format!("let __obj = serde::expect_object(__v, \"{name}\")?;\nOk({name} {{\n");
            for f in fields {
                b.push_str(&format!(
                    "{n}: <{ty} as serde::Deserialize>::from_value(serde::obj_get(__obj, \"{n}\"))?,\n",
                    n = f.name,
                    ty = f.ty
                ));
            }
            b.push_str("})");
            b
        }
        Item::TupleStruct { types, .. } if types.len() == 1 => format!(
            "Ok({name}(<{ty} as serde::Deserialize>::from_value(__v)?))",
            ty = types[0]
        ),
        Item::TupleStruct { types, .. } => {
            let n = types.len();
            let mut b =
                format!("let __arr = serde::expect_array(__v, {n}, \"{name}\")?;\nOk({name}(\n");
            for (i, ty) in types.iter().enumerate() {
                b.push_str(&format!(
                    "<{ty} as serde::Deserialize>::from_value(&__arr[{i}])?,\n"
                ));
            }
            b.push_str("))");
            b
        }
        Item::UnitStruct { .. } => format!("Ok({name})"),
        Item::Enum { variants, .. } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n", v = v.name));
                    }
                    VariantShape::Tuple(types) if types.len() == 1 => {
                        arms.push_str(&format!(
                            "\"{v}\" => Ok({name}::{v}(<{ty} as serde::Deserialize>::from_value(__payload)?)),\n",
                            v = v.name,
                            ty = types[0]
                        ));
                    }
                    VariantShape::Tuple(types) => {
                        let n = types.len();
                        let mut arm = format!(
                            "\"{v}\" => {{\nlet __arr = serde::expect_array(__payload, {n}, \"{name}::{v}\")?;\nOk({name}::{v}(\n",
                            v = v.name
                        );
                        for (i, ty) in types.iter().enumerate() {
                            arm.push_str(&format!(
                                "<{ty} as serde::Deserialize>::from_value(&__arr[{i}])?,\n"
                            ));
                        }
                        arm.push_str("))\n},\n");
                        arms.push_str(&arm);
                    }
                    VariantShape::Named(fields) => {
                        let mut arm = format!(
                            "\"{v}\" => {{\nlet __obj = serde::expect_object(__payload, \"{name}::{v}\")?;\nOk({name}::{v} {{\n",
                            v = v.name
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "{n}: <{ty} as serde::Deserialize>::from_value(serde::obj_get(__obj, \"{n}\"))?,\n",
                                n = f.name,
                                ty = f.ty
                            ));
                        }
                        arm.push_str("})\n},\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!(
                "let (__tag, __payload) = serde::expect_enum(__v, \"{name}\")?;\nmatch __tag {{\n{arms}__other => Err(serde::Error::custom(format!(\"unknown variant `{{}}` for {name}\", __other))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Deserialize for {name} {{\n#[allow(unused_variables, clippy::all)]\nfn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
