//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the workspace benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) as a simple
//! wall-clock harness: each benchmark runs a warm-up pass, then
//! `sample_size` timed samples, and prints mean/min per-iteration times.
//! There is no statistical analysis, HTML report, or baseline storage.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id labeled `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Number of iterations per timed sample.
    iters_per_sample: u64,
    /// Collected per-iteration durations (one entry per sample).
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters_per_sample` calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.samples
            .push(elapsed / u32::try_from(self.iters_per_sample).unwrap_or(1));
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, routine: R) {
        run_benchmark(id, self.sample_size, routine);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        routine: R,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, routine);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, |b| {
            routine(b, input);
        });
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

fn run_benchmark<R: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut routine: R) {
    // Warm-up: one untimed sample.
    let mut warmup = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
    };
    routine(&mut warmup);

    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        routine(&mut bencher);
    }
    if bencher.samples.is_empty() {
        eprintln!("  {label:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / u32::try_from(bencher.samples.len()).unwrap_or(1);
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    eprintln!(
        "  {label:<48} mean {:>12} min {:>12} ({} samples)",
        format_duration(mean),
        format_duration(min),
        bencher.samples.len(),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4usize), &4usize, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
