//! Offline stand-in for `serde_json`, built on the vendored `serde`
//! stand-in: a recursive-descent JSON parser, compact and pretty
//! printers, and a `json!` macro covering object/array/scalar literals.

use serde::{Deserialize, Number, Serialize};

pub use serde::{Error, Number as JsonNumber, Value};

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to compact JSON text.
///
/// # Errors
/// Never fails for the supported types; the `Result` mirrors
/// serde_json's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_json(&mut out);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Never fails for the supported types.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value);
    let mut out = String::new();
    pretty(&v, 0, &mut out);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value_str(s)?;
    T::from_value(&v)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    let mut out = String::new();
    value.to_json(&mut out);
    parse_value_str(&out).expect("Serialize impls emit valid JSON")
}

/// Converts a [`Value`] tree into a `T`.
///
/// # Errors
/// Returns [`Error`] on shape mismatch.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T> {
    T::from_value(&v)
}

/// Serializes `value` into `buf` as compact JSON, reusing the buffer's
/// capacity: the buffer is cleared, not reallocated, so a caller that
/// keeps one scratch `String` per connection serializes every response
/// without a fresh allocation.
pub fn write_to_string<T: Serialize + ?Sized>(value: &T, buf: &mut String) {
    buf.clear();
    value.to_json(buf);
}

/// Serializes `value` as compact JSON directly to an [`std::io::Write`].
///
/// The text is staged through a thread-local scratch buffer (cleared,
/// never shrunk), so steady-state serialization performs no allocation.
///
/// # Errors
/// Propagates writer errors as [`Error`].
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
    }
    SCRATCH.with(|buf| {
        let mut buf = buf.borrow_mut();
        write_to_string(value, &mut buf);
        writer
            .write_all(buf.as_bytes())
            .map_err(|e| Error::custom(format!("io error: {e}")))
    })
}

/// Deserializes a `T` from a reader drained to EOF.
///
/// # Errors
/// Returns [`Error`] on read failure, malformed JSON or shape mismatch.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::custom(format!("io error: {e}")))?;
    from_str(&text)
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports `null`, array literals, object literals with string-literal
/// keys, and arbitrary serializable expressions (captured by reference).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn pretty(v: &Value, depth: usize, out: &mut String) {
    const INDENT: &str = "  ";
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                pretty(item, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push(']');
        }
        Value::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                serde::write_json_string(out, k);
                out.push_str(": ");
                pretty(val, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push('}');
        }
        other => other.to_json(out),
    }
}

// ---- Parser ----

fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Copy the unescaped run in one slice.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.eat_keyword("\\u") {
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let num = if integral {
            if text.starts_with('-') {
                text.parse::<i64>().map(Number::I).ok()
            } else {
                text.parse::<u64>().map(Number::U).ok()
            }
        } else {
            None
        };
        let num = match num {
            Some(n) => n,
            None => text
                .parse::<f64>()
                .map(Number::F)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
        };
        Ok(Value::Number(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":[1,-2,3.5,null,true],"b":"x\ny","c":{}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["b"], "x\ny");
    }

    #[test]
    fn json_macro_shapes() {
        let inner = vec![json!({"k": 1u32})];
        let v = json!({
            "name": "quiz",
            "score": 0.25f64,
            "items": inner,
            "none": Option::<u32>::None,
        });
        assert_eq!(v["name"], "quiz");
        assert_eq!(v["score"].as_f64(), Some(0.25));
        assert_eq!(v["items"].as_array().unwrap().len(), 1);
        assert!(v["none"].is_null());
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1u8, 2u8]).as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_printer_indents() {
        let v = json!({"a": 1u32, "b": vec![json!(2u8)]});
        let p = to_string_pretty(&v).unwrap();
        assert_eq!(p, "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
    }

    #[test]
    fn unicode_escapes() {
        let v: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A😀");
    }

    #[test]
    fn write_to_string_reuses_capacity() {
        let mut buf = String::with_capacity(256);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        for i in 0..50u32 {
            let v = json!({"op": "STATUS", "n": i});
            write_to_string(&v, &mut buf);
            assert!(buf.starts_with("{\"op\":\"STATUS\""), "{buf}");
        }
        assert_eq!(buf.as_ptr(), ptr, "no reallocation across reuses");
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn to_writer_from_reader_roundtrip() {
        let v = json!({"task": 7u32, "answer": 1u8, "worker": "W3"});
        let mut bytes = Vec::new();
        to_writer(&mut bytes, &v).unwrap();
        let back: Value = from_reader(bytes.as_slice()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["task"].as_u64(), Some(7));
    }

    #[test]
    fn to_writer_propagates_io_errors() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink closed"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(to_writer(Broken, &json!([1u8])).is_err());
        let bad: Result<Value> = from_reader(b"{\"a\": ".as_slice());
        assert!(bad.is_err());
    }
}
