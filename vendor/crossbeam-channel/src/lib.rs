//! Offline stand-in for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Only the multi-producer/single-consumer unbounded channel surface the
//! workspace uses is provided; `send`/`recv`/`try_recv` signatures match
//! crossbeam's.

pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        });
        assert!(rx.recv().is_err(), "all senders dropped");
    }
}
