//! Offline stand-in for `crossbeam-channel`.
//!
//! A multi-producer/multi-consumer channel over `Mutex<VecDeque>` +
//! `Condvar`, covering the surface the workspace uses: [`unbounded`] and
//! [`bounded`] constructors, blocking `send`/`recv`, non-blocking
//! `try_send`/`try_recv`, cloneable [`Sender`]s *and* [`Receiver`]s, and
//! crossbeam's disconnect semantics (a receiver drains buffered messages
//! before reporting disconnection; a sender fails once every receiver is
//! gone).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// The sending half gave up: every [`Receiver`] was dropped. Carries the
/// unsent message back, like crossbeam's.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Why a [`Sender::try_send`] could not enqueue.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// A bounded channel is at capacity; the message is handed back.
    Full(T),
    /// Every receiver was dropped; the message is handed back.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "Full(..)",
            TrySendError::Disconnected(_) => "Disconnected(..)",
        })
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "sending on a full channel",
            TrySendError::Disconnected(_) => "sending on a disconnected channel",
        })
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// The receiving half gave up: the channel is empty and every
/// [`Sender`] was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Why a [`Receiver::try_recv`] returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is buffered right now.
    Empty,
    /// No message is buffered and every sender was dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TryRecvError::Empty => "receiving on an empty channel",
            TryRecvError::Disconnected => "receiving on an empty and disconnected channel",
        })
    }
}

impl std::error::Error for TryRecvError {}

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(shared.clone()), Receiver(shared))
}

/// Creates an unbounded channel: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a bounded channel holding at most `cap` messages: `send`
/// blocks when full, `try_send` returns [`TrySendError::Full`].
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

/// The sending half. Cloneable; the channel disconnects for receivers
/// once every clone is dropped.
pub struct Sender<T>(Arc<Shared<T>>);

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while a bounded channel is full.
    ///
    /// # Errors
    /// Returns the value when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            match inner.cap {
                Some(cap) if inner.queue.len() >= cap => {
                    inner = self.0.not_full.wait(inner).unwrap();
                }
                _ => {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Enqueues `value` without blocking.
    ///
    /// # Errors
    /// [`TrySendError::Full`] when a bounded channel is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.0.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = inner.cap {
            if inner.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        inner.queue.push_back(value);
        drop(inner);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.0.inner.lock().unwrap().queue.len()
    }

    /// Whether no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().unwrap().senders += 1;
        Sender(self.0.clone())
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let last = {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            inner.senders == 0
        };
        if last {
            // Wake receivers parked on an empty queue so they observe
            // the disconnect.
            self.0.not_empty.notify_all();
        }
    }
}

/// The receiving half. Cloneable — any number of worker threads can
/// compete for messages (each message is delivered exactly once).
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty.
    /// Buffered messages are drained even after every sender is gone.
    ///
    /// # Errors
    /// [`RecvError`] once the channel is empty and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.0.not_empty.wait(inner).unwrap();
        }
    }

    /// Dequeues the next message without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is buffered,
    /// [`TryRecvError::Disconnected`] when additionally every sender is
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.0.inner.lock().unwrap();
        if let Some(v) = inner.queue.pop_front() {
            drop(inner);
            self.0.not_full.notify_one();
            return Ok(v);
        }
        if inner.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.0.inner.lock().unwrap().queue.len()
    }

    /// Whether no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().unwrap().receivers += 1;
        Receiver(self.0.clone())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let last = {
            let mut inner = self.0.inner.lock().unwrap();
            inner.receivers -= 1;
            inner.receivers == 0
        };
        if last {
            // Wake senders parked on a full queue so they observe the
            // disconnect.
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        });
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| tx.send(2).unwrap()); // blocks until the recv below
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        });
    }

    #[test]
    fn cloned_receivers_compete_for_messages() {
        let (tx, rx) = bounded::<u32>(64);
        let n = 50u32;
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let rx2 = rx.clone();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        std::thread::scope(|s| {
            s.spawn(|| {
                while let Ok(v) = rx.recv() {
                    a.push(v)
                }
            });
            s.spawn(|| {
                while let Ok(v) = rx2.recv() {
                    b.push(v)
                }
            });
        });
        let mut all: Vec<u32> = a.into_iter().chain(b).collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "exactly-once delivery");
    }

    #[test]
    fn receivers_drain_the_buffer_after_disconnect() {
        let (tx, rx) = bounded::<u32>(4);
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap(), 8);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn senders_fail_once_receivers_are_gone() {
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }
}
