//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing parking_lot's non-poisoning `lock()`/`read()`/
//! `write()` signatures. Poisoned locks are recovered transparently —
//! parking_lot has no poisoning, so callers written against it never
//! expect lock results.

use std::sync::{self, PoisonError};

/// A mutex that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
