//! # icrowd-estimate
//!
//! Worker-accuracy estimation — Section 3 of the iCrowd paper.
//!
//! * [`observed`] — *observed accuracies* `q_i^w`: 0/1 against ground
//!   truth for qualification microtasks, and Equation (5)'s
//!   consensus-probability model for ordinary globally completed
//!   microtasks.
//! * [`estimator`] — the full [`AccuracyEstimator`] implementing
//!   Algorithm 1: a graph [`icrowd_graph::LinearityIndex`] built offline,
//!   online estimation as a sparse weighted sum of precomputed PPR
//!   vectors, with per-worker caching and a configurable treatment of
//!   tasks the propagation never reaches ([`EstimationMode`]).
//! * [`uncertainty`] — the Step-3 beta-posterior uncertainty of an
//!   estimate over a task's graph neighborhood (Section 4.1).

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod estimator;
pub mod observed;
pub mod uncertainty;

pub use estimator::{AccuracyEstimator, EstimationMode};
pub use observed::{observed_accuracy, qualification_observed};
pub use uncertainty::NeighborhoodEvidence;
