//! Step-3 uncertainty — beta-posterior variance over graph neighborhoods.
//!
//! When iCrowd actively tests an unassigned worker (Section 4.1, Step 3)
//! it prefers tasks where the estimate is *uncertain*: the worker has
//! completed `N = N1 + N0` microtasks similar to the candidate task, `N1`
//! judged correct and `N0` incorrect, and the uncertainty is the variance
//! of `Beta(N1 + 1, N0 + 1)`:
//!
//! ```text
//! (N1+1)(N0+1) / ((N1+N0+2)^2 (N1+N0+3))
//! ```
//!
//! "Similar to" means adjacent in the similarity graph (or the task
//! itself). Observations carry fractional correctness `q ∈ [0, 1]`, so
//! the counts are fractional: an answer with observed accuracy `q`
//! contributes `q` to `N1` and `1 − q` to `N0` of every neighboring task.

use icrowd_core::probability::beta_variance;
use icrowd_core::task::TaskId;
use icrowd_graph::SimilarityGraph;

/// Per-task fractional evidence counts `(N1, N0)` for one worker.
///
/// Sparse: a worker's evidence only ever touches her observed tasks and
/// their graph neighbors, so the dense two-`Vec<f64>`-of-`|T|` layout
/// wasted O(|T|) zeroed memory *per worker* — and registering a worker
/// mid-campaign paid that allocation inside a single `request_task`
/// call (a multi-hundred-µs spike at Figure-10 scale). Absent entries
/// read as zero evidence, bit-identical to the dense representation.
#[derive(Debug, Clone)]
pub struct NeighborhoodEvidence {
    counts: std::collections::HashMap<u32, (f64, f64)>,
    num_tasks: usize,
}

impl NeighborhoodEvidence {
    /// Zero evidence over `num_tasks` tasks.
    pub fn new(num_tasks: usize) -> Self {
        Self {
            counts: std::collections::HashMap::new(),
            num_tasks,
        }
    }

    /// Records an observation with correctness `q` on `task`: the task
    /// itself and every graph neighbor gain `q` correct / `1 − q`
    /// incorrect fractional counts.
    pub fn record(&mut self, graph: &SimilarityGraph, task: TaskId, q: f64) {
        debug_assert!((0.0..=1.0).contains(&q));
        let cell = self.counts.entry(task.0).or_insert((0.0, 0.0));
        cell.0 += q;
        cell.1 += 1.0 - q;
        for (nb, _) in graph.neighbors(task) {
            let cell = self.counts.entry(nb.0).or_insert((0.0, 0.0));
            cell.0 += q;
            cell.1 += 1.0 - q;
        }
    }

    /// Withdraws a previously recorded observation (used when a
    /// re-grading replaces an observation — e.g. a late vote changes a
    /// task's Equation-(5) posterior — so evidence is never
    /// double-counted).
    pub fn withdraw(&mut self, graph: &SimilarityGraph, task: TaskId, q: f64) {
        debug_assert!((0.0..=1.0).contains(&q));
        let cell = self.counts.entry(task.0).or_insert((0.0, 0.0));
        cell.0 -= q;
        cell.1 -= 1.0 - q;
        for (nb, _) in graph.neighbors(task) {
            let cell = self.counts.entry(nb.0).or_insert((0.0, 0.0));
            cell.0 -= q;
            cell.1 -= 1.0 - q;
        }
    }

    /// The evidence counts `(N1, N0)` at `task`.
    pub fn counts(&self, task: TaskId) -> (f64, f64) {
        self.counts.get(&task.0).copied().unwrap_or((0.0, 0.0))
    }

    /// The beta-posterior variance at `task` — the paper's Step-3
    /// uncertainty score. Tasks with no nearby evidence score the
    /// uniform-prior maximum `1/12`.
    pub fn variance(&self, task: TaskId) -> f64 {
        let (n1, n0) = self.counts(task);
        beta_variance(n1, n0)
    }

    /// Number of tasks tracked.
    pub fn len(&self) -> usize {
        self.num_tasks
    }

    /// Whether no tasks are tracked.
    pub fn is_empty(&self) -> bool {
        self.num_tasks == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    fn path_graph() -> SimilarityGraph {
        SimilarityGraph::from_edges(4, &[(t(0), t(1), 0.9), (t(1), t(2), 0.9)])
    }

    #[test]
    fn evidence_reaches_neighbors_only() {
        let g = path_graph();
        let mut ev = NeighborhoodEvidence::new(4);
        ev.record(&g, t(0), 1.0);
        assert_eq!(ev.counts(t(0)), (1.0, 0.0));
        assert_eq!(ev.counts(t(1)), (1.0, 0.0), "direct neighbor sees it");
        assert_eq!(ev.counts(t(2)), (0.0, 0.0), "two hops away sees nothing");
        assert_eq!(ev.counts(t(3)), (0.0, 0.0), "isolated task sees nothing");
    }

    #[test]
    fn fractional_correctness_splits_counts() {
        let g = path_graph();
        let mut ev = NeighborhoodEvidence::new(4);
        ev.record(&g, t(1), 0.75);
        let (n1, n0) = ev.counts(t(1));
        assert!((n1 - 0.75).abs() < 1e-12);
        assert!((n0 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn variance_drops_as_evidence_accumulates() {
        let g = path_graph();
        let mut ev = NeighborhoodEvidence::new(4);
        let before = ev.variance(t(1));
        assert!((before - 1.0 / 12.0).abs() < 1e-12, "uniform prior");
        ev.record(&g, t(0), 1.0);
        let after_one = ev.variance(t(1));
        ev.record(&g, t(2), 1.0);
        ev.record(&g, t(1), 1.0);
        let after_three = ev.variance(t(1));
        assert!(after_one < before);
        assert!(after_three < after_one);
    }

    #[test]
    fn untouched_tasks_stay_maximally_uncertain() {
        let g = path_graph();
        let mut ev = NeighborhoodEvidence::new(4);
        ev.record(&g, t(0), 1.0);
        assert!((ev.variance(t(3)) - 1.0 / 12.0).abs() < 1e-12);
    }
}
