//! The graph-based accuracy estimator — Algorithm 1 of the paper.
//!
//! Offline, a [`LinearityIndex`] precomputes a PPR vector `p_{t_i}` per
//! microtask (Lemma 3). Online, a worker's accuracy vector is the sparse
//! weighted sum `Σ q_i^w · p_{t_i}` over her observed accuracies. The
//! estimator caches the resulting dense vector per worker and invalidates
//! it whenever new observations arrive, so repeated assignment rounds pay
//! `O(1)` per lookup.
//!
//! ## Unreached tasks
//!
//! PPR mass decays with graph distance, so a task far from everything the
//! worker completed receives (near-)zero mass. Taken literally (the
//! paper's formulation, [`EstimationMode::Raw`]), that reads as "accuracy
//! 0", which conflates *unknown* with *bad* — the paper compensates with
//! its Step-3 performance testing. [`EstimationMode::Centered`]
//! (the default) instead propagates *deviations from a per-worker
//! baseline* (her warm-up average): tasks the graph cannot reach fall
//! back to the baseline, tasks near correct answers rise above it and
//! tasks near mistakes sink below it. Both modes share the same index and
//! are compared by the `ablation` bench.

use icrowd_core::answer::{Answer, Vote};
use icrowd_core::config::ICrowdConfig;
use icrowd_core::task::TaskId;
use icrowd_core::worker::WorkerId;
use icrowd_graph::{LinearityIndex, SimilarityGraph, SparseTaskVector};

use crate::observed::{observed_accuracy, qualification_observed};
use crate::uncertainty::NeighborhoodEvidence;

/// How raw propagated mass is turned into accuracy estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimationMode {
    /// Literal Algorithm 1: `p = Σ q_i · p_{t_i}`, clamped to `[0, 1]`.
    /// Tasks out of propagation reach estimate to ~0.
    Raw,
    /// Propagate deviations `q_i − baseline` and re-add the baseline,
    /// where the baseline is the worker's warm-up average accuracy (or
    /// the configured default before any qualification completes).
    Centered,
    /// Like `Centered`, but the propagated deviation at each task is
    /// *normalized* by the total PPR mass reaching it and shrunk by the
    /// effective number of contributing observations:
    ///
    /// ```text
    /// p_j = b + (Σ_i (q_i − b) · M_ij / Σ_i M_ij) · n_eff / (n_eff + 1)
    /// n_eff = (Σ_i M_ij)² / Σ_i M_ij²
    /// ```
    ///
    /// Rationale: in a dense topical clique every PPR vector spreads its
    /// mass over ~degree neighbors, so un-normalized propagation
    /// (`Raw`/`Centered`) shrinks domain evidence by 1/degree and the
    /// ranking degenerates to the workers' *average* accuracies — the
    /// very failure mode iCrowd exists to avoid. Normalizing makes the
    /// estimate scale-free (a weighted average of nearby evidence), and
    /// the `n_eff` shrinkage keeps one lucky answer from saturating a
    /// whole domain. This is the default; the `ablation` bench compares
    /// all three modes.
    #[default]
    Normalized,
}

/// Per-worker estimation state.
#[derive(Debug, Clone)]
struct WorkerState {
    /// Observed accuracies `q^w` over globally completed tasks, keyed by
    /// task id. A map (not a sparse vector) because `q = 0` — a provably
    /// wrong answer — is a *valid, informative* observation that a
    /// zero-dropping sparse representation would silently discard.
    observed: std::collections::BTreeMap<u32, f64>,
    /// Correct / total counts on qualification microtasks.
    quals_correct: u32,
    quals_total: u32,
    /// Cached dense estimate, invalidated on new observations.
    cache: Option<Vec<f64>>,
    /// Evidence counts for Step-3 uncertainty.
    evidence: NeighborhoodEvidence,
}

impl WorkerState {
    fn new(num_tasks: usize) -> Self {
        Self {
            observed: std::collections::BTreeMap::new(),
            quals_correct: 0,
            quals_total: 0,
            cache: None,
            evidence: NeighborhoodEvidence::new(num_tasks),
        }
    }
}

/// The accuracy estimator: linearity index + per-worker observations.
#[derive(Debug, Clone)]
pub struct AccuracyEstimator {
    graph: SimilarityGraph,
    index: LinearityIndex,
    config: ICrowdConfig,
    mode: EstimationMode,
    workers: Vec<WorkerState>,
}

impl AccuracyEstimator {
    /// Builds the estimator, running the offline index construction
    /// (Algorithm 1 lines 2–4).
    pub fn new(graph: SimilarityGraph, config: ICrowdConfig, mode: EstimationMode) -> Self {
        config.validate().expect("invalid configuration");
        let index = LinearityIndex::build(&graph, config.alpha, &config.ppr);
        Self {
            graph,
            index,
            config,
            mode,
            workers: Vec::new(),
        }
    }

    /// The similarity graph the estimator runs on.
    pub fn graph(&self) -> &SimilarityGraph {
        &self.graph
    }

    /// The precomputed linearity index.
    pub fn index(&self) -> &LinearityIndex {
        &self.index
    }

    /// The configuration in force.
    pub fn config(&self) -> &ICrowdConfig {
        &self.config
    }

    /// The estimation mode in force.
    pub fn mode(&self) -> EstimationMode {
        self.mode
    }

    /// Number of tasks covered.
    pub fn num_tasks(&self) -> usize {
        self.index.num_tasks()
    }

    /// Number of registered workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Ensures state exists for `worker` (ids are dense; registering
    /// worker `w` implicitly registers every smaller id).
    pub fn register_worker(&mut self, worker: WorkerId) {
        while self.workers.len() <= worker.index() {
            self.workers.push(WorkerState::new(self.num_tasks()));
        }
    }

    /// Records a qualification answer for `worker` on `task` with known
    /// ground truth: `q_i` becomes exactly 0 or 1 and warm-up counters
    /// advance.
    pub fn record_qualification(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        answer: Answer,
        ground_truth: Answer,
    ) {
        self.register_worker(worker);
        let q = qualification_observed(answer, ground_truth);
        let state = &mut self.workers[worker.index()];
        state.quals_total += 1;
        if q > 0.5 {
            state.quals_correct += 1;
        }
        Self::set_observed(&self.graph, state, task, q);
    }

    /// Records a globally completed microtask: every voter's observed
    /// accuracy is (re)computed from Equation (5) using the voters'
    /// current estimates.
    ///
    /// `votes` must be the full vote set of `task` and `consensus` its
    /// consensus answer.
    pub fn record_completed_task(&mut self, task: TaskId, votes: &[Vote], consensus: Answer) {
        // Gather current estimates first (immutable pass), then update.
        let mut match_accs = Vec::new();
        let mut mismatch_accs = Vec::new();
        for v in votes {
            self.register_worker(v.worker);
            let p = self.accuracy(v.worker, task);
            if v.answer == consensus {
                match_accs.push(p);
            } else {
                mismatch_accs.push(p);
            }
        }
        for v in votes {
            let matches = v.answer == consensus;
            let q = observed_accuracy(matches, &match_accs, &mismatch_accs);
            let state = &mut self.workers[v.worker.index()];
            Self::set_observed(&self.graph, state, task, q);
        }
    }

    fn set_observed(graph: &SimilarityGraph, state: &mut WorkerState, task: TaskId, q: f64) {
        let old = state.observed.insert(task.0, q);
        state.cache = None;
        // Replace, don't double-count: withdraw the previous observation's
        // evidence before adding the new one.
        if let Some(old_q) = old {
            state.evidence.withdraw(graph, task, old_q);
        }
        state.evidence.record(graph, task, q);
    }

    /// The worker's warm-up average accuracy, if she completed any
    /// qualification microtasks.
    pub fn warmup_average(&self, worker: WorkerId) -> Option<f64> {
        let s = self.workers.get(worker.index())?;
        (s.quals_total > 0).then(|| f64::from(s.quals_correct) / f64::from(s.quals_total))
    }

    /// The baseline accuracy used for unreached tasks: the warm-up
    /// average when available, else the configured default.
    pub fn baseline(&self, worker: WorkerId) -> f64 {
        self.warmup_average(worker)
            .unwrap_or(self.config.default_accuracy)
    }

    /// Whether warm-up evidence says this worker should be rejected
    /// (average below threshold after enough qualification answers).
    pub fn should_reject(&self, worker: WorkerId) -> bool {
        let Some(s) = self.workers.get(worker.index()) else {
            return false;
        };
        s.quals_total as usize >= self.config.warmup.reject_after
            && (f64::from(s.quals_correct) / f64::from(s.quals_total))
                < self.config.warmup.reject_threshold
    }

    /// The estimated accuracy vector `p^w` (dense, one entry per task),
    /// recomputing and caching if observations changed.
    pub fn accuracies(&mut self, worker: WorkerId) -> &[f64] {
        self.register_worker(worker);
        let baseline = self.baseline(worker);
        let mode = self.mode;
        let index = &self.index;
        let state = &mut self.workers[worker.index()];
        if state.cache.is_none() {
            state.cache = Some(Self::compute(index, state, baseline, mode));
        }
        state.cache.as_deref().expect("cache just filled")
    }

    /// Single-task estimate without borrowing the whole vector mutably
    /// (recomputes through the cache when stale).
    pub fn accuracy(&mut self, worker: WorkerId, task: TaskId) -> f64 {
        self.accuracies(worker)[task.index()]
    }

    /// Read-only estimate for an already-cached worker; returns the
    /// baseline if no cache exists yet.
    pub fn accuracy_cached(&self, worker: WorkerId, task: TaskId) -> f64 {
        match self.workers.get(worker.index()) {
            Some(WorkerState { cache: Some(c), .. }) => c[task.index()],
            _ => self.baseline(worker),
        }
    }

    /// Estimates for an explicit candidate list only, without building or
    /// touching the dense per-worker cache.
    ///
    /// Cost is `O(nnz(observed) · nnz(index vectors) + |tasks|)` —
    /// independent of the total task count — which is what keeps
    /// per-request assignment flat on million-task sets (Figure 10).
    pub fn accuracies_for(&mut self, worker: WorkerId, tasks: &[TaskId]) -> Vec<f64> {
        self.register_worker(worker);
        let baseline = self.baseline(worker);
        let mode = self.mode;
        let state = &self.workers[worker.index()];
        // Slot lookup for candidate tasks.
        let slots: std::collections::HashMap<u32, usize> = tasks
            .iter()
            .enumerate()
            .map(|(s, t)| (t.0, s))
            .collect();
        match mode {
            EstimationMode::Raw => {
                let mut out = vec![0.0; tasks.len()];
                for (&i, &q) in state.observed.iter() {
                    for (j, m) in self.index.vector(TaskId(i)).iter() {
                        if let Some(&s) = slots.get(&j.0) {
                            out[s] += q * m;
                        }
                    }
                }
                for v in &mut out {
                    *v = v.clamp(0.0, 1.0);
                }
                out
            }
            EstimationMode::Centered => {
                let mut out = vec![0.0; tasks.len()];
                for (&i, &q) in state.observed.iter() {
                    let d = q - baseline;
                    for (j, m) in self.index.vector(TaskId(i)).iter() {
                        if let Some(&s) = slots.get(&j.0) {
                            out[s] += d * m;
                        }
                    }
                }
                for v in &mut out {
                    *v = (baseline + *v).clamp(0.0, 1.0);
                }
                out
            }
            EstimationMode::Normalized => {
                let mut dev = vec![0.0; tasks.len()];
                let mut mass = vec![0.0; tasks.len()];
                let mut mass2 = vec![0.0; tasks.len()];
                for (&i, &q) in state.observed.iter() {
                    let info = (2.0 * q - 1.0).abs();
                    if info == 0.0 {
                        continue;
                    }
                    let d = q - baseline;
                    for (j, m) in self.index.vector(TaskId(i)).iter() {
                        if let Some(&s) = slots.get(&j.0) {
                            let wm = info * m;
                            dev[s] += d * wm;
                            mass[s] += wm;
                            mass2[s] += wm * wm;
                        }
                    }
                }
                (0..tasks.len())
                    .map(|s| {
                        if mass[s] <= 0.0 {
                            return baseline;
                        }
                        let avg_dev = dev[s] / mass[s];
                        let n_eff = mass[s] * mass[s] / mass2[s];
                        (baseline + avg_dev * n_eff / (n_eff + 1.0)).clamp(0.0, 1.0)
                    })
                    .collect()
            }
        }
    }

    fn compute(
        index: &LinearityIndex,
        state: &WorkerState,
        baseline: f64,
        mode: EstimationMode,
    ) -> Vec<f64> {
        match mode {
            EstimationMode::Raw => {
                let q: SparseTaskVector = state
                    .observed
                    .iter()
                    .map(|(&t, &q)| (t, q))
                    .collect();
                let mut p = index.estimate_dense(&q);
                for v in &mut p {
                    *v = v.clamp(0.0, 1.0);
                }
                p
            }
            EstimationMode::Centered => {
                // Propagate deviations from the baseline, then re-add it.
                // The restart weight damps a single observation's deviation
                // at its own task (e.g. x0.5 at alpha = 1) — deliberately
                // NOT compensated: damping keeps one lucky qualification
                // answer from saturating a worker's estimates at 0/1, so
                // ranking stays informative until several observations
                // agree.
                let centered: SparseTaskVector = state
                    .observed
                    .iter()
                    .map(|(&t, &q)| (t, q - baseline))
                    .collect();
                let mut p = index.estimate_dense(&centered);
                for v in &mut p {
                    *v = (baseline + *v).clamp(0.0, 1.0);
                }
                p
            }
            EstimationMode::Normalized => {
                let n = index.num_tasks();
                let mut dev = vec![0.0f64; n];
                let mut mass = vec![0.0f64; n];
                let mut mass2 = vec![0.0f64; n];
                for (&i, &q) in state.observed.iter() {
                    // Information weight: an Equation-(5) posterior of 0.5
                    // says nothing about the worker (it is exactly what a
                    // coin-flip context produces) and must not dilute the
                    // informative observations; ground-truth grades (q of
                    // 0 or 1) carry full weight.
                    let info = (2.0 * q - 1.0).abs();
                    if info == 0.0 {
                        continue;
                    }
                    let d = q - baseline;
                    for (j, m) in index.vector(TaskId(i)).iter() {
                        let wm = info * m;
                        dev[j.index()] += d * wm;
                        mass[j.index()] += wm;
                        mass2[j.index()] += wm * wm;
                    }
                }
                (0..n)
                    .map(|j| {
                        if mass[j] <= 0.0 {
                            return baseline;
                        }
                        let avg_dev = dev[j] / mass[j];
                        let n_eff = mass[j] * mass[j] / mass2[j];
                        (baseline + avg_dev * n_eff / (n_eff + 1.0)).clamp(0.0, 1.0)
                    })
                    .collect()
            }
        }
    }

    /// The worker's observed accuracies `q^w`, keyed by task id.
    /// Includes `q = 0` entries (provably wrong answers).
    pub fn observed(&self, worker: WorkerId) -> Option<&std::collections::BTreeMap<u32, f64>> {
        self.workers.get(worker.index()).map(|s| &s.observed)
    }

    /// The observed accuracy of `worker` on `task`, if recorded.
    pub fn observed_at(&self, worker: WorkerId, task: TaskId) -> Option<f64> {
        self.workers
            .get(worker.index())
            .and_then(|s| s.observed.get(&task.0).copied())
    }

    /// Step-3 uncertainty of the estimate of `worker` on `task`: the
    /// beta-posterior variance over the task's graph neighborhood.
    pub fn uncertainty(&self, worker: WorkerId, task: TaskId) -> f64 {
        match self.workers.get(worker.index()) {
            Some(s) => s.evidence.variance(task),
            // Never-seen workers carry maximal (uniform-prior) variance.
            None => icrowd_core::probability::beta_variance(0.0, 0.0),
        }
    }

    /// Number of globally completed tasks with recorded observations for
    /// `worker`.
    pub fn num_observations(&self, worker: WorkerId) -> usize {
        self.workers
            .get(worker.index())
            .map_or(0, |s| s.observed.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::TaskId;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    fn w(i: u32) -> WorkerId {
        WorkerId(i)
    }

    /// Two 3-cliques (tasks 0-2 and 3-5), mirroring Figure 3's topical
    /// block structure.
    fn two_clique_graph() -> SimilarityGraph {
        SimilarityGraph::from_edges(
            6,
            &[
                (t(0), t(1), 0.9),
                (t(1), t(2), 0.9),
                (t(0), t(2), 0.9),
                (t(3), t(4), 0.9),
                (t(4), t(5), 0.9),
                (t(3), t(5), 0.9),
            ],
        )
    }

    fn estimator(mode: EstimationMode) -> AccuracyEstimator {
        AccuracyEstimator::new(two_clique_graph(), ICrowdConfig::default(), mode)
    }

    #[test]
    fn qualification_signal_propagates_within_clique() {
        let mut e = estimator(EstimationMode::Centered);
        // Worker nails task 0 (clique A) and flunks task 3 (clique B).
        e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
        e.record_qualification(w(0), t(3), Answer::NO, Answer::YES);
        let p = e.accuracies(w(0)).to_vec();
        // Within clique A estimates exceed clique B everywhere.
        for a in 0..3 {
            for b in 3..6 {
                assert!(
                    p[a] > p[b],
                    "clique A task {a} ({}) should beat clique B task {b} ({})",
                    p[a],
                    p[b]
                );
            }
        }
        // The completed tasks themselves are the extremes.
        assert!(p[0] >= p[1] && p[0] >= p[2]);
        assert!(p[3] <= p[4] && p[3] <= p[5]);
    }

    #[test]
    fn centered_mode_falls_back_to_baseline_for_unreached_tasks() {
        let g = SimilarityGraph::from_edges(3, &[(t(0), t(1), 0.9)]);
        let mut e = AccuracyEstimator::new(g, ICrowdConfig::default(), EstimationMode::Centered);
        // Five perfect qualifications on task 0 → baseline 1.0... use a mix
        // to get baseline 0.8: 4 correct, 1 wrong.
        for (task, ok) in [(0u32, true), (0, true), (0, true), (0, true), (1, false)] {
            // Record on distinct tasks to keep observed sparse sensible:
            // use task 0 and 1 (task ids may repeat; set_observed replaces).
            let ans = if ok { Answer::YES } else { Answer::NO };
            e.record_qualification(w(0), t(task), ans, Answer::YES);
        }
        assert_eq!(e.warmup_average(w(0)), Some(0.8));
        let p = e.accuracies(w(0)).to_vec();
        // Task 2 is isolated: no propagation reaches it → exact baseline.
        assert!((p[2] - 0.8).abs() < 1e-9, "unreached task got {}", p[2]);
    }

    #[test]
    fn raw_mode_estimates_zero_for_unreached_tasks() {
        let g = SimilarityGraph::from_edges(3, &[(t(0), t(1), 0.9)]);
        let mut e = AccuracyEstimator::new(g, ICrowdConfig::default(), EstimationMode::Raw);
        e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
        let p = e.accuracies(w(0)).to_vec();
        assert!(p[0] > 0.0);
        assert_eq!(p[2], 0.0, "raw mode leaves unreached tasks at zero");
    }

    #[test]
    fn completed_task_updates_all_voters() {
        let mut e = estimator(EstimationMode::Centered);
        // With every voter at the uninformative 0.5 baseline, Equation (5)
        // yields exactly 0.5 for everyone (2-vs-1 at even odds carries no
        // information). Give the majority voters prior positive evidence so
        // the consensus is credible.
        e.record_qualification(w(0), t(2), Answer::YES, Answer::YES);
        e.record_qualification(w(1), t(2), Answer::YES, Answer::YES);
        let votes = vec![
            Vote {
                worker: w(0),
                answer: Answer::YES,
            },
            Vote {
                worker: w(1),
                answer: Answer::YES,
            },
            Vote {
                worker: w(2),
                answer: Answer::NO,
            },
        ];
        e.record_completed_task(t(1), &votes, Answer::YES);
        assert_eq!(e.num_observations(w(0)), 2, "qualification + consensus");
        assert_eq!(e.num_observations(w(2)), 1);
        let q_match = e.observed_at(w(0), t(1)).unwrap();
        let q_dissent = e.observed_at(w(2), t(1)).unwrap();
        assert!(q_match > 0.5, "matching the consensus is positive evidence");
        assert!(q_dissent < 0.5, "dissenting is negative evidence");
        assert!((q_match + q_dissent - 1.0).abs() < 1e-9);
        // Estimates reflect it: w0 beats w2 on the neighboring task 0.
        let p0 = e.accuracy(w(0), t(0));
        let p2 = e.accuracy(w(2), t(0));
        assert!(p0 > p2);
    }

    #[test]
    fn re_recording_a_task_replaces_rather_than_accumulates() {
        let mut e = estimator(EstimationMode::Raw);
        e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
        let first = e.observed_at(w(0), t(0)).unwrap();
        assert_eq!(first, 1.0);
        e.record_qualification(w(0), t(0), Answer::NO, Answer::YES);
        let second = e.observed_at(w(0), t(0)).unwrap();
        assert_eq!(second, 0.0, "replacement, not accumulation");
    }

    #[test]
    fn rejection_threshold_follows_config() {
        // Use the paper's illustrative 0.6 threshold explicitly (the
        // library default is spammer-level 0.4).
        let config = ICrowdConfig {
            warmup: icrowd_core::config::WarmupConfig {
                reject_threshold: 0.6,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut e = AccuracyEstimator::new(two_clique_graph(), config, EstimationMode::Centered);
        // 2 correct of 5 = 0.4 < 0.6 → reject.
        let answers = [true, true, false, false, false];
        for (i, ok) in answers.iter().enumerate() {
            let ans = if *ok { Answer::YES } else { Answer::NO };
            e.record_qualification(w(0), t(i as u32), ans, Answer::YES);
        }
        assert!(e.should_reject(w(0)));
        // 4 of 5 correct → keep.
        let answers = [true, true, true, true, false];
        for (i, ok) in answers.iter().enumerate() {
            let ans = if *ok { Answer::YES } else { Answer::NO };
            e.record_qualification(w(1), t(i as u32), ans, Answer::YES);
        }
        assert!(!e.should_reject(w(1)));
        // Too few answers → never reject yet.
        e.record_qualification(w(2), t(0), Answer::NO, Answer::YES);
        assert!(!e.should_reject(w(2)));
    }

    #[test]
    fn unknown_worker_defaults() {
        let e = estimator(EstimationMode::Centered);
        assert_eq!(e.warmup_average(w(9)), None);
        assert_eq!(e.baseline(w(9)), 0.5);
        assert!(!e.should_reject(w(9)));
        assert_eq!(e.accuracy_cached(w(9), t(0)), 0.5);
        // Unknown workers have the uniform-prior variance.
        assert!((e.uncertainty(w(9), t(0)) - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn cache_invalidation_on_new_evidence() {
        let mut e = estimator(EstimationMode::Centered);
        e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
        let before = e.accuracy(w(0), t(1));
        e.record_qualification(w(0), t(1), Answer::NO, Answer::YES);
        let after = e.accuracy(w(0), t(1));
        assert!(after < before, "fresh negative evidence must lower the estimate");
    }

    #[test]
    fn sparse_path_matches_dense_path_in_every_mode() {
        for mode in [
            EstimationMode::Raw,
            EstimationMode::Centered,
            EstimationMode::Normalized,
        ] {
            let mut e = estimator(mode);
            e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
            e.record_qualification(w(0), t(3), Answer::NO, Answer::YES);
            let votes = vec![
                Vote {
                    worker: w(0),
                    answer: Answer::YES,
                },
                Vote {
                    worker: w(1),
                    answer: Answer::YES,
                },
            ];
            e.record_completed_task(t(1), &votes, Answer::YES);
            let all: Vec<TaskId> = (0..6).map(t).collect();
            let sparse = e.accuracies_for(w(0), &all);
            let dense = e.accuracies(w(0)).to_vec();
            for (i, (s, d)) in sparse.iter().zip(&dense).enumerate() {
                assert!(
                    (s - d).abs() < 1e-12,
                    "{mode:?} task {i}: sparse {s} vs dense {d}"
                );
            }
        }
    }

    #[test]
    fn estimates_always_in_unit_interval() {
        let mut e = estimator(EstimationMode::Centered);
        for i in 0..6u32 {
            let ans = if i % 2 == 0 { Answer::YES } else { Answer::NO };
            e.record_qualification(w(0), t(i), ans, Answer::YES);
        }
        for &v in e.accuracies(w(0)) {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
