//! The graph-based accuracy estimator — Algorithm 1 of the paper.
//!
//! Offline, a [`LinearityIndex`] precomputes a PPR vector `p_{t_i}` per
//! microtask (Lemma 3). Online, a worker's accuracy vector is the sparse
//! weighted sum `Σ q_i^w · p_{t_i}` over her observed accuracies.
//!
//! ## Incremental accumulators
//!
//! Rather than re-summing over all observations on every estimate, each
//! worker carries *running accumulators* keyed by task id — per task `j`
//! the weighted sum `Σ_i q_i·w_i·M_ij`, the mass `Σ_i w_i·M_ij` and the
//! squared mass `Σ_i (w_i·M_ij)²` (for the effective-sample-size
//! shrinkage), where `w_i` is the mode's information weight. All three
//! are independent of the worker's baseline, so recording one new
//! observation is an `O(nnz(p_t))` delta: subtract the old observation's
//! contribution (replacement case), add the new one. A per-cell
//! contributor count retires a cell exactly when its last observation is
//! withdrawn, so cancelled terms cannot leave floating-point residue in
//! the normalized mode's `dev/mass` quotient. Estimates at any task are
//! then a single cell lookup; the cached dense vector is patched in
//! place over the delta's support whenever the baseline is unchanged,
//! and only a baseline shift (a new qualification grade) forces a full
//! — still accumulator-driven — rebuild.
//!
//! ## Unreached tasks
//!
//! PPR mass decays with graph distance, so a task far from everything the
//! worker completed receives (near-)zero mass. Taken literally (the
//! paper's formulation, [`EstimationMode::Raw`]), that reads as "accuracy
//! 0", which conflates *unknown* with *bad* — the paper compensates with
//! its Step-3 performance testing. [`EstimationMode::Centered`]
//! (the default) instead propagates *deviations from a per-worker
//! baseline* (her warm-up average): tasks the graph cannot reach fall
//! back to the baseline, tasks near correct answers rise above it and
//! tasks near mistakes sink below it. Both modes share the same index and
//! are compared by the `ablation` bench.

use icrowd_core::answer::{Answer, Vote};
use icrowd_core::config::ICrowdConfig;
use icrowd_core::task::TaskId;
use icrowd_core::worker::WorkerId;
use icrowd_graph::{LinearityIndex, SimilarityGraph, SparseTaskVector};

use crate::observed::{observed_accuracy, qualification_observed};
use crate::uncertainty::NeighborhoodEvidence;

/// How raw propagated mass is turned into accuracy estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimationMode {
    /// Literal Algorithm 1: `p = Σ q_i · p_{t_i}`, clamped to `[0, 1]`.
    /// Tasks out of propagation reach estimate to ~0.
    Raw,
    /// Propagate deviations `q_i − baseline` and re-add the baseline,
    /// where the baseline is the worker's warm-up average accuracy (or
    /// the configured default before any qualification completes).
    Centered,
    /// Like `Centered`, but the propagated deviation at each task is
    /// *normalized* by the total PPR mass reaching it and shrunk by the
    /// effective number of contributing observations:
    ///
    /// ```text
    /// p_j = b + (Σ_i (q_i − b) · M_ij / Σ_i M_ij) · n_eff / (n_eff + 1)
    /// n_eff = (Σ_i M_ij)² / Σ_i M_ij²
    /// ```
    ///
    /// Rationale: in a dense topical clique every PPR vector spreads its
    /// mass over ~degree neighbors, so un-normalized propagation
    /// (`Raw`/`Centered`) shrinks domain evidence by 1/degree and the
    /// ranking degenerates to the workers' *average* accuracies — the
    /// very failure mode iCrowd exists to avoid. Normalizing makes the
    /// estimate scale-free (a weighted average of nearby evidence), and
    /// the `n_eff` shrinkage keeps one lucky answer from saturating a
    /// whole domain. This is the default; the `ablation` bench compares
    /// all three modes.
    #[default]
    Normalized,
}

/// One task's running accumulator cell. Field meaning depends on the
/// [`EstimationMode`]:
///
/// * `Raw`: `s1 = Σ q_i·M_ij`; `mass`/`mass2` unused.
/// * `Centered`: `s1 = Σ q_i·M_ij`, `mass = Σ M_ij`.
/// * `Normalized`: `s1 = Σ q_i·info_i·M_ij`, `mass = Σ info_i·M_ij`,
///   `mass2 = Σ (info_i·M_ij)²`.
///
/// All are baseline-free: centered deviations are recovered at read time
/// as `s1 − b·mass`, so a shifting warm-up average never forces an
/// accumulator rebuild.
#[derive(Debug, Clone, Copy, Default)]
struct AccumCell {
    /// Number of observations currently contributing. When it returns to
    /// zero the cell is *removed*, restoring exact zeros instead of the
    /// `O(ε)` residue numeric cancellation would leave (which the
    /// normalized mode would otherwise divide by).
    n: u32,
    s1: f64,
    mass: f64,
    mass2: f64,
}

/// Per-worker estimation state.
#[derive(Debug, Clone)]
struct WorkerState {
    /// Observed accuracies `q^w` over globally completed tasks, keyed by
    /// task id. A map (not a sparse vector) because `q = 0` — a provably
    /// wrong answer — is a *valid, informative* observation that a
    /// zero-dropping sparse representation would silently discard.
    observed: std::collections::BTreeMap<u32, f64>,
    /// Running accumulators over the union of the observed tasks' PPR
    /// supports, keyed by task id. Maintained incrementally by
    /// [`AccuracyEstimator::set_observed`].
    accum: std::collections::BTreeMap<u32, AccumCell>,
    /// Correct / total counts on qualification microtasks.
    quals_correct: u32,
    quals_total: u32,
    /// Cached dense estimate. Patched in place over a delta's support
    /// when the baseline is unchanged; dropped on baseline shifts.
    cache: Option<Vec<f64>>,
    /// The baseline the cache was computed with (meaningless while
    /// `cache` is `None`).
    cache_baseline: f64,
    /// Evidence counts for Step-3 uncertainty.
    evidence: NeighborhoodEvidence,
}

impl WorkerState {
    fn new(num_tasks: usize) -> Self {
        Self {
            observed: std::collections::BTreeMap::new(),
            accum: std::collections::BTreeMap::new(),
            quals_correct: 0,
            quals_total: 0,
            cache: None,
            cache_baseline: 0.0,
            evidence: NeighborhoodEvidence::new(num_tasks),
        }
    }
}

/// The accuracy estimator: linearity index + per-worker observations.
#[derive(Debug, Clone)]
pub struct AccuracyEstimator {
    graph: SimilarityGraph,
    index: LinearityIndex,
    config: ICrowdConfig,
    mode: EstimationMode,
    workers: Vec<WorkerState>,
}

impl AccuracyEstimator {
    /// Builds the estimator, running the offline index construction
    /// (Algorithm 1 lines 2–4).
    pub fn new(graph: SimilarityGraph, config: ICrowdConfig, mode: EstimationMode) -> Self {
        config.validate().expect("invalid configuration");
        let index = LinearityIndex::build(&graph, config.alpha, &config.ppr);
        Self {
            graph,
            index,
            config,
            mode,
            workers: Vec::new(),
        }
    }

    /// The similarity graph the estimator runs on.
    pub fn graph(&self) -> &SimilarityGraph {
        &self.graph
    }

    /// The precomputed linearity index.
    pub fn index(&self) -> &LinearityIndex {
        &self.index
    }

    /// The configuration in force.
    pub fn config(&self) -> &ICrowdConfig {
        &self.config
    }

    /// The estimation mode in force.
    pub fn mode(&self) -> EstimationMode {
        self.mode
    }

    /// Number of tasks covered.
    pub fn num_tasks(&self) -> usize {
        self.index.num_tasks()
    }

    /// Number of registered workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Ensures state exists for `worker` (ids are dense; registering
    /// worker `w` implicitly registers every smaller id).
    pub fn register_worker(&mut self, worker: WorkerId) {
        while self.workers.len() <= worker.index() {
            self.workers.push(WorkerState::new(self.num_tasks()));
        }
    }

    /// Records a qualification answer for `worker` on `task` with known
    /// ground truth: `q_i` becomes exactly 0 or 1 and warm-up counters
    /// advance.
    pub fn record_qualification(
        &mut self,
        worker: WorkerId,
        task: TaskId,
        answer: Answer,
        ground_truth: Answer,
    ) {
        self.register_worker(worker);
        let q = qualification_observed(answer, ground_truth);
        let default_accuracy = self.config.default_accuracy;
        let mode = self.mode;
        let state = &mut self.workers[worker.index()];
        state.quals_total += 1;
        if q > 0.5 {
            state.quals_correct += 1;
        }
        // Baseline *after* the counters advanced: the cache patch in
        // `set_observed` must compare against the value future reads use.
        let baseline = Self::state_baseline(state, default_accuracy);
        Self::set_observed(&self.graph, &self.index, mode, baseline, state, task, q);
    }

    /// Records a globally completed microtask: every voter's observed
    /// accuracy is (re)computed from Equation (5) using the voters'
    /// current estimates.
    ///
    /// `votes` must be the full vote set of `task` and `consensus` its
    /// consensus answer.
    pub fn record_completed_task(&mut self, task: TaskId, votes: &[Vote], consensus: Answer) {
        icrowd_obs::counter_add("estimator.completed_tasks", 1);
        // Gather current estimates first (immutable pass), then update.
        let mut match_accs = Vec::new();
        let mut mismatch_accs = Vec::new();
        for v in votes {
            self.register_worker(v.worker);
            let p = self.accuracy(v.worker, task);
            if v.answer == consensus {
                match_accs.push(p);
            } else {
                mismatch_accs.push(p);
            }
        }
        for v in votes {
            let matches = v.answer == consensus;
            let q = observed_accuracy(matches, &match_accs, &mismatch_accs);
            let mode = self.mode;
            let baseline = self.baseline(v.worker);
            let state = &mut self.workers[v.worker.index()];
            Self::set_observed(&self.graph, &self.index, mode, baseline, state, task, q);
        }
    }

    /// The baseline derived from a worker state directly (warm-up average
    /// when available, else the configured default) — usable while the
    /// state is mutably borrowed.
    fn state_baseline(state: &WorkerState, default_accuracy: f64) -> f64 {
        if state.quals_total > 0 {
            f64::from(state.quals_correct) / f64::from(state.quals_total)
        } else {
            default_accuracy
        }
    }

    fn set_observed(
        graph: &SimilarityGraph,
        index: &LinearityIndex,
        mode: EstimationMode,
        baseline: f64,
        state: &mut WorkerState,
        task: TaskId,
        q: f64,
    ) {
        let _span = icrowd_obs::span!("estimator.refresh");
        let old = state.observed.insert(task.0, q);
        // Replace, don't double-count: withdraw the previous observation's
        // contribution (accumulators and evidence) before adding the new
        // one. Both deltas touch only `nnz(p_task)` cells.
        if let Some(old_q) = old {
            Self::apply_delta(index, mode, &mut state.accum, task, old_q, -1.0);
            state.evidence.withdraw(graph, task, old_q);
        }
        Self::apply_delta(index, mode, &mut state.accum, task, q, 1.0);
        state.evidence.record(graph, task, q);
        // The dense cache only depends on the accumulators and the
        // baseline, so while the baseline holds it can be patched over
        // the delta's support instead of rebuilt.
        match &mut state.cache {
            Some(cache) if state.cache_baseline == baseline => {
                icrowd_obs::counter_add("estimator.cache_patch", 1);
                for (j, _) in index.vector(task).iter() {
                    cache[j.index()] = Self::cell_estimate(mode, baseline, state.accum.get(&j.0));
                }
            }
            cache => {
                if cache.is_some() {
                    icrowd_obs::counter_add("estimator.cache_drop", 1);
                }
                *cache = None;
            }
        }
    }

    /// Adds (`sign = 1.0`) or withdraws (`sign = -1.0`) one observation's
    /// contribution to the running accumulators. `O(nnz(p_task))`.
    fn apply_delta(
        index: &LinearityIndex,
        mode: EstimationMode,
        accum: &mut std::collections::BTreeMap<u32, AccumCell>,
        task: TaskId,
        q: f64,
        sign: f64,
    ) {
        let info = (2.0 * q - 1.0).abs();
        if mode == EstimationMode::Normalized && info == 0.0 {
            // Mirrors the from-scratch path: uninformative observations
            // (Equation-5 posterior exactly 0.5) contribute nothing, on
            // the way in *and* on the way out.
            return;
        }
        for (j, m) in index.vector(task).iter() {
            let (ds1, dmass, dmass2) = match mode {
                EstimationMode::Raw => (q * m, 0.0, 0.0),
                EstimationMode::Centered => (q * m, m, 0.0),
                EstimationMode::Normalized => {
                    let wm = info * m;
                    (q * wm, wm, wm * wm)
                }
            };
            let retire = {
                let cell = accum.entry(j.0).or_default();
                cell.s1 += sign * ds1;
                cell.mass += sign * dmass;
                cell.mass2 += sign * dmass2;
                if sign > 0.0 {
                    cell.n += 1;
                } else {
                    cell.n -= 1;
                }
                cell.n == 0
            };
            if retire {
                accum.remove(&j.0);
            }
        }
    }

    /// Turns one accumulator cell (or its absence) into the estimate at
    /// that task under `mode` and `baseline`. Agrees with the from-scratch
    /// formulas term for term.
    fn cell_estimate(mode: EstimationMode, baseline: f64, cell: Option<&AccumCell>) -> f64 {
        match (mode, cell) {
            (EstimationMode::Raw, None) => 0.0,
            (EstimationMode::Raw, Some(c)) => c.s1.clamp(0.0, 1.0),
            (EstimationMode::Centered, None) => baseline.clamp(0.0, 1.0),
            (EstimationMode::Centered, Some(c)) => {
                // Σ (q_i − b)·M_ij recovered as s1 − b·mass.
                (baseline + (c.s1 - baseline * c.mass)).clamp(0.0, 1.0)
            }
            (EstimationMode::Normalized, None) => baseline,
            (EstimationMode::Normalized, Some(c)) => {
                if c.mass <= 0.0 {
                    return baseline;
                }
                let avg_dev = (c.s1 - baseline * c.mass) / c.mass;
                let n_eff = c.mass * c.mass / c.mass2;
                (baseline + avg_dev * n_eff / (n_eff + 1.0)).clamp(0.0, 1.0)
            }
        }
    }

    /// The worker's warm-up average accuracy, if she completed any
    /// qualification microtasks.
    pub fn warmup_average(&self, worker: WorkerId) -> Option<f64> {
        let s = self.workers.get(worker.index())?;
        (s.quals_total > 0).then(|| f64::from(s.quals_correct) / f64::from(s.quals_total))
    }

    /// The baseline accuracy used for unreached tasks: the warm-up
    /// average when available, else the configured default.
    pub fn baseline(&self, worker: WorkerId) -> f64 {
        self.warmup_average(worker)
            .unwrap_or(self.config.default_accuracy)
    }

    /// Whether warm-up evidence says this worker should be rejected
    /// (average below threshold after enough qualification answers).
    pub fn should_reject(&self, worker: WorkerId) -> bool {
        let Some(s) = self.workers.get(worker.index()) else {
            return false;
        };
        s.quals_total as usize >= self.config.warmup.reject_after
            && (f64::from(s.quals_correct) / f64::from(s.quals_total))
                < self.config.warmup.reject_threshold
    }

    /// The estimated accuracy vector `p^w` (dense, one entry per task),
    /// rebuilding from the running accumulators and caching if stale.
    pub fn accuracies(&mut self, worker: WorkerId) -> &[f64] {
        self.register_worker(worker);
        let baseline = self.baseline(worker);
        let mode = self.mode;
        let num_tasks = self.index.num_tasks();
        let state = &mut self.workers[worker.index()];
        if state.cache.is_none() {
            let _span = icrowd_obs::span!("estimator.rebuild");
            icrowd_obs::counter_add("estimator.cache_rebuild", 1);
            state.cache = Some(Self::compute_incremental(num_tasks, state, baseline, mode));
            state.cache_baseline = baseline;
        } else {
            icrowd_obs::counter_add("estimator.cache_hit", 1);
        }
        state.cache.as_deref().expect("cache just filled")
    }

    /// Single-task estimate: a cache read when warm, otherwise one
    /// accumulator-cell lookup — never forces the dense rebuild.
    pub fn accuracy(&mut self, worker: WorkerId, task: TaskId) -> f64 {
        self.register_worker(worker);
        let baseline = self.baseline(worker);
        let state = &self.workers[worker.index()];
        if let Some(cache) = &state.cache {
            return cache[task.index()];
        }
        Self::cell_estimate(self.mode, baseline, state.accum.get(&task.0))
    }

    /// Read-only estimate for an already-cached worker; returns the
    /// baseline if no cache exists yet.
    pub fn accuracy_cached(&self, worker: WorkerId, task: TaskId) -> f64 {
        match self.workers.get(worker.index()) {
            Some(WorkerState { cache: Some(c), .. }) => c[task.index()],
            _ => self.baseline(worker),
        }
    }

    /// Estimates for an explicit candidate list only, without building or
    /// touching the dense per-worker cache.
    ///
    /// One accumulator-cell lookup per candidate — `O(|tasks| ·
    /// log nnz(accum))`, independent of both the total task count *and*
    /// the number of observations — which is what keeps per-request
    /// assignment flat on million-task sets (Figure 10).
    pub fn accuracies_for(&mut self, worker: WorkerId, tasks: &[TaskId]) -> Vec<f64> {
        self.register_worker(worker);
        let baseline = self.baseline(worker);
        let mode = self.mode;
        let state = &self.workers[worker.index()];
        tasks
            .iter()
            .map(|t| Self::cell_estimate(mode, baseline, state.accum.get(&t.0)))
            .collect()
    }

    /// The mode's absent-cell estimate for `worker`: what every task
    /// *without* a populated accumulator cell estimates to (0 in `Raw`
    /// mode, the worker's baseline otherwise). Together with
    /// [`Self::cell_scores`] this is a complete sparse view of the
    /// dense estimate vector.
    pub fn baseline_score(&self, worker: WorkerId) -> f64 {
        Self::cell_estimate(self.mode, self.baseline(worker), None)
    }

    /// The estimate at `task` if the worker has a populated accumulator
    /// cell there, else `None` (meaning the estimate is
    /// [`Self::baseline_score`]). One `BTreeMap` lookup; never touches
    /// the dense cache.
    pub fn cell_score(&self, worker: WorkerId, task: TaskId) -> Option<f64> {
        let state = self.workers.get(worker.index())?;
        let cell = state.accum.get(&task.0)?;
        Some(Self::cell_estimate(
            self.mode,
            self.baseline(worker),
            Some(cell),
        ))
    }

    /// All tasks with a populated accumulator cell for `worker`, with
    /// their estimates, in ascending task-id order. Tasks not yielded
    /// estimate to [`Self::baseline_score`]. This is the delta surface
    /// incremental candidate caches subscribe to: after any
    /// `record_*` call, only the recorded task's PPR support can have
    /// entered, left, or changed value in this iteration.
    pub fn cell_scores(&self, worker: WorkerId) -> impl Iterator<Item = (TaskId, f64)> + '_ {
        let baseline = self.baseline(worker);
        let mode = self.mode;
        self.workers
            .get(worker.index())
            .into_iter()
            .flat_map(move |s| {
                s.accum.iter().map(move |(&j, cell)| {
                    (TaskId(j), Self::cell_estimate(mode, baseline, Some(cell)))
                })
            })
    }

    /// Dense estimate derived from the running accumulators: the default
    /// value everywhere, overwritten per populated cell.
    fn compute_incremental(
        num_tasks: usize,
        state: &WorkerState,
        baseline: f64,
        mode: EstimationMode,
    ) -> Vec<f64> {
        let mut out = vec![Self::cell_estimate(mode, baseline, None); num_tasks];
        for (&j, cell) in &state.accum {
            out[j as usize] = Self::cell_estimate(mode, baseline, Some(cell));
        }
        out
    }

    /// The reference path: recomputes the dense estimate from the raw
    /// observations, ignoring the accumulators. Kept as the oracle the
    /// incremental path is tested against (and as executable
    /// documentation of the estimator's math).
    #[cfg_attr(not(test), allow(dead_code))]
    fn compute_from_scratch(
        index: &LinearityIndex,
        state: &WorkerState,
        baseline: f64,
        mode: EstimationMode,
    ) -> Vec<f64> {
        match mode {
            EstimationMode::Raw => {
                let q: SparseTaskVector = state.observed.iter().map(|(&t, &q)| (t, q)).collect();
                let mut p = index.estimate_dense(&q);
                for v in &mut p {
                    *v = v.clamp(0.0, 1.0);
                }
                p
            }
            EstimationMode::Centered => {
                // Propagate deviations from the baseline, then re-add it.
                // The restart weight damps a single observation's deviation
                // at its own task (e.g. x0.5 at alpha = 1) — deliberately
                // NOT compensated: damping keeps one lucky qualification
                // answer from saturating a worker's estimates at 0/1, so
                // ranking stays informative until several observations
                // agree.
                let centered: SparseTaskVector = state
                    .observed
                    .iter()
                    .map(|(&t, &q)| (t, q - baseline))
                    .collect();
                let mut p = index.estimate_dense(&centered);
                for v in &mut p {
                    *v = (baseline + *v).clamp(0.0, 1.0);
                }
                p
            }
            EstimationMode::Normalized => {
                let n = index.num_tasks();
                let mut dev = vec![0.0f64; n];
                let mut mass = vec![0.0f64; n];
                let mut mass2 = vec![0.0f64; n];
                for (&i, &q) in state.observed.iter() {
                    // Information weight: an Equation-(5) posterior of 0.5
                    // says nothing about the worker (it is exactly what a
                    // coin-flip context produces) and must not dilute the
                    // informative observations; ground-truth grades (q of
                    // 0 or 1) carry full weight.
                    let info = (2.0 * q - 1.0).abs();
                    if info == 0.0 {
                        continue;
                    }
                    let d = q - baseline;
                    for (j, m) in index.vector(TaskId(i)).iter() {
                        let wm = info * m;
                        dev[j.index()] += d * wm;
                        mass[j.index()] += wm;
                        mass2[j.index()] += wm * wm;
                    }
                }
                (0..n)
                    .map(|j| {
                        if mass[j] <= 0.0 {
                            return baseline;
                        }
                        let avg_dev = dev[j] / mass[j];
                        let n_eff = mass[j] * mass[j] / mass2[j];
                        (baseline + avg_dev * n_eff / (n_eff + 1.0)).clamp(0.0, 1.0)
                    })
                    .collect()
            }
        }
    }

    /// The worker's observed accuracies `q^w`, keyed by task id.
    /// Includes `q = 0` entries (provably wrong answers).
    pub fn observed(&self, worker: WorkerId) -> Option<&std::collections::BTreeMap<u32, f64>> {
        self.workers.get(worker.index()).map(|s| &s.observed)
    }

    /// The observed accuracy of `worker` on `task`, if recorded.
    pub fn observed_at(&self, worker: WorkerId, task: TaskId) -> Option<f64> {
        self.workers
            .get(worker.index())
            .and_then(|s| s.observed.get(&task.0).copied())
    }

    /// Step-3 uncertainty of the estimate of `worker` on `task`: the
    /// beta-posterior variance over the task's graph neighborhood.
    pub fn uncertainty(&self, worker: WorkerId, task: TaskId) -> f64 {
        match self.workers.get(worker.index()) {
            Some(s) => s.evidence.variance(task),
            // Never-seen workers carry maximal (uniform-prior) variance.
            None => icrowd_core::probability::beta_variance(0.0, 0.0),
        }
    }

    /// Number of globally completed tasks with recorded observations for
    /// `worker`.
    pub fn num_observations(&self, worker: WorkerId) -> usize {
        self.workers
            .get(worker.index())
            .map_or(0, |s| s.observed.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::TaskId;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    fn w(i: u32) -> WorkerId {
        WorkerId(i)
    }

    /// Two 3-cliques (tasks 0-2 and 3-5), mirroring Figure 3's topical
    /// block structure.
    fn two_clique_graph() -> SimilarityGraph {
        SimilarityGraph::from_edges(
            6,
            &[
                (t(0), t(1), 0.9),
                (t(1), t(2), 0.9),
                (t(0), t(2), 0.9),
                (t(3), t(4), 0.9),
                (t(4), t(5), 0.9),
                (t(3), t(5), 0.9),
            ],
        )
    }

    fn estimator(mode: EstimationMode) -> AccuracyEstimator {
        AccuracyEstimator::new(two_clique_graph(), ICrowdConfig::default(), mode)
    }

    #[test]
    fn qualification_signal_propagates_within_clique() {
        let mut e = estimator(EstimationMode::Centered);
        // Worker nails task 0 (clique A) and flunks task 3 (clique B).
        e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
        e.record_qualification(w(0), t(3), Answer::NO, Answer::YES);
        let p = e.accuracies(w(0)).to_vec();
        // Within clique A estimates exceed clique B everywhere.
        for a in 0..3 {
            for b in 3..6 {
                assert!(
                    p[a] > p[b],
                    "clique A task {a} ({}) should beat clique B task {b} ({})",
                    p[a],
                    p[b]
                );
            }
        }
        // The completed tasks themselves are the extremes.
        assert!(p[0] >= p[1] && p[0] >= p[2]);
        assert!(p[3] <= p[4] && p[3] <= p[5]);
    }

    #[test]
    fn centered_mode_falls_back_to_baseline_for_unreached_tasks() {
        let g = SimilarityGraph::from_edges(3, &[(t(0), t(1), 0.9)]);
        let mut e = AccuracyEstimator::new(g, ICrowdConfig::default(), EstimationMode::Centered);
        // Five perfect qualifications on task 0 → baseline 1.0... use a mix
        // to get baseline 0.8: 4 correct, 1 wrong.
        for (task, ok) in [(0u32, true), (0, true), (0, true), (0, true), (1, false)] {
            // Record on distinct tasks to keep observed sparse sensible:
            // use task 0 and 1 (task ids may repeat; set_observed replaces).
            let ans = if ok { Answer::YES } else { Answer::NO };
            e.record_qualification(w(0), t(task), ans, Answer::YES);
        }
        assert_eq!(e.warmup_average(w(0)), Some(0.8));
        let p = e.accuracies(w(0)).to_vec();
        // Task 2 is isolated: no propagation reaches it → exact baseline.
        assert!((p[2] - 0.8).abs() < 1e-9, "unreached task got {}", p[2]);
    }

    #[test]
    fn raw_mode_estimates_zero_for_unreached_tasks() {
        let g = SimilarityGraph::from_edges(3, &[(t(0), t(1), 0.9)]);
        let mut e = AccuracyEstimator::new(g, ICrowdConfig::default(), EstimationMode::Raw);
        e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
        let p = e.accuracies(w(0)).to_vec();
        assert!(p[0] > 0.0);
        assert_eq!(p[2], 0.0, "raw mode leaves unreached tasks at zero");
    }

    #[test]
    fn completed_task_updates_all_voters() {
        let mut e = estimator(EstimationMode::Centered);
        // With every voter at the uninformative 0.5 baseline, Equation (5)
        // yields exactly 0.5 for everyone (2-vs-1 at even odds carries no
        // information). Give the majority voters prior positive evidence so
        // the consensus is credible.
        e.record_qualification(w(0), t(2), Answer::YES, Answer::YES);
        e.record_qualification(w(1), t(2), Answer::YES, Answer::YES);
        let votes = vec![
            Vote {
                worker: w(0),
                answer: Answer::YES,
            },
            Vote {
                worker: w(1),
                answer: Answer::YES,
            },
            Vote {
                worker: w(2),
                answer: Answer::NO,
            },
        ];
        e.record_completed_task(t(1), &votes, Answer::YES);
        assert_eq!(e.num_observations(w(0)), 2, "qualification + consensus");
        assert_eq!(e.num_observations(w(2)), 1);
        let q_match = e.observed_at(w(0), t(1)).unwrap();
        let q_dissent = e.observed_at(w(2), t(1)).unwrap();
        assert!(q_match > 0.5, "matching the consensus is positive evidence");
        assert!(q_dissent < 0.5, "dissenting is negative evidence");
        assert!((q_match + q_dissent - 1.0).abs() < 1e-9);
        // Estimates reflect it: w0 beats w2 on the neighboring task 0.
        let p0 = e.accuracy(w(0), t(0));
        let p2 = e.accuracy(w(2), t(0));
        assert!(p0 > p2);
    }

    #[test]
    fn re_recording_a_task_replaces_rather_than_accumulates() {
        let mut e = estimator(EstimationMode::Raw);
        e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
        let first = e.observed_at(w(0), t(0)).unwrap();
        assert_eq!(first, 1.0);
        e.record_qualification(w(0), t(0), Answer::NO, Answer::YES);
        let second = e.observed_at(w(0), t(0)).unwrap();
        assert_eq!(second, 0.0, "replacement, not accumulation");
    }

    #[test]
    fn rejection_threshold_follows_config() {
        // Use the paper's illustrative 0.6 threshold explicitly (the
        // library default is spammer-level 0.4).
        let config = ICrowdConfig {
            warmup: icrowd_core::config::WarmupConfig {
                reject_threshold: 0.6,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut e = AccuracyEstimator::new(two_clique_graph(), config, EstimationMode::Centered);
        // 2 correct of 5 = 0.4 < 0.6 → reject.
        let answers = [true, true, false, false, false];
        for (i, ok) in answers.iter().enumerate() {
            let ans = if *ok { Answer::YES } else { Answer::NO };
            e.record_qualification(w(0), t(i as u32), ans, Answer::YES);
        }
        assert!(e.should_reject(w(0)));
        // 4 of 5 correct → keep.
        let answers = [true, true, true, true, false];
        for (i, ok) in answers.iter().enumerate() {
            let ans = if *ok { Answer::YES } else { Answer::NO };
            e.record_qualification(w(1), t(i as u32), ans, Answer::YES);
        }
        assert!(!e.should_reject(w(1)));
        // Too few answers → never reject yet.
        e.record_qualification(w(2), t(0), Answer::NO, Answer::YES);
        assert!(!e.should_reject(w(2)));
    }

    #[test]
    fn unknown_worker_defaults() {
        let e = estimator(EstimationMode::Centered);
        assert_eq!(e.warmup_average(w(9)), None);
        assert_eq!(e.baseline(w(9)), 0.5);
        assert!(!e.should_reject(w(9)));
        assert_eq!(e.accuracy_cached(w(9), t(0)), 0.5);
        // Unknown workers have the uniform-prior variance.
        assert!((e.uncertainty(w(9), t(0)) - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn cache_invalidation_on_new_evidence() {
        let mut e = estimator(EstimationMode::Centered);
        e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
        let before = e.accuracy(w(0), t(1));
        e.record_qualification(w(0), t(1), Answer::NO, Answer::YES);
        let after = e.accuracy(w(0), t(1));
        assert!(
            after < before,
            "fresh negative evidence must lower the estimate"
        );
    }

    #[test]
    fn sparse_path_matches_dense_path_in_every_mode() {
        for mode in [
            EstimationMode::Raw,
            EstimationMode::Centered,
            EstimationMode::Normalized,
        ] {
            let mut e = estimator(mode);
            e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
            e.record_qualification(w(0), t(3), Answer::NO, Answer::YES);
            let votes = vec![
                Vote {
                    worker: w(0),
                    answer: Answer::YES,
                },
                Vote {
                    worker: w(1),
                    answer: Answer::YES,
                },
            ];
            e.record_completed_task(t(1), &votes, Answer::YES);
            let all: Vec<TaskId> = (0..6).map(t).collect();
            let sparse = e.accuracies_for(w(0), &all);
            let dense = e.accuracies(w(0)).to_vec();
            for (i, (s, d)) in sparse.iter().zip(&dense).enumerate() {
                assert!(
                    (s - d).abs() < 1e-12,
                    "{mode:?} task {i}: sparse {s} vs dense {d}"
                );
            }
        }
    }

    /// Injects a fractional observation directly (bypassing Equation 5)
    /// so replacement and info-weight edge cases are exercised exactly.
    fn inject(e: &mut AccuracyEstimator, worker: WorkerId, task: TaskId, q: f64) {
        e.register_worker(worker);
        let mode = e.mode;
        let baseline = e.baseline(worker);
        let AccuracyEstimator {
            graph,
            index,
            workers,
            ..
        } = e;
        AccuracyEstimator::set_observed(
            graph,
            index,
            mode,
            baseline,
            &mut workers[worker.index()],
            task,
            q,
        );
    }

    #[test]
    fn incremental_matches_from_scratch_in_every_mode() {
        for mode in [
            EstimationMode::Raw,
            EstimationMode::Centered,
            EstimationMode::Normalized,
        ] {
            let mut e = estimator(mode);
            // Qualifications (baseline shifts), fractional consensus
            // observations, replacements — including replacing an
            // informative observation with an uninformative 0.5 and
            // back, the hardest case for delta bookkeeping.
            e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
            e.record_qualification(w(0), t(3), Answer::NO, Answer::YES);
            inject(&mut e, w(0), t(1), 0.85);
            inject(&mut e, w(0), t(4), 0.3);
            inject(&mut e, w(0), t(1), 0.6); // replacement
            inject(&mut e, w(0), t(4), 0.5); // informative → uninformative
            inject(&mut e, w(0), t(5), 0.5); // starts uninformative
            inject(&mut e, w(0), t(5), 0.95); // uninformative → informative
            e.record_qualification(w(0), t(2), Answer::YES, Answer::YES);
            let incremental = e.accuracies(w(0)).to_vec();
            let baseline = e.baseline(w(0));
            let scratch =
                AccuracyEstimator::compute_from_scratch(&e.index, &e.workers[0], baseline, mode);
            for (j, (inc, scr)) in incremental.iter().zip(&scratch).enumerate() {
                assert!(
                    (inc - scr).abs() < 1e-9,
                    "{mode:?} task {j}: incremental {inc} vs from-scratch {scr}"
                );
            }
        }
    }

    #[test]
    fn cache_patch_matches_full_rebuild_in_every_mode() {
        for mode in [
            EstimationMode::Raw,
            EstimationMode::Centered,
            EstimationMode::Normalized,
        ] {
            let mut e = estimator(mode);
            e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
            // Warm the dense cache, then record baseline-preserving
            // observations so `set_observed` takes the in-place patch
            // path rather than dropping the cache.
            let _ = e.accuracies(w(0));
            inject(&mut e, w(0), t(4), 0.9);
            inject(&mut e, w(0), t(4), 0.2); // replacement through the patch
            assert!(
                e.workers[0].cache.is_some(),
                "{mode:?}: patch path must keep the cache alive"
            );
            let patched = e.accuracies(w(0)).to_vec();
            let baseline = e.baseline(w(0));
            let rebuilt = AccuracyEstimator::compute_incremental(
                e.num_tasks(),
                &e.workers[0],
                baseline,
                mode,
            );
            assert_eq!(patched, rebuilt, "{mode:?}: patched cache must be exact");
        }
    }

    #[test]
    fn withdrawing_last_observation_retires_accumulator_cells() {
        let mut e = estimator(EstimationMode::Normalized);
        inject(&mut e, w(0), t(1), 0.9);
        assert!(!e.workers[0].accum.is_empty());
        inject(&mut e, w(0), t(1), 0.5); // info = 0: sole contributor leaves
        assert!(
            e.workers[0].accum.is_empty(),
            "cells must retire exactly, not decay to fp residue"
        );
        // And the estimate falls back to the baseline everywhere.
        let baseline = e.baseline(w(0));
        for &v in e.accuracies(w(0)) {
            assert_eq!(v, baseline);
        }
    }

    #[test]
    fn cell_scores_cover_the_dense_vector_in_every_mode() {
        for mode in [
            EstimationMode::Raw,
            EstimationMode::Centered,
            EstimationMode::Normalized,
        ] {
            let mut e = estimator(mode);
            e.record_qualification(w(0), t(0), Answer::YES, Answer::YES);
            inject(&mut e, w(0), t(4), 0.3);
            let all: Vec<TaskId> = (0..6).map(t).collect();
            let dense = e.accuracies_for(w(0), &all);
            let sparse: std::collections::BTreeMap<u32, f64> =
                e.cell_scores(w(0)).map(|(t, s)| (t.0, s)).collect();
            for (j, &d) in dense.iter().enumerate() {
                let via_cell = sparse
                    .get(&(j as u32))
                    .copied()
                    .unwrap_or_else(|| e.baseline_score(w(0)));
                assert!(
                    (via_cell - d).abs() < 1e-15,
                    "{mode:?} task {j}: cell view {via_cell} vs dense {d}"
                );
                assert_eq!(
                    e.cell_score(w(0), t(j as u32)),
                    sparse.get(&(j as u32)).copied()
                );
            }
            // Unknown workers expose an empty cell view and the default
            // absent-cell score.
            assert_eq!(e.cell_scores(w(9)).count(), 0);
            let absent = if mode == EstimationMode::Raw {
                0.0
            } else {
                0.5
            };
            assert_eq!(e.baseline_score(w(9)), absent);
        }
    }

    #[test]
    fn estimates_always_in_unit_interval() {
        let mut e = estimator(EstimationMode::Centered);
        for i in 0..6u32 {
            let ans = if i % 2 == 0 { Answer::YES } else { Answer::NO };
            e.record_qualification(w(0), t(i), ans, Answer::YES);
        }
        for &v in e.accuracies(w(0)) {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
