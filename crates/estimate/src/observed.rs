//! Observed accuracies `q_i^w` — Section 3.2 of the paper.
//!
//! For a globally completed microtask with ground truth (a qualification
//! task), the observed accuracy is simply 1 or 0. Without ground truth,
//! Equation (5) scores the worker against the *consensus* answer: if her
//! answer matches, `q` is the probability that the consensus is correct
//! given everyone's current estimated accuracies; otherwise the
//! complement.

use icrowd_core::answer::Answer;

/// Clamp applied to accuracies before forming Equation (5)'s products, so
/// degenerate estimates (exactly 0 or 1) cannot zero the denominator.
const PROB_CLAMP: f64 = 0.01;

/// Observed accuracy of a qualification microtask: 1.0 if the worker's
/// answer matches ground truth, 0.0 otherwise.
#[inline]
pub fn qualification_observed(answer: Answer, ground_truth: Answer) -> f64 {
    if answer == ground_truth {
        1.0
    } else {
        0.0
    }
}

/// Equation (5): observed accuracy of one voter on a globally completed
/// microtask without ground truth.
///
/// * `voter_matches_consensus` — whether *this* worker's answer equals the
///   consensus answer `ans*`.
/// * `match_accuracies` — current estimated accuracies `p_i^{w'}` of all
///   workers in `W_1` (answer equal to consensus), **including** the voter
///   herself when she matches.
/// * `mismatch_accuracies` — accuracies of all workers in `W_2` (answer
///   different from consensus), including the voter when she mismatches.
///
/// Returns
///
/// ```text
/// q =   P1 · P̄2 / (P1 · P̄2 + P̄1 · P2)   if the voter matches
/// q =   P̄1 · P2 / (P1 · P̄2 + P̄1 · P2)   otherwise
/// ```
///
/// with `P1 = Π p`, `P̄1 = Π (1 − p)` over `W_1` and likewise for `W_2`.
/// Inputs are clamped to `[0.01, 0.99]` so the denominator stays positive.
pub fn observed_accuracy(
    voter_matches_consensus: bool,
    match_accuracies: &[f64],
    mismatch_accuracies: &[f64],
) -> f64 {
    debug_assert!(
        !match_accuracies.is_empty(),
        "a consensus requires at least one matching voter"
    );
    let clamp = |p: f64| p.clamp(PROB_CLAMP, 1.0 - PROB_CLAMP);
    let p1: f64 = match_accuracies.iter().map(|&p| clamp(p)).product();
    let p1_bar: f64 = match_accuracies.iter().map(|&p| 1.0 - clamp(p)).product();
    let p2: f64 = mismatch_accuracies.iter().map(|&p| clamp(p)).product();
    let p2_bar: f64 = mismatch_accuracies
        .iter()
        .map(|&p| 1.0 - clamp(p))
        .product();

    // "Consensus correct" scenario: everyone in W1 right, everyone in W2
    // wrong. "Consensus incorrect": the reverse.
    let consensus_correct = p1 * p2_bar;
    let consensus_incorrect = p1_bar * p2;
    let denom = consensus_correct + consensus_incorrect;
    debug_assert!(denom > 0.0, "clamping keeps the denominator positive");
    if voter_matches_consensus {
        consensus_correct / denom
    } else {
        consensus_incorrect / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualification_is_binary() {
        assert_eq!(qualification_observed(Answer::YES, Answer::YES), 1.0);
        assert_eq!(qualification_observed(Answer::NO, Answer::YES), 0.0);
    }

    /// The paper's worked example (Section 3.2): task t6 with voters
    /// {w1, w2, w5}, consensus YES from w1 and w5, w2 dissenting.
    /// q_6^{w1} = p1 p5 (1-p2) / (p1 p5 (1-p2) + (1-p1)(1-p5) p2).
    #[test]
    fn matches_paper_example_formula() {
        let (p1, p5, p2) = (0.8, 0.7, 0.6);
        let want = p1 * p5 * (1.0 - p2) / (p1 * p5 * (1.0 - p2) + (1.0 - p1) * (1.0 - p5) * p2);
        let got = observed_accuracy(true, &[p1, p5], &[p2]);
        assert!((got - want).abs() < 1e-12);
        // The dissenter w2's observed accuracy is the complement share.
        let got_dissent = observed_accuracy(false, &[p1, p5], &[p2]);
        assert!((got_dissent - (1.0 - want)).abs() < 1e-12);
    }

    #[test]
    fn match_and_mismatch_shares_sum_to_one() {
        let q_match = observed_accuracy(true, &[0.9, 0.55], &[0.7]);
        let q_mismatch = observed_accuracy(false, &[0.9, 0.55], &[0.7]);
        assert!((q_match + q_mismatch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unanimous_consensus_is_strong_evidence() {
        // Three competent matching workers, no dissent: q close to 1.
        let q = observed_accuracy(true, &[0.8, 0.8, 0.8], &[]);
        assert!(q > 0.9, "q = {q}");
    }

    #[test]
    fn reliable_dissenter_weakens_consensus() {
        let weak_dissent = observed_accuracy(true, &[0.7, 0.7], &[0.3]);
        let strong_dissent = observed_accuracy(true, &[0.7, 0.7], &[0.95]);
        assert!(
            strong_dissent < weak_dissent,
            "a credible dissenter should lower the matchers' observed accuracy"
        );
    }

    #[test]
    fn degenerate_accuracies_do_not_divide_by_zero() {
        // p = 1 matchers and p = 1 dissenter would make both scenarios
        // impossible without clamping.
        let q = observed_accuracy(true, &[1.0], &[1.0]);
        assert!(q.is_finite());
        assert!((0.0..=1.0).contains(&q));
        let q = observed_accuracy(false, &[0.0, 1.0], &[0.0]);
        assert!(q.is_finite());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn always_a_probability(
                m in proptest::collection::vec(0.0f64..=1.0, 1..5),
                d in proptest::collection::vec(0.0f64..=1.0, 0..5),
                matches in proptest::bool::ANY,
            ) {
                let q = observed_accuracy(matches, &m, &d);
                prop_assert!((0.0..=1.0).contains(&q));
            }

            #[test]
            fn complementary_outcomes(
                m in proptest::collection::vec(0.05f64..=0.95, 1..5),
                d in proptest::collection::vec(0.05f64..=0.95, 1..5),
            ) {
                let a = observed_accuracy(true, &m, &d);
                let b = observed_accuracy(false, &m, &d);
                prop_assert!((a + b - 1.0).abs() < 1e-9);
            }

            #[test]
            fn more_reliable_matchers_raise_q(
                base in 0.55f64..0.9,
                bump in 0.01f64..0.09,
            ) {
                let low = observed_accuracy(true, &[base, base], &[0.5]);
                let high = observed_accuracy(true, &[base + bump, base + bump], &[0.5]);
                prop_assert!(high >= low - 1e-12);
            }
        }
    }
}
