//! The iCrowd framework — Figure 1 and Algorithm 2 of the paper.
//!
//! [`ICrowd`] plays the ExternalQuestion server role against a
//! crowdsourcing platform: on every worker request it decides an
//! assignment, and on every submitted answer it updates consensus state
//! and re-estimates the voters' accuracies. The assignment pipeline is
//! Algorithm 2:
//!
//! 1. **Top worker sets** — for every candidate microtask, the `k'`
//!    eligible active workers with the highest estimated accuracies.
//! 2. **Optimal assignment** — Algorithm 3's greedy disjoint packing;
//!    the requesting worker receives the task whose winning set contains
//!    her.
//! 3. **Performance testing** — if no winning set contains her, she is
//!    tested on the task maximizing estimate-uncertainty × co-worker
//!    quality.
//!
//! New workers first pass through [`crate::warmup::WarmUp`] on the
//! qualification microtasks (selected by influence maximization unless
//! overridden); workers whose qualification average falls below the
//! configured threshold are rejected and never assigned again.
//!
//! ## Candidate pools and scalability
//!
//! On small task sets every open task is a candidate each round. On very
//! large sets (the Figure 10 regime) that is wasteful: accuracy evidence
//! only ever distinguishes tasks near the workers' completed ones, so the
//! builder's `candidate_limit` caps the pool at the union of the active
//! workers' *estimate supports* (tasks reachable from their observations
//! in the similarity graph — an index lookup) plus a rotating sample of
//! other open tasks. This is the "effective index structure" that keeps
//! per-request assignment cost independent of `|T|`.
//!
//! ## The incremental assignment hot path
//!
//! Under a candidate cap the framework additionally maintains, instead
//! of rebuilding per request:
//!
//! * a per-worker **rank cache** (`rank`) of her open warm tasks —
//!   tasks with a populated estimator accumulator cell — keyed so set
//!   iteration yields descending score; patched on qualification
//!   answers (baseline shifts), task completions (cell deltas over the
//!   completed task's PPR support) and task closures;
//! * a **warm inverted index** (`warm`) from task id to the workers
//!   warm there with their exact scores, giving candidate scoring one
//!   lookup per task instead of one estimator probe per (worker, task);
//! * a **deadline-ordered lease queue** replacing the per-request
//!   O(workers) expiry sweep, and a **remaining-capacity counter**
//!   (`rem_cap`) replacing the per-candidate capacity-holder walk.
//!
//! The rebuild-per-request scoring survives as the debug-mode oracle:
//! every capped request in a debug build re-derives the top worker sets
//! the old way and asserts bitwise equality, and
//! [`ICrowd::validate_incremental_state`] re-checks every maintained
//! structure against from-scratch recomputation.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use icrowd_assign::{greedy_assign, performance_test_assignment, top_worker_set, TopWorkerSet};
use icrowd_core::answer::{Answer, Vote};
use icrowd_core::config::ICrowdConfig;
use icrowd_core::task::{TaskId, TaskSet};
use icrowd_core::voting::ConsensusState;
use icrowd_core::worker::{ActivityTracker, Tick, WorkerId};
use icrowd_estimate::{AccuracyEstimator, EstimationMode};
use icrowd_graph::{InfluenceScratch, SimilarityGraph};
use icrowd_platform::events::RejectReason;
use icrowd_platform::market::{ExternalQuestionServer, SubmitOutcome};
use icrowd_text::{CosineTfIdf, TaskSimilarity, Tokenizer};

use crate::warmup::WarmUp;

/// Which assignment strategy the framework runs (Section 6.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignStrategy {
    /// Full iCrowd: adaptive estimation + optimal assignment + testing.
    #[default]
    Adapt,
    /// Adaptive estimation, but each worker simply gets *her* best task.
    BestEffort,
    /// Estimation frozen after qualification; assignment as in `Adapt`.
    QfOnly,
}

impl AssignStrategy {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AssignStrategy::Adapt => "Adapt",
            AssignStrategy::BestEffort => "BestEffort",
            AssignStrategy::QfOnly => "QF-Only",
        }
    }
}

/// What kind of assignment a worker currently holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AssignmentKind {
    Warmup,
    Regular,
}

/// An outstanding assignment: the task a worker holds, under a deadline.
/// An assignment not answered by its deadline is reclaimed — the task's
/// capacity returns and it re-enters the candidate pool — and a late
/// answer for it is rejected rather than recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Lease {
    task: TaskId,
    kind: AssignmentKind,
    deadline: Tick,
}

/// Step-3 stride cap on the uncapped path.
const MAX_TEST_CANDIDATES: usize = 256;
/// Step-3 stride cap on the capped fast path, where the candidate pool
/// is already small and per-candidate co-worker walks dominate.
const MAX_TEST_CANDIDATES_CAPPED: usize = 32;
/// Fresh candidate pulls per active worker from her rank cache.
const RANK_TOP_K: usize = 2;
/// Rank-cache entries scanned per worker while skipping full tasks.
const RANK_SCAN: usize = 16;
/// Rotating exploration sample per request on the capped fast path.
const EXPLORE_SAMPLE: usize = 8;

/// Builder for [`ICrowd`].
pub struct ICrowdBuilder {
    tasks: TaskSet,
    config: ICrowdConfig,
    strategy: AssignStrategy,
    mode: EstimationMode,
    graph: Option<SimilarityGraph>,
    qualification: Option<Vec<TaskId>>,
    candidate_limit: usize,
}

impl ICrowdBuilder {
    /// Starts a builder over the given microtasks.
    pub fn new(tasks: TaskSet) -> Self {
        Self {
            tasks,
            config: ICrowdConfig::default(),
            strategy: AssignStrategy::Adapt,
            mode: EstimationMode::default(),
            graph: None,
            qualification: None,
            candidate_limit: usize::MAX,
        }
    }

    /// Sets the framework configuration.
    pub fn config(mut self, config: ICrowdConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the assignment strategy.
    pub fn strategy(mut self, strategy: AssignStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the estimation mode (see [`EstimationMode`]).
    pub fn estimation_mode(mut self, mode: EstimationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Injects a pre-built similarity graph (otherwise one is built from
    /// `Cos(tf-idf)` over the task texts at the configured threshold).
    pub fn graph(mut self, graph: SimilarityGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Builds the graph from an explicit similarity metric.
    pub fn metric<M: TaskSimilarity + Sync>(mut self, metric: &M) -> Self {
        let mut builder = icrowd_graph::GraphBuilder::new(self.config.similarity_threshold)
            .with_threads(self.config.ppr.threads);
        if let Some(m) = self.config.max_neighbors {
            builder = builder.with_max_neighbors(m);
        }
        self.graph = Some(builder.build(&self.tasks, metric));
        self
    }

    /// Overrides the qualification microtasks (otherwise selected by
    /// influence maximization, Algorithm 4). Every listed task must carry
    /// ground truth.
    pub fn qualification(mut self, tasks: Vec<TaskId>) -> Self {
        self.qualification = Some(tasks);
        self
    }

    /// Caps the per-request candidate pool (see module docs). The default
    /// (`usize::MAX`) considers every open task.
    pub fn candidate_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "candidate_limit must be positive");
        self.candidate_limit = limit;
        self
    }

    /// Builds the framework (runs offline graph + index construction and
    /// qualification selection).
    ///
    /// # Panics
    /// Panics if the configuration is invalid or a selected
    /// qualification microtask lacks ground truth.
    pub fn build(self) -> ICrowd {
        let _span = icrowd_obs::span!("framework.build");
        self.config.validate().expect("invalid configuration");
        let graph = self.graph.unwrap_or_else(|| {
            let _span = icrowd_obs::span!("graph.build");
            let metric = CosineTfIdf::new(&self.tasks, &Tokenizer::new());
            let mut builder = icrowd_graph::GraphBuilder::new(self.config.similarity_threshold)
                .with_threads(self.config.ppr.threads);
            if let Some(m) = self.config.max_neighbors {
                builder = builder.with_max_neighbors(m);
            }
            builder.build(&self.tasks, &metric)
        });
        let estimator = AccuracyEstimator::new(graph, self.config.clone(), self.mode);
        let qualification = self.qualification.unwrap_or_else(|| {
            let _span = icrowd_obs::span!("qualification.select");
            icrowd_assign::select_qualification_influence(
                estimator.index(),
                self.config.warmup.num_qualification,
            )
        });
        let mut consensus = ConsensusState::new(&self.tasks, self.config.assignment_size);
        let mut open: BTreeSet<u32> = self.tasks.ids().map(|t| t.0).collect();
        for &q in &qualification {
            // The requester labelled the qualification tasks herself
            // (Section 2.2): their results are known up front and no crowd
            // capacity is spent re-answering them; warm-up answers feed
            // estimation only.
            let truth = self.tasks[q]
                .ground_truth
                .unwrap_or_else(|| panic!("qualification task {q} lacks ground truth"));
            consensus.preset(q, truth);
            open.remove(&q.0);
        }
        let cap16 =
            u16::try_from(self.config.assignment_size).expect("assignment_size fits in u16");
        let rem_cap = vec![cap16; self.tasks.len()];
        // Pre-sized so no request ever pays an O(|T|) resize mid-flight.
        let inflight_workers = vec![Vec::new(); self.tasks.len()];
        ICrowd {
            activity: ActivityTracker::new(self.config.activity_window),
            warmup: WarmUp::new(qualification),
            consensus,
            estimator,
            strategy: self.strategy,
            candidate_limit: self.candidate_limit,
            tasks: self.tasks,
            config: self.config,
            in_flight: Vec::new(),
            expired_last: Vec::new(),
            inflight_workers,
            lease_queue: BinaryHeap::new(),
            rem_cap,
            rank: Vec::new(),
            warm: BTreeMap::new(),
            open,
            open_cursor: 0,
            influence_scratch: InfluenceScratch::new(),
            regular_assignments: Vec::new(),
            test_assignments: 0,
            early_stops: 0,
            declined_requests: 0,
            leases_expired: 0,
            answers_rejected: 0,
        }
    }
}

/// The iCrowd adaptive crowdsourcing server.
pub struct ICrowd {
    tasks: TaskSet,
    config: ICrowdConfig,
    strategy: AssignStrategy,
    estimator: AccuracyEstimator,
    consensus: ConsensusState,
    activity: ActivityTracker,
    warmup: WarmUp,
    /// In-flight assignment lease per worker index.
    in_flight: Vec<Option<Lease>>,
    /// The task of each worker's most recently expired lease, kept so a
    /// late answer can be classified as `LeaseExpired` (not merely
    /// `NotAssigned`) when it finally arrives.
    expired_last: Vec<Option<TaskId>>,
    /// Workers currently holding each task (regular assignments only).
    inflight_workers: Vec<Vec<WorkerId>>,
    /// Deadline-ordered queue of `(deadline, worker)` lease entries with
    /// lazy invalidation: renewals and consumed leases leave stale
    /// entries behind, and a popped entry only acts when it still matches
    /// the worker's live lease exactly (see [`Self::expire_leases`]).
    lease_queue: BinaryHeap<Reverse<(u64, u32)>>,
    /// Remaining capacity per task: `assignment_size − voters − holders`,
    /// maintained at every vote and lease transition so the hot path
    /// never walks capacity holders.
    rem_cap: Vec<u16>,
    /// Per-worker rank cache over her open *warm* tasks (tasks with an
    /// estimator accumulator cell), keyed by [`Self::rank_key`] so set
    /// iteration yields scores descending, ties by ascending task id.
    /// Only maintained under a candidate cap (see module docs).
    rank: Vec<BTreeSet<(u64, u32)>>,
    /// Inverse of `rank`: open task id → workers warm there with their
    /// exact scores, sorted by worker id. Only maintained under a cap.
    warm: BTreeMap<u32, Vec<(WorkerId, f64)>>,
    /// Open (not globally completed) task ids.
    open: BTreeSet<u32>,
    /// Round-robin cursor into `open` for candidate sampling.
    open_cursor: u32,
    candidate_limit: usize,
    /// Reusable visited-bitmap scratch for influence-support walks in
    /// candidate assembly (one walk per active worker per request).
    influence_scratch: InfluenceScratch,
    /// Regular (non-warmup) assignments per worker — Figure 15's metric.
    regular_assignments: Vec<u32>,
    /// Step-3 performance-test assignments issued.
    test_assignments: u64,
    /// Tasks completed early by the confidence-based stopping extension.
    early_stops: u64,
    /// Requests the server declined.
    declined_requests: u64,
    /// Assignment leases that expired and were reclaimed.
    leases_expired: u64,
    /// Submitted answers the server rejected.
    answers_rejected: u64,
}

impl ICrowd {
    /// The task set under crowdsourcing.
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// The configuration in force.
    pub fn config(&self) -> &ICrowdConfig {
        &self.config
    }

    /// The strategy in force.
    pub fn strategy(&self) -> AssignStrategy {
        self.strategy
    }

    /// The consensus state (votes, completions).
    pub fn consensus(&self) -> &ConsensusState {
        &self.consensus
    }

    /// The accuracy estimator.
    pub fn estimator(&self) -> &AccuracyEstimator {
        &self.estimator
    }

    /// Mutable estimator access (used by experiment harnesses).
    pub fn estimator_mut(&mut self) -> &mut AccuracyEstimator {
        &mut self.estimator
    }

    /// The warm-up component.
    pub fn warmup(&self) -> &WarmUp {
        &self.warmup
    }

    /// Final answers for every task: consensus where reached, majority
    /// fallback elsewhere.
    pub fn results(&self) -> std::collections::HashMap<TaskId, Answer> {
        self.consensus.final_answers(&self.tasks)
    }

    /// Final answers with votes re-aggregated by *weighted* majority
    /// voting, each vote weighted by the voter's estimated accuracy on
    /// that task (Section 2.1 notes weighted majority voting as the
    /// accepted alternative; this uses the framework's own estimates as
    /// the weights). Qualification tasks keep their requester labels;
    /// tasks whose weighted vote is empty fall back to [`Self::results`].
    pub fn results_weighted(&mut self) -> std::collections::HashMap<TaskId, Answer> {
        let mut out = self.results();
        for t in self.tasks.ids() {
            let votes = self.consensus.votes(t).votes().to_vec();
            if votes.is_empty() {
                continue; // preset gold or never assigned: keep as-is
            }
            let num_choices = self.tasks[t].num_choices;
            let weighted = icrowd_core::voting::weighted_majority_vote(&votes, num_choices, |w| {
                self.estimator.accuracies_for(w, &[t])[0]
            });
            if let Some(o) = weighted {
                out.insert(t, o.answer);
            }
        }
        out
    }

    /// Regular assignments handed to each registered worker (Figure 15).
    pub fn assignment_distribution(&self) -> &[u32] {
        &self.regular_assignments
    }

    /// Regular assignments keyed by the workers' external (platform)
    /// ids, in registration order.
    pub fn worker_assignments(&self) -> Vec<(String, u32)> {
        self.activity
            .iter()
            .map(|r| {
                (
                    r.external_id.clone(),
                    self.regular_assignments[r.id.index()],
                )
            })
            .collect()
    }

    /// Step-3 performance-test assignments issued so far.
    pub fn test_assignments(&self) -> u64 {
        self.test_assignments
    }

    /// Tasks completed early by the confidence-stopping extension.
    pub fn early_stops(&self) -> u64 {
        self.early_stops
    }

    /// Requests declined so far.
    pub fn declined_requests(&self) -> u64 {
        self.declined_requests
    }

    /// Assignment leases that expired and were reclaimed so far.
    pub fn leases_expired(&self) -> u64 {
        self.leases_expired
    }

    /// Submitted answers rejected so far (duplicate, stale, unsolicited).
    pub fn answers_rejected(&self) -> u64 {
        self.answers_rejected
    }

    /// The lease duration in force.
    fn lease_len(&self) -> u64 {
        self.config
            .lease_ticks
            .unwrap_or(self.config.activity_window)
    }

    /// Counts and reports a rejected submission.
    fn reject(&mut self, reason: RejectReason) -> SubmitOutcome {
        self.answers_rejected += 1;
        icrowd_obs::counter_add(reason.counter_name(), 1);
        SubmitOutcome::Rejected(reason)
    }

    /// The dense worker id for an external id, registering new workers.
    fn worker_id(&mut self, external: &str, now: Tick) -> WorkerId {
        if let Some(w) = self.activity.find_external(external) {
            return w;
        }
        let w = self.activity.register(external, now);
        self.grow_worker_state(w);
        w
    }

    fn grow_worker_state(&mut self, w: WorkerId) {
        if self.in_flight.len() <= w.index() {
            self.in_flight.resize(w.index() + 1, None);
            self.expired_last.resize(w.index() + 1, None);
            self.regular_assignments.resize(w.index() + 1, 0);
        }
        if self.rank.len() <= w.index() {
            self.rank.resize_with(w.index() + 1, BTreeSet::new);
        }
        self.estimator.register_worker(w);
    }

    /// Workers consuming capacity on `task`: regular voters + in-flight.
    fn capacity_holders(&self, task: TaskId) -> Vec<WorkerId> {
        let mut out: Vec<WorkerId> = self.consensus.assigned_workers(task).collect();
        if let Some(extra) = self.inflight_workers.get(task.index()) {
            out.extend(extra.iter().copied());
        }
        out
    }

    /// Whether `worker` may be assigned `task`.
    fn eligible(&self, worker: WorkerId, task: TaskId) -> bool {
        !self.warmup.has_answered(worker, task)
            && self.consensus.votes(task).answer_of(worker).is_none()
            && self
                .inflight_workers
                .get(task.index())
                .is_none_or(|v| !v.contains(&worker))
    }

    /// Remaining capacity of `task` — the maintained counter, O(1).
    fn remaining_capacity(&self, task: TaskId) -> usize {
        usize::from(self.rem_cap[task.index()])
    }

    /// Reclaims expired assignment leases: the holder's capacity is
    /// returned and the task re-enters the candidate pool. Generalizes
    /// the old inactivity-based purge — a lease's deadline is renewed by
    /// the worker's own re-requests, so an active worker never loses a
    /// live assignment, while a no-show forfeits hers after `lease_len`
    /// ticks whether or not she ever comes back.
    ///
    /// The queue is deadline-ordered with lazy invalidation, so each call
    /// costs O(expired · log queue) instead of a sweep over every
    /// registered worker. Per-worker expiry effects commute, so popping
    /// in deadline order reaches the exact state of the old id-order
    /// sweep.
    fn expire_leases(&mut self, now: Tick) {
        while let Some(&Reverse((deadline, wi))) = self.lease_queue.peek() {
            if deadline > now.0 {
                break;
            }
            self.lease_queue.pop();
            let w = WorkerId(wi);
            match self.in_flight.get(w.index()).copied().flatten() {
                Some(lease) if lease.deadline.0 == deadline => {
                    self.in_flight[w.index()] = None;
                    self.expired_last[w.index()] = Some(lease.task);
                    self.leases_expired += 1;
                    icrowd_obs::counter_add("lease.expired", 1);
                    if lease.kind == AssignmentKind::Regular {
                        if let Some(v) = self.inflight_workers.get_mut(lease.task.index()) {
                            v.retain(|&x| x != w);
                        }
                        self.rem_cap[lease.task.index()] += 1;
                    }
                }
                // Stale entry: the lease was renewed, consumed, or the
                // worker holds a newer one.
                _ => {}
            }
        }
    }

    /// Rotating exploration sampler: inserts open tasks into `cand`
    /// starting at the persisted cursor, counting only *fresh*
    /// insertions toward `budget` — a task already pooled (e.g. from an
    /// influence support overlapping the cursor window) must not
    /// silently shrink the exploration sample. A full-wrap guard
    /// terminates once every open task has been visited. With
    /// `require_capacity`, full tasks are skipped outright instead of
    /// being pooled and filtered later.
    fn sample_open_into(
        &mut self,
        cand: &mut BTreeSet<u32>,
        budget: usize,
        require_capacity: bool,
    ) {
        let mut taken = 0usize;
        let mut wrapped = false;
        let mut cursor = self.open_cursor;
        let start = cursor;
        while taken < budget {
            match self.open.range(cursor..).next().copied() {
                Some(t) => {
                    if wrapped && t >= start {
                        break;
                    }
                    if (!require_capacity || self.rem_cap[t as usize] > 0) && cand.insert(t) {
                        taken += 1;
                    }
                    match t.checked_add(1) {
                        Some(c) => cursor = c,
                        None if !wrapped => {
                            wrapped = true;
                            cursor = 0;
                        }
                        None => break,
                    }
                }
                None if !wrapped => {
                    wrapped = true;
                    cursor = 0;
                }
                None => break,
            }
        }
        self.open_cursor = cursor;
    }

    /// Assembles the candidate task pool for this round (see module
    /// docs): estimate supports of active workers plus a rotating sample
    /// of other open tasks, all filtered to capacity > 0.
    fn candidate_tasks(&mut self, active: &[WorkerId]) -> Vec<TaskId> {
        let mut cand: BTreeSet<u32> = BTreeSet::new();
        if self.open.len() <= self.candidate_limit {
            cand.extend(self.open.iter().copied());
        } else {
            // Tasks the graph can say anything about for these workers.
            // The walk is bounded: support discovered past the pool cap
            // could never be pooled anyway.
            for &w in active {
                if cand.len() >= self.candidate_limit {
                    break;
                }
                if let Some(observed) = self.estimator.observed(w) {
                    let seeds: Vec<TaskId> = observed.keys().map(|&t| TaskId(t)).collect();
                    let support = self.estimator.index().influence_support_bounded(
                        &seeds,
                        &mut self.influence_scratch,
                        self.candidate_limit,
                    );
                    for &t in support {
                        if cand.len() >= self.candidate_limit {
                            break;
                        }
                        if self.open.contains(&t) {
                            cand.insert(t);
                        }
                    }
                }
            }
            // Rotating sample of further open tasks for exploration.
            let sample = self.candidate_limit.saturating_sub(cand.len());
            self.sample_open_into(&mut cand, sample, false);
        }
        cand.into_iter()
            .map(TaskId)
            .filter(|&t| self.remaining_capacity(t) > 0)
            .collect()
    }

    /// Algorithm 2 for one requesting worker.
    fn adaptive_assign(&mut self, worker: WorkerId, now: Tick) -> Option<TaskId> {
        let mut active = self.activity.active_workers(now);
        if !active.contains(&worker) {
            active.push(worker);
        }
        // Keep only workers free to take a task right now.
        active.retain(|&w| self.in_flight.get(w.index()).copied().flatten().is_none());
        if !active.contains(&worker) {
            return None;
        }

        if self.capped() && self.open.len() > self.candidate_limit {
            return self.adaptive_assign_capped(worker, &active);
        }

        let candidates = self.candidate_tasks(&active);
        if candidates.is_empty() {
            return None;
        }
        // Per-worker estimates over the candidate pool. On small task
        // sets the dense per-worker cache amortizes across requests; past
        // the candidate limit the sparse path keeps cost independent of
        // |T| (Figure 10).
        let use_sparse = self.tasks.len() > self.candidate_limit;
        let acc: Vec<Vec<f64>> = active
            .iter()
            .map(|&w| {
                if use_sparse {
                    self.estimator.accuracies_for(w, &candidates)
                } else {
                    self.estimator.accuracies(w);
                    candidates
                        .iter()
                        .map(|&t| self.estimator.accuracy_cached(w, t))
                        .collect()
                }
            })
            .collect();

        // Step 1: top worker sets.
        let mut sets: Vec<TopWorkerSet> = Vec::with_capacity(candidates.len());
        for (ci, &t) in candidates.iter().enumerate() {
            let remaining = self.remaining_capacity(t);
            if remaining == 0 {
                continue;
            }
            let eligible = active
                .iter()
                .enumerate()
                .filter(|&(_, &w)| self.eligible(w, t))
                .map(|(wi, &w)| (w, acc[wi][ci]));
            let set = top_worker_set(t, eligible, remaining);
            if !set.workers.is_empty() {
                sets.push(set);
            }
        }

        self.finish_assign(worker, &sets, &candidates, MAX_TEST_CANDIDATES)
    }

    /// Steps 2–3 of Algorithm 2 over prepared top worker sets: greedy
    /// disjoint packing, the requester's best containing set as the
    /// conflict fallback, and performance testing when no set contains
    /// her.
    fn finish_assign(
        &mut self,
        worker: WorkerId,
        sets: &[TopWorkerSet],
        candidates: &[TaskId],
        max_test: usize,
    ) -> Option<TaskId> {
        // Step 2: greedy optimal assignment; serve the requester if some
        // winning set contains her.
        let scheme = greedy_assign(sets);
        if let Some(assignment) = scheme.iter().find(|a| a.worker_ids().any(|w| w == worker)) {
            return Some(assignment.task);
        }

        // The requester is a top worker for some tasks but lost the
        // packing to conflicts. Only her own assignment is executed right
        // now (the other winning sets re-form at their workers' next
        // requests), so serve her the task "to which w can contribute the
        // most" (Section 4.1): her best accuracy among the sets that
        // contain her. Step-3 testing is reserved for workers who are top
        // workers for NO task.
        if let Some(task) = sets
            .iter()
            .filter_map(|set| {
                set.workers
                    .iter()
                    .find(|&&(w, _)| w == worker)
                    .map(|&(_, p)| (set.task, p, set.average_accuracy()))
            })
            .max_by(|(ta, pa, aa), (tb, pb, ab)| {
                // total_cmp: an all-NaN accuracy column (a worker with no
                // observations under fault load) must not panic the loop.
                pa.total_cmp(pb).then(aa.total_cmp(ab)).then(tb.cmp(ta))
            })
            .map(|(t, _, _)| t)
        {
            return Some(task);
        }

        // Step 3: performance testing. On huge candidate pools a strided
        // sample suffices — any reasonably uncertain task does the job,
        // and scanning co-workers of thousands of tasks would reintroduce
        // the per-request cost the candidate cap removed.
        let eligible: Vec<TaskId> = candidates
            .iter()
            .copied()
            .filter(|&t| self.eligible(worker, t) && self.remaining_capacity(t) > 0)
            .collect();
        let stride = (eligible.len() / max_test).max(1);
        let test_candidates: Vec<(TaskId, Vec<WorkerId>)> = eligible
            .iter()
            .step_by(stride)
            .map(|&t| (t, self.capacity_holders(t)))
            .collect();
        let pick = performance_test_assignment(&mut self.estimator, worker, &test_candidates);
        if pick.is_some() {
            self.test_assignments += 1;
            icrowd_obs::counter_add("assign.test", 1);
        }
        pick
    }

    /// Algorithm 2 on the capped fast path: candidates come from the
    /// incrementally maintained per-worker rank caches plus a rotating
    /// exploration sample, and each top worker set is assembled from the
    /// task's warm scores merged with a shared cold ranking instead of a
    /// full active × candidates score matrix. Produces sets bitwise
    /// identical to the rebuild-per-request construction (asserted in
    /// debug builds against [`Self::debug_assert_sets_match_oracle`]).
    fn adaptive_assign_capped(&mut self, worker: WorkerId, active: &[WorkerId]) -> Option<TaskId> {
        // Candidate selection: the best few open-with-capacity tasks
        // from each active worker's rank cache, plus exploration.
        let mut cand: BTreeSet<u32> = BTreeSet::new();
        for &w in active {
            if cand.len() >= self.candidate_limit {
                break;
            }
            let Some(ranked) = self.rank.get(w.index()) else {
                continue;
            };
            let mut pulled = 0usize;
            for (scanned, &(_, t)) in ranked.iter().enumerate() {
                if pulled >= RANK_TOP_K
                    || scanned >= RANK_SCAN
                    || cand.len() >= self.candidate_limit
                {
                    break;
                }
                if self.rem_cap[t as usize] == 0 {
                    continue;
                }
                if cand.insert(t) {
                    pulled += 1;
                }
            }
        }
        let budget = EXPLORE_SAMPLE.min(self.candidate_limit.saturating_sub(cand.len()));
        self.sample_open_into(&mut cand, budget, true);
        if cand.is_empty() {
            return None;
        }
        let candidates: Vec<TaskId> = cand.iter().copied().map(TaskId).collect();

        // Shared cold ranking: every active worker at her absent-cell
        // score, ordered exactly as `top_worker_set` orders (score
        // descending, worker id ascending).
        let mut cold_rank: Vec<(WorkerId, f64)> = active
            .iter()
            .map(|&w| (w, self.estimator.baseline_score(w)))
            .collect();
        cold_rank.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let k = self.config.assignment_size;
        let cold_full: Vec<(WorkerId, f64)> = cold_rank.iter().copied().take(k).collect();
        let mut active_mask = vec![false; self.in_flight.len()];
        for &w in active {
            active_mask[w.index()] = true;
        }

        // Step 1: top worker sets.
        let mut sets: Vec<TopWorkerSet> = Vec::with_capacity(candidates.len());
        let mut subset: Vec<(WorkerId, f64)> = Vec::new();
        for &t in &candidates {
            let remaining = usize::from(self.rem_cap[t.index()]);
            if remaining == 0 {
                continue;
            }
            let warm_here = self.warm.get(&t.0);
            let any_active_warm =
                warm_here.is_some_and(|l| l.iter().any(|&(w, _)| active_mask[w.index()]));
            if !any_active_warm && remaining == k {
                // Cold and untouched: no votes, no holders, and no
                // warm-up history (qualification tasks are never open),
                // so every active worker is eligible at her cold score —
                // the set is a shared prefix of the cold ranking.
                sets.push(TopWorkerSet {
                    task: t,
                    workers: cold_full.clone(),
                    remaining: k,
                });
                continue;
            }
            // Warm or partially filled: the true top-`remaining` set is
            // contained in (eligible warm actives) ∪ (the first
            // `remaining` eligible cold actives) — any later cold worker
            // is dominated by `remaining` earlier entries.
            subset.clear();
            if let Some(list) = warm_here {
                for &(w, s) in list {
                    if active_mask[w.index()] && self.eligible(w, t) {
                        subset.push((w, s));
                    }
                }
            }
            let mut cold_taken = 0usize;
            for &(w, s) in &cold_rank {
                if cold_taken >= remaining {
                    break;
                }
                if warm_here.is_some_and(|l| l.binary_search_by_key(&w, |&(x, _)| x).is_ok()) {
                    continue;
                }
                if self.eligible(w, t) {
                    subset.push((w, s));
                    cold_taken += 1;
                }
            }
            let set = top_worker_set(t, subset.iter().copied(), remaining);
            if !set.workers.is_empty() {
                sets.push(set);
            }
        }

        #[cfg(debug_assertions)]
        self.debug_assert_sets_match_oracle(active, &candidates, &sets);

        self.finish_assign(worker, &sets, &candidates, MAX_TEST_CANDIDATES_CAPPED)
    }

    /// Debug-mode oracle for the capped fast path: re-derives the top
    /// worker sets the way the uncapped path does — a full active ×
    /// candidates score matrix through the estimator — and asserts the
    /// incremental construction matched bitwise.
    #[cfg(debug_assertions)]
    fn debug_assert_sets_match_oracle(
        &mut self,
        active: &[WorkerId],
        candidates: &[TaskId],
        sets: &[TopWorkerSet],
    ) {
        let acc: Vec<Vec<f64>> = active
            .iter()
            .map(|&w| self.estimator.accuracies_for(w, candidates))
            .collect();
        let mut oracle: Vec<TopWorkerSet> = Vec::with_capacity(candidates.len());
        for (ci, &t) in candidates.iter().enumerate() {
            let remaining = self
                .config
                .assignment_size
                .saturating_sub(self.capacity_holders(t).len());
            if remaining == 0 {
                continue;
            }
            let eligible = active
                .iter()
                .enumerate()
                .filter(|&(_, &w)| self.eligible(w, t))
                .map(|(wi, &w)| (w, acc[wi][ci]));
            let set = top_worker_set(t, eligible, remaining);
            if !set.workers.is_empty() {
                oracle.push(set);
            }
        }
        assert_eq!(oracle.len(), sets.len(), "oracle disagrees on set count");
        for (a, b) in oracle.iter().zip(sets) {
            assert_eq!(a.task, b.task, "oracle disagrees on set task");
            let aw: Vec<(u32, u64)> = a.workers.iter().map(|&(w, s)| (w.0, s.to_bits())).collect();
            let bw: Vec<(u32, u64)> = b.workers.iter().map(|&(w, s)| (w.0, s.to_bits())).collect();
            assert_eq!(aw, bw, "oracle disagrees on workers of task {:?}", a.task);
        }
    }

    /// Whether the candidate-pool cap — and with it the incremental
    /// candidate cache — is in force.
    fn capped(&self) -> bool {
        self.candidate_limit != usize::MAX
    }

    /// Rank-cache key for a (score, task) pair. Scores are clamped to
    /// `[0, 1]` (never negative, never NaN), so complementing the
    /// IEEE-754 bits makes ascending `BTreeSet` order iterate scores
    /// descending, ties broken by ascending task id.
    fn rank_key(score: f64, task: u32) -> (u64, u32) {
        (!score.to_bits(), task)
    }

    /// Rebuilds one worker's rank/warm entries from the estimator's
    /// cell view. Called after qualification answers — a baseline shift
    /// moves every one of the worker's cell scores at once, so patching
    /// is no cheaper than rebuilding her (small) slice of the cache.
    fn refresh_worker_rank(&mut self, worker: WorkerId) {
        if !self.capped() {
            return;
        }
        let old = std::mem::take(&mut self.rank[worker.index()]);
        for &(_, t) in &old {
            if let Some(list) = self.warm.get_mut(&t) {
                if let Ok(pos) = list.binary_search_by_key(&worker, |&(w, _)| w) {
                    list.remove(pos);
                }
                if list.is_empty() {
                    self.warm.remove(&t);
                }
            }
        }
        let mut fresh = old;
        fresh.clear();
        let Self {
            estimator,
            open,
            warm,
            ..
        } = self;
        for (t, s) in estimator.cell_scores(worker) {
            if !open.contains(&t.0) {
                continue;
            }
            fresh.insert(Self::rank_key(s, t.0));
            let list = warm.entry(t.0).or_default();
            match list.binary_search_by_key(&worker, |&(w, _)| w) {
                Ok(pos) => list[pos] = (worker, s),
                Err(pos) => list.insert(pos, (worker, s)),
            }
        }
        self.rank[worker.index()] = fresh;
    }

    /// Completion-time patch of the candidate caches: a completed task
    /// changes its voters' cells over exactly the support of its PPR
    /// vector (and no baselines), so only those (voter, task) entries
    /// are re-scored.
    fn record_completion_capped(&mut self, task: TaskId, votes: &[Vote], consensus: Answer) {
        let support: Vec<u32> = self.estimator.index().vector(task).support().collect();
        for v in votes {
            let w = v.worker;
            for &j in &support {
                if let Some(list) = self.warm.get_mut(&j) {
                    if let Ok(pos) = list.binary_search_by_key(&w, |&(x, _)| x) {
                        let (_, old_score) = list[pos];
                        list.remove(pos);
                        if list.is_empty() {
                            self.warm.remove(&j);
                        }
                        if let Some(ranked) = self.rank.get_mut(w.index()) {
                            ranked.remove(&Self::rank_key(old_score, j));
                        }
                    }
                }
            }
        }
        self.estimator.record_completed_task(task, votes, consensus);
        let Self {
            estimator,
            open,
            warm,
            rank,
            ..
        } = self;
        for v in votes {
            let w = v.worker;
            for &j in &support {
                if !open.contains(&j) {
                    continue;
                }
                if let Some(s) = estimator.cell_score(w, TaskId(j)) {
                    rank[w.index()].insert(Self::rank_key(s, j));
                    let list = warm.entry(j).or_default();
                    match list.binary_search_by_key(&w, |&(x, _)| x) {
                        Ok(pos) => list[pos] = (w, s),
                        Err(pos) => list.insert(pos, (w, s)),
                    }
                }
            }
        }
    }

    /// Drops a completed task from every worker's candidate cache:
    /// closed tasks are never candidates again, so evicting them here
    /// keeps rank iteration free of per-entry open-set checks.
    fn purge_closed_candidate(&mut self, task: TaskId) {
        if let Some(list) = self.warm.remove(&task.0) {
            for (w, s) in list {
                if let Some(ranked) = self.rank.get_mut(w.index()) {
                    ranked.remove(&Self::rank_key(s, task.0));
                }
            }
        }
    }

    /// Asserts the incrementally maintained hot-path state against
    /// from-scratch recomputation: `rem_cap` vs counted capacity
    /// holders, the lease queue covering every live lease, and (under a
    /// candidate cap) the rank/warm caches against the estimator's cell
    /// view. Debug builds run this after every request; the fault-plan
    /// equivalence tests call it explicitly.
    ///
    /// # Panics
    /// Panics if any maintained structure drifted from its oracle.
    pub fn validate_incremental_state(&self) {
        // rem_cap mirrors assignment_size − holders wherever it can
        // matter: open tasks and tasks with live leases.
        let mut check: BTreeSet<u32> = self.open.iter().copied().collect();
        check.extend(self.in_flight.iter().flatten().map(|l| l.task.0));
        for &tid in &check {
            let t = TaskId(tid);
            let swept = self
                .config
                .assignment_size
                .saturating_sub(self.capacity_holders(t).len());
            assert_eq!(
                usize::from(self.rem_cap[t.index()]),
                swept,
                "rem_cap drifted from recomputation on task {tid}"
            );
        }
        // Every live lease is covered by a queue entry at its exact
        // deadline (lazy invalidation only ever leaves *extra* entries).
        let queued: std::collections::HashSet<(u64, u32)> =
            self.lease_queue.iter().map(|r| r.0).collect();
        for (wi, lease) in self.in_flight.iter().enumerate() {
            if let Some(l) = lease {
                let w = u32::try_from(wi).expect("worker id fits in u32");
                assert!(
                    queued.contains(&(l.deadline.0, w)),
                    "live lease of worker {wi} missing from the deadline queue"
                );
            }
        }
        if !self.capped() {
            return;
        }
        // Rank caches mirror the estimator's cell view over open tasks.
        for (wi, ranked) in self.rank.iter().enumerate() {
            let w = WorkerId(u32::try_from(wi).expect("worker id fits in u32"));
            let expect: BTreeSet<(u64, u32)> = self
                .estimator
                .cell_scores(w)
                .filter(|(t, _)| self.open.contains(&t.0))
                .map(|(t, s)| Self::rank_key(s, t.0))
                .collect();
            assert_eq!(
                ranked, &expect,
                "rank cache drifted from the estimator for worker {wi}"
            );
        }
        // The warm index is the exact inverse of the rank caches.
        let mut inverse: BTreeMap<u32, Vec<(u32, u64)>> = BTreeMap::new();
        for (wi, ranked) in self.rank.iter().enumerate() {
            for &(key, t) in ranked {
                inverse
                    .entry(t)
                    .or_default()
                    .push((u32::try_from(wi).expect("worker id fits in u32"), !key));
            }
        }
        let warm_view: BTreeMap<u32, Vec<(u32, u64)>> = self
            .warm
            .iter()
            .map(|(&t, list)| (t, list.iter().map(|&(w, s)| (w.0, s.to_bits())).collect()))
            .collect();
        assert_eq!(warm_view, inverse, "warm index is not the inverse of rank");
    }

    /// The BestEffort strategy: the requester's own best eligible task.
    /// (`now` is deliberately unused: BestEffort ignores the rest of the
    /// crowd by definition.)
    fn best_effort_assign(&mut self, worker: WorkerId, _now: Tick) -> Option<TaskId> {
        let active = vec![worker];
        let candidates: Vec<TaskId> = self
            .candidate_tasks(&active)
            .into_iter()
            .filter(|&t| self.eligible(worker, t) && self.remaining_capacity(t) > 0)
            .collect();
        let acc = if self.tasks.len() > self.candidate_limit {
            self.estimator.accuracies_for(worker, &candidates)
        } else {
            self.estimator.accuracies(worker);
            candidates
                .iter()
                .map(|&t| self.estimator.accuracy_cached(worker, t))
                .collect()
        };
        candidates
            .into_iter()
            .zip(acc)
            .max_by(|(ta, a), (tb, b)| a.total_cmp(b).then(tb.cmp(ta)))
            .map(|(t, _)| t)
    }

    /// Records an assignment as in flight under a fresh lease.
    fn mark_in_flight(&mut self, worker: WorkerId, task: TaskId, kind: AssignmentKind, now: Tick) {
        let deadline = Tick(now.0 + self.lease_len());
        self.in_flight[worker.index()] = Some(Lease {
            task,
            kind,
            deadline,
        });
        self.lease_queue.push(Reverse((deadline.0, worker.0)));
        if kind == AssignmentKind::Regular {
            if self.inflight_workers.len() <= task.index() {
                self.inflight_workers.resize(task.index() + 1, Vec::new());
            }
            self.inflight_workers[task.index()].push(worker);
            self.regular_assignments[worker.index()] += 1;
            debug_assert!(self.rem_cap[task.index()] > 0, "assigned a full task");
            self.rem_cap[task.index()] -= 1;
        }
    }
}

impl ExternalQuestionServer for ICrowd {
    fn request_task(&mut self, external: &str, now: Tick) -> Option<TaskId> {
        let _span = icrowd_obs::span!("assign.loop");
        let worker = self.worker_id(external, now);
        self.activity.touch(worker, now);
        if self.activity.record(worker).is_some_and(|r| r.rejected) {
            self.declined_requests += 1;
            icrowd_obs::counter_add("assign.rejected_worker", 1);
            return None;
        }
        self.expire_leases(now);
        #[cfg(debug_assertions)]
        self.validate_incremental_state();

        // Idempotent re-request: hand back the task already in flight,
        // renewing its lease — the worker just proved she is alive. The
        // renewed deadline is re-queued; the old entry goes stale.
        let lease_len = self.lease_len();
        if let Some(lease) = self.in_flight[worker.index()] {
            let deadline = Tick(now.0 + lease_len);
            self.in_flight[worker.index()] = Some(Lease { deadline, ..lease });
            self.lease_queue.push(Reverse((deadline.0, worker.0)));
            icrowd_obs::counter_add("assign.repeat", 1);
            return Some(lease.task);
        }

        // Warm-up: qualification microtasks first.
        if self.warmup.in_warmup(worker) {
            let task = self.warmup.next_task(worker).expect("in_warmup checked");
            self.mark_in_flight(worker, task, AssignmentKind::Warmup, now);
            icrowd_obs::counter_add("assign.warmup", 1);
            return Some(task);
        }

        let assigned = match self.strategy {
            AssignStrategy::Adapt | AssignStrategy::QfOnly => self.adaptive_assign(worker, now),
            AssignStrategy::BestEffort => self.best_effort_assign(worker, now),
        };
        match assigned {
            Some(task) => {
                self.mark_in_flight(worker, task, AssignmentKind::Regular, now);
                icrowd_obs::counter_add("assign.issued", 1);
                Some(task)
            }
            None => {
                self.declined_requests += 1;
                icrowd_obs::counter_add("assign.declined", 1);
                None
            }
        }
    }

    fn submit_answer(
        &mut self,
        external: &str,
        task: TaskId,
        answer: Answer,
        now: Tick,
    ) -> SubmitOutcome {
        let _span = icrowd_obs::span!("answer.submit");
        let worker = self.worker_id(external, now);
        self.activity.touch(worker, now);
        self.expire_leases(now);

        // Validate against the assignment record: only an answer for the
        // worker's live lease is recorded. Everything else — duplicates,
        // answers that outlived their lease, answers for completed tasks,
        // unsolicited submissions — is rejected before it can touch
        // consensus, the estimator, or payment.
        let lease = match self.in_flight[worker.index()] {
            Some(l) if l.task == task => {
                self.in_flight[worker.index()] = None;
                l
            }
            _ => {
                let reason = if self.consensus.votes(task).answer_of(worker).is_some()
                    || self.warmup.has_answered(worker, task)
                {
                    RejectReason::Duplicate
                } else if self.expired_last[worker.index()] == Some(task) {
                    RejectReason::LeaseExpired
                } else if self.consensus.is_completed(task) {
                    RejectReason::TaskCompleted
                } else {
                    RejectReason::NotAssigned
                };
                return self.reject(reason);
            }
        };

        match lease.kind {
            AssignmentKind::Warmup => {
                let truth = self.tasks[task]
                    .ground_truth
                    .expect("qualification tasks carry ground truth");
                self.estimator
                    .record_qualification(worker, task, answer, truth);
                // The qualification answer shifted this worker's
                // baseline, which re-scores all her cells at once.
                self.refresh_worker_rank(worker);
                self.warmup.advance(worker);
                if self.estimator.should_reject(worker) {
                    self.activity.reject(worker);
                }
                SubmitOutcome::Accepted
            }
            AssignmentKind::Regular => {
                if let Some(v) = self.inflight_workers.get_mut(task.index()) {
                    v.retain(|&x| x != worker);
                }
                // The lease's capacity hold is released here; a recorded
                // vote below re-takes it, so the counter nets to zero on
                // the accept path and +1 on every reject path.
                self.rem_cap[task.index()] += 1;
                // The task reached consensus while this answer was in
                // flight (another worker's vote closed it, or early
                // stopping preset it): the late answer is moot.
                if self.consensus.is_completed(task) {
                    return self.reject(RejectReason::TaskCompleted);
                }
                let vote = Vote { worker, answer };
                match self.consensus.record(task, vote) {
                    Ok(_newly_completed) => {
                        self.rem_cap[task.index()] -= 1;
                        self.activity.record_completion(worker);
                        // Budget-saving extension: complete early when the
                        // posterior under current estimates is confident,
                        // even before (k+1)/2 votes agree.
                        if !self.consensus.is_completed(task) {
                            if let Some(tau) = self.config.early_stop_confidence {
                                let votes = self.consensus.votes(task).votes().to_vec();
                                let num_choices = self.tasks[task].num_choices;
                                let posterior = icrowd_core::probability::vote_posterior(
                                    &votes,
                                    num_choices,
                                    |w| self.estimator.accuracies_for(w, &[task])[0],
                                );
                                if let Some((ans, conf)) = posterior {
                                    if conf >= tau {
                                        self.consensus.preset(task, ans);
                                        self.early_stops += 1;
                                        icrowd_obs::counter_add("consensus.early_stop", 1);
                                    }
                                }
                            }
                        }
                        if self.consensus.is_completed(task) {
                            icrowd_obs::counter_add("consensus.completed", 1);
                            self.open.remove(&task.0);
                            self.purge_closed_candidate(task);
                            if self.strategy != AssignStrategy::QfOnly {
                                let consensus_ans = self
                                    .consensus
                                    .consensus(task)
                                    .expect("completed task has consensus");
                                let votes = self.consensus.votes(task).votes().to_vec();
                                if self.capped() {
                                    self.record_completion_capped(task, &votes, consensus_ans);
                                } else {
                                    self.estimator.record_completed_task(
                                        task,
                                        &votes,
                                        consensus_ans,
                                    );
                                }
                            }
                        }
                        SubmitOutcome::Accepted
                    }
                    Err(icrowd_core::CoreError::DuplicateVote { .. }) => {
                        self.reject(RejectReason::Duplicate)
                    }
                    Err(_) => self.reject(RejectReason::TaskCompleted),
                }
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.consensus.all_completed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::Microtask;
    use icrowd_text::metric::MatrixSimilarity;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    /// Six binary tasks in two topical blocks (0-2 and 3-5), all ground
    /// truth YES, block-diagonal similarity.
    fn setup(strategy: AssignStrategy, num_qual: usize) -> ICrowd {
        let tasks: TaskSet = (0..6)
            .map(|i| {
                Microtask::binary(TaskId(i), format!("task {i}")).with_ground_truth(Answer::YES)
            })
            .collect();
        let edges = vec![
            (t(0), t(1), 0.9),
            (t(1), t(2), 0.9),
            (t(0), t(2), 0.9),
            (t(3), t(4), 0.9),
            (t(4), t(5), 0.9),
            (t(3), t(5), 0.9),
        ];
        let metric = MatrixSimilarity::from_edges(&tasks, &edges, "blocks");
        let config = ICrowdConfig {
            similarity_threshold: 0.5,
            warmup: icrowd_core::config::WarmupConfig {
                num_qualification: num_qual,
                ..Default::default()
            },
            ..Default::default()
        };
        ICrowdBuilder::new(tasks)
            .config(config)
            .strategy(strategy)
            .metric(&metric)
            .build()
    }

    #[test]
    fn new_workers_get_qualification_first() {
        let mut srv = setup(AssignStrategy::Adapt, 2);
        let quals = srv.warmup().qualification_tasks().to_vec();
        assert_eq!(quals.len(), 2);
        let first = srv.request_task("A", Tick(0)).unwrap();
        assert_eq!(first, quals[0]);
        srv.submit_answer("A", first, Answer::YES, Tick(1));
        let second = srv.request_task("A", Tick(2)).unwrap();
        assert_eq!(second, quals[1]);
        srv.submit_answer("A", second, Answer::YES, Tick(3));
        // Out of warm-up: next assignment is a regular task.
        let third = srv.request_task("A", Tick(4)).unwrap();
        assert!(srv.assignment_distribution()[0] == 1);
        assert!(!quals.contains(&third) || srv.consensus().votes(third).is_empty());
    }

    #[test]
    fn re_request_is_idempotent() {
        let mut srv = setup(AssignStrategy::Adapt, 1);
        let a = srv.request_task("A", Tick(0)).unwrap();
        let b = srv.request_task("A", Tick(1)).unwrap();
        assert_eq!(a, b, "unanswered assignment is handed back");
    }

    #[test]
    fn bad_workers_get_rejected_and_declined() {
        let mut srv = setup(AssignStrategy::Adapt, 6);
        // Answer five qualification tasks wrong (ground truth YES).
        for i in 0..5 {
            let task = srv.request_task("BAD", Tick(i)).unwrap();
            srv.submit_answer("BAD", task, Answer::NO, Tick(i));
        }
        // Rejected now: no more assignments.
        assert_eq!(srv.request_task("BAD", Tick(10)), None);
        assert!(srv.declined_requests() >= 1);
    }

    #[test]
    fn campaign_completes_and_results_match_crowd() {
        let mut srv = setup(AssignStrategy::Adapt, 1);
        // Three always-correct workers churn until everything completes.
        let mut tick = 0u64;
        let mut guard = 0;
        while !srv.is_complete() {
            guard += 1;
            assert!(guard < 500, "campaign did not converge");
            for name in ["A", "B", "C"] {
                if srv.is_complete() {
                    break;
                }
                if let Some(task) = srv.request_task(name, Tick(tick)) {
                    srv.submit_answer(name, task, Answer::YES, Tick(tick));
                }
                tick += 1;
            }
        }
        let results = srv.results();
        assert_eq!(results.len(), 6);
        assert!(results.values().all(|&a| a == Answer::YES));
        // 1 qualification task is preset; the other 5 complete with 2-3
        // votes each under early consensus.
        let total: u32 = srv.assignment_distribution().iter().sum();
        assert!((10..=15).contains(&total), "regular assignments: {total}");
    }

    #[test]
    fn workers_never_see_a_task_twice() {
        let mut srv = setup(AssignStrategy::Adapt, 2);
        let mut seen = std::collections::HashSet::new();
        let mut tick = 0;
        while let Some(task) = srv.request_task("A", Tick(tick)) {
            assert!(seen.insert(task), "task {task} assigned twice to A");
            srv.submit_answer("A", task, Answer::YES, Tick(tick));
            tick += 1;
            if tick > 50 {
                break;
            }
        }
        // 2 warm-up + 6 regular = at most 8 distinct tasks.
        assert!(seen.len() <= 8);
    }

    #[test]
    fn best_effort_assigns_workers_own_best_task() {
        let mut srv = setup(AssignStrategy::BestEffort, 2);
        let quals = srv.warmup().qualification_tasks().to_vec();
        // Complete warm-up: right on the first qual, wrong on the second.
        // (Quals land in different blocks by influence maximization.)
        let q0 = srv.request_task("A", Tick(0)).unwrap();
        srv.submit_answer("A", q0, Answer::YES, Tick(0));
        let q1 = srv.request_task("A", Tick(1)).unwrap();
        srv.submit_answer("A", q1, Answer::NO, Tick(1));
        assert_eq!(vec![q0, q1], quals);
        // The next assignment lies in the block of the correct answer.
        let next = srv.request_task("A", Tick(2)).unwrap();
        let block_of = |task: TaskId| task.index() / 3;
        assert_eq!(
            block_of(next),
            block_of(q0),
            "BestEffort should pick from the block the worker aced"
        );
    }

    #[test]
    fn qf_only_freezes_estimation_after_warmup() {
        let mut srv = setup(AssignStrategy::QfOnly, 1);
        let q = srv.request_task("A", Tick(0)).unwrap();
        srv.submit_answer("A", q, Answer::YES, Tick(0));
        let baseline_obs = srv.estimator().num_observations(WorkerId(0));
        // Complete a few regular tasks; observations must not grow.
        for tick in 1..8 {
            for name in ["A", "B", "C"] {
                // B and C still need warm-up; let them flow through it.
                if let Some(task) = srv.request_task(name, Tick(tick)) {
                    srv.submit_answer(name, task, Answer::YES, Tick(tick));
                }
            }
        }
        assert_eq!(
            srv.estimator().num_observations(WorkerId(0)),
            baseline_obs,
            "QF-Only must not accumulate post-warmup observations"
        );
    }

    #[test]
    fn weighted_results_cover_every_task_and_respect_gold() {
        let mut srv = setup(AssignStrategy::Adapt, 2);
        let quals = srv.warmup().qualification_tasks().to_vec();
        let mut tick = 0u64;
        while !srv.is_complete() {
            for name in ["A", "B", "C"] {
                if let Some(task) = srv.request_task(name, Tick(tick)) {
                    srv.submit_answer(name, task, Answer::YES, Tick(tick));
                }
                tick += 1;
            }
            assert!(tick < 2000, "stalled");
        }
        let plain = srv.results();
        let weighted = srv.results_weighted();
        assert_eq!(weighted.len(), plain.len());
        // Gold answers are requester labels in both.
        for q in quals {
            assert_eq!(weighted[&q], plain[&q]);
        }
        // With unanimous YES votes, the two aggregations agree entirely.
        assert_eq!(weighted, plain);
    }

    #[test]
    fn weighted_results_can_overturn_a_noisy_majority() {
        // Task 1 gets votes NO (trusted expert) vs YES, YES (two workers
        // with bad records): weighted aggregation should side with the
        // expert while plain majority says YES.
        let mut srv = setup(AssignStrategy::Adapt, 1);
        let q = srv.warmup().qualification_tasks()[0];
        // Build records: EXPERT aces the qual; DUD1/DUD2 flunk it.
        for (name, ans) in [
            ("EXPERT", Answer::YES),
            ("DUD1", Answer::NO),
            ("DUD2", Answer::NO),
        ] {
            let t0 = srv.request_task(name, Tick(0)).unwrap();
            assert_eq!(t0, q);
            srv.submit_answer(name, t0, ans, Tick(0));
        }
        // Drive votes on one open task via the protocol.
        let target = srv.request_task("EXPERT", Tick(1)).unwrap();
        srv.submit_answer("EXPERT", target, Answer::NO, Tick(1));
        // The duds loop through real request/answer cycles until they are
        // legitimately assigned the target. Filler answers on other tasks
        // are split YES/NO between the duds so no filler task ever gathers
        // two agreeing votes — none completes, so no filler vote is ever
        // scored against a consensus and the estimator sees exactly the
        // qualification + target evidence.
        for (name, filler) in [("DUD1", Answer::YES), ("DUD2", Answer::NO)] {
            let mut tick = 2u64;
            loop {
                let t2 = srv
                    .request_task(name, Tick(tick))
                    .expect("open capacity remains");
                let ans = if t2 == target { Answer::YES } else { filler };
                assert_eq!(
                    srv.submit_answer(name, t2, ans, Tick(tick)),
                    SubmitOutcome::Accepted
                );
                if t2 == target {
                    break;
                }
                tick += 1;
                assert!(tick < 20, "{name} never reached the target task");
            }
        }

        let plain = srv.results();
        let mut weighted = srv.results_weighted();
        assert_eq!(plain[&target], Answer::YES, "2-1 plain majority");
        assert_eq!(
            weighted.remove(&target),
            Some(Answer::NO),
            "estimate-weighted vote trusts the expert"
        );
    }

    #[test]
    fn early_stopping_saves_votes_when_confident() {
        // Two workers with strong qualification records agree on the
        // first vote pair; with early stopping at 0.8 the task completes
        // after 2 votes even when the strict majority rule would need
        // them to agree anyway — the interesting case is k = 5, where
        // majority needs 3 votes but confidence is reached at 2.
        let tasks: TaskSet = (0..4)
            .map(|i| {
                Microtask::binary(TaskId(i), format!("task {i}")).with_ground_truth(Answer::YES)
            })
            .collect();
        let edges = vec![(t(0), t(1), 0.9), (t(1), t(2), 0.9), (t(2), t(3), 0.9)];
        let metric = MatrixSimilarity::from_edges(&tasks, &edges, "chain");
        let config = ICrowdConfig {
            assignment_size: 5,
            similarity_threshold: 0.5,
            early_stop_confidence: Some(0.8),
            warmup: icrowd_core::config::WarmupConfig {
                num_qualification: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut srv = ICrowdBuilder::new(tasks)
            .config(config)
            .metric(&metric)
            .build();
        let mut tick = 0u64;
        let mut guard = 0;
        while !srv.is_complete() {
            guard += 1;
            assert!(guard < 300, "early-stop campaign stalled");
            for name in ["A", "B", "C"] {
                if let Some(task) = srv.request_task(name, Tick(tick)) {
                    srv.submit_answer(name, task, Answer::YES, Tick(tick));
                }
                tick += 1;
            }
        }
        assert!(
            srv.early_stops() > 0,
            "confident unanimous pairs should stop tasks early"
        );
        // Early stopping saved votes: fewer than k = 5 votes per task.
        let total: u32 = srv.assignment_distribution().iter().sum();
        assert!(total < 2 * 5, "saved votes: only {total} regular answers");
        assert!(srv.results().values().all(|&a| a == Answer::YES));
    }

    #[test]
    fn candidate_limit_still_completes_campaigns() {
        let tasks: TaskSet = (0..12)
            .map(|i| {
                Microtask::binary(TaskId(i), format!("task {i}")).with_ground_truth(Answer::YES)
            })
            .collect();
        let metric = MatrixSimilarity::from_edges(&tasks, &[], "empty");
        let mut srv = ICrowdBuilder::new(tasks)
            .config(ICrowdConfig {
                warmup: icrowd_core::config::WarmupConfig {
                    num_qualification: 1,
                    ..Default::default()
                },
                ..Default::default()
            })
            .metric(&metric)
            .candidate_limit(3)
            .build();
        let mut tick = 0u64;
        let mut guard = 0;
        while !srv.is_complete() {
            guard += 1;
            assert!(guard < 2000, "campaign stalled under candidate_limit");
            for name in ["A", "B", "C", "D"] {
                if let Some(task) = srv.request_task(name, Tick(tick)) {
                    srv.submit_answer(name, task, Answer::YES, Tick(tick));
                }
                tick += 1;
            }
        }
        srv.validate_incremental_state();
    }

    #[test]
    fn rotating_sampler_counts_only_fresh_insertions() {
        let mut srv = setup(AssignStrategy::Adapt, 1);
        // One qualification task is preset, so 5 open tasks remain.
        // Pre-pool the first three open ids so the cursor window overlaps
        // the existing pool (as influence-support candidates do).
        let open: Vec<u32> = srv.open.iter().copied().collect();
        assert_eq!(open.len(), 5);
        let mut cand: BTreeSet<u32> = open[..3].iter().copied().collect();
        srv.open_cursor = 0;
        srv.sample_open_into(&mut cand, 2, false);
        assert_eq!(
            cand.len(),
            5,
            "pre-pooled tasks under the cursor must not consume the budget"
        );
    }

    #[test]
    fn rotating_sampler_terminates_when_everything_is_pooled() {
        let mut srv = setup(AssignStrategy::Adapt, 1);
        let mut cand: BTreeSet<u32> = srv.open.iter().copied().collect();
        let before = cand.len();
        srv.open_cursor = 2;
        srv.sample_open_into(&mut cand, 3, false);
        assert_eq!(cand.len(), before, "no fresh task exists; must not spin");
    }

    #[test]
    fn rotating_sampler_skips_full_tasks_when_asked() {
        let mut srv = setup(AssignStrategy::Adapt, 1);
        let open: Vec<u32> = srv.open.iter().copied().collect();
        srv.rem_cap[open[0] as usize] = 0;
        let mut cand = BTreeSet::new();
        srv.open_cursor = 0;
        srv.sample_open_into(&mut cand, open.len(), true);
        assert!(!cand.contains(&open[0]), "full task must be skipped");
        assert_eq!(cand.len(), open.len() - 1);
    }

    use icrowd_core::worker::WorkerId;
}
