//! # iCrowd — an adaptive crowdsourcing framework
//!
//! A from-scratch Rust implementation of *iCrowd: An Adaptive
//! Crowdsourcing Framework* (Fan, Li, Ooi, Tan, Feng — SIGMOD 2015).
//!
//! iCrowd raises crowdsourcing quality by exploiting *accuracy
//! diversity*: workers are good at tasks in domains they know and poor
//! elsewhere, so instead of assigning microtasks randomly it
//!
//! 1. **estimates** each worker's per-task accuracy on-the-fly from her
//!    globally completed microtasks, propagating evidence over a
//!    *similarity graph* with personalized PageRank (Section 3);
//! 2. **assigns** each requesting worker the microtask where she ranks
//!    among the top workers, solving a (NP-hard) disjoint top-worker-set
//!    packing greedily (Section 4); and
//! 3. **warms up** new workers on influence-maximizing qualification
//!    microtasks, rejecting those below threshold (Sections 2.2 and 5).
//!
//! # Quickstart
//!
//! ```
//! use icrowd::{AssignStrategy, ICrowd, ICrowdBuilder};
//! use icrowd::core::{Answer, ICrowdConfig, Microtask, TaskId, TaskSet, Tick};
//! use icrowd::platform::ExternalQuestionServer;
//!
//! // Three tiny entity-resolution microtasks.
//! let tasks: TaskSet = [
//!     "iphone 4 wifi 32gb | iphone four 3g black",
//!     "iphone four wifi 16gb | iphone four 3g 16gb",
//!     "ipod touch 32gb wifi | ipod touch headphone",
//! ]
//! .iter()
//! .enumerate()
//! .map(|(i, text)| {
//!     Microtask::binary(TaskId(i as u32), *text).with_ground_truth(Answer::NO)
//! })
//! .collect();
//!
//! let mut server = ICrowdBuilder::new(tasks)
//!     .config(ICrowdConfig {
//!         similarity_threshold: 0.2,
//!         ..Default::default()
//!     })
//!     .strategy(AssignStrategy::Adapt)
//!     .build();
//!
//! // The platform calls this on every worker request ...
//! let assigned = server.request_task("AMT-WORKER-1", Tick(0));
//! assert!(assigned.is_some());
//! // ... and this on every answer.
//! server.submit_answer("AMT-WORKER-1", assigned.unwrap(), Answer::NO, Tick(1));
//! ```

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod framework;
pub mod warmup;

pub use framework::{AssignStrategy, ICrowd, ICrowdBuilder};
pub use warmup::WarmUp;

/// Re-export of the foundational types crate.
pub mod core {
    pub use icrowd_core::*;
}

/// Re-export of the similarity-metric crate.
pub mod text {
    pub use icrowd_text::*;
}

/// Re-export of the graph/PPR crate.
pub mod graph {
    pub use icrowd_graph::*;
}

/// Re-export of the estimation crate.
pub mod estimate {
    pub use icrowd_estimate::*;
}

/// Re-export of the assignment crate.
pub mod assign {
    pub use icrowd_assign::*;
}

/// Re-export of the platform-simulator crate.
pub mod platform {
    pub use icrowd_platform::*;
}
