//! The Warm-Up component — Section 2.2 of the paper.
//!
//! New workers present a cold-start problem: with no globally completed
//! microtasks there is nothing to estimate accuracies from. Warm-Up
//! administers the pre-selected qualification microtasks (with requester
//! ground truth) to every new worker, in selection order; the framework
//! grades each answer immediately and rejects workers whose average
//! accuracy falls below threshold.

use icrowd_core::task::TaskId;
use icrowd_core::worker::WorkerId;

/// Tracks each worker's progress through the qualification microtasks.
#[derive(Debug, Clone)]
pub struct WarmUp {
    qualification: Vec<TaskId>,
    /// Next qualification index per worker (== len means done).
    progress: Vec<usize>,
}

impl WarmUp {
    /// Creates warm-up state over the selected qualification microtasks
    /// (administered in the given order).
    pub fn new(qualification: Vec<TaskId>) -> Self {
        Self {
            qualification,
            progress: Vec::new(),
        }
    }

    /// The qualification microtasks, in administration order.
    pub fn qualification_tasks(&self) -> &[TaskId] {
        &self.qualification
    }

    fn ensure(&mut self, worker: WorkerId) {
        if self.progress.len() <= worker.index() {
            self.progress.resize(worker.index() + 1, 0);
        }
    }

    /// The next qualification microtask for `worker`, or `None` when she
    /// has finished warm-up.
    pub fn next_task(&mut self, worker: WorkerId) -> Option<TaskId> {
        self.ensure(worker);
        self.qualification
            .get(self.progress[worker.index()])
            .copied()
    }

    /// Marks the current qualification microtask of `worker` as answered.
    pub fn advance(&mut self, worker: WorkerId) {
        self.ensure(worker);
        let p = &mut self.progress[worker.index()];
        *p = (*p + 1).min(self.qualification.len());
    }

    /// Whether `worker` is still inside warm-up.
    pub fn in_warmup(&self, worker: WorkerId) -> bool {
        match self.progress.get(worker.index()) {
            Some(&p) => p < self.qualification.len(),
            None => !self.qualification.is_empty(),
        }
    }

    /// Number of qualification answers `worker` has given.
    pub fn answered(&self, worker: WorkerId) -> usize {
        self.progress.get(worker.index()).copied().unwrap_or(0)
    }

    /// Whether `task` is one of the qualification microtasks.
    pub fn is_qualification(&self, task: TaskId) -> bool {
        self.qualification.contains(&task)
    }

    /// Whether `worker` already answered `task` during warm-up.
    pub fn has_answered(&self, worker: WorkerId, task: TaskId) -> bool {
        let done = self.answered(worker);
        self.qualification[..done.min(self.qualification.len())].contains(&task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    fn w(i: u32) -> WorkerId {
        WorkerId(i)
    }

    #[test]
    fn administers_in_order_then_finishes() {
        let mut wu = WarmUp::new(vec![t(3), t(1), t(7)]);
        assert!(wu.in_warmup(w(0)));
        assert_eq!(wu.next_task(w(0)), Some(t(3)));
        wu.advance(w(0));
        assert_eq!(wu.next_task(w(0)), Some(t(1)));
        wu.advance(w(0));
        assert_eq!(wu.answered(w(0)), 2);
        wu.advance(w(0));
        assert_eq!(wu.next_task(w(0)), None);
        assert!(!wu.in_warmup(w(0)));
        // Advancing past the end is harmless.
        wu.advance(w(0));
        assert_eq!(wu.answered(w(0)), 3);
    }

    #[test]
    fn workers_progress_independently() {
        let mut wu = WarmUp::new(vec![t(0), t(1)]);
        wu.advance(w(0));
        assert_eq!(wu.next_task(w(0)), Some(t(1)));
        assert_eq!(wu.next_task(w(5)), Some(t(0)), "fresh worker starts over");
    }

    #[test]
    fn has_answered_reflects_progress_only() {
        let mut wu = WarmUp::new(vec![t(4), t(2)]);
        assert!(!wu.has_answered(w(0), t(4)));
        wu.advance(w(0));
        assert!(wu.has_answered(w(0), t(4)));
        assert!(!wu.has_answered(w(0), t(2)));
        assert!(wu.is_qualification(t(2)));
        assert!(!wu.is_qualification(t(9)));
    }

    #[test]
    fn empty_qualification_means_no_warmup() {
        let mut wu = WarmUp::new(vec![]);
        assert!(!wu.in_warmup(w(0)));
        assert_eq!(wu.next_task(w(0)), None);
    }
}
