//! The line-delimited JSON wire protocol.
//!
//! Every message is one JSON object on one line. Requests carry an
//! `"op"` field; responses carry `"ok"` plus a `"type"` discriminator:
//!
//! ```text
//! -> {"op":"HELLO"}
//! <- {"ok":true,"type":"hello","dataset":"table1","seed":42,
//!     "workers":5,"tasks":12,"approach":"iCrowd"}
//! -> {"op":"REQUEST_TASK","worker":"W1"}
//! <- {"ok":true,"type":"task","task":7}          (or "wait" /
//!     "declined" {"retry":bool} / "left")
//! -> {"op":"SUBMIT_ANSWER","worker":"W1","task":7,"answer":1}
//! <- {"ok":true,"type":"submit","result":"accepted"}
//!     (result: accepted | rejected (+"reason") | dropped | stalled |
//!      deferred)
//! -> {"op":"STATUS"}
//! <- {"ok":true,"type":"status","complete":false,...}
//! -> {"op":"RESULTS"}
//! <- {"ok":true,"type":"results","labels":"0 1\n1 0\n..."}
//! -> {"op":"SHUTDOWN"}
//! <- {"ok":true,"type":"bye"}
//! ```
//!
//! Failures are `{"ok":false,"error":...}`; an overloaded server
//! answers `{"ok":false,"type":"busy",...}` at accept time and closes.

use icrowd_core::answer::Answer;
use icrowd_core::task::TaskId;
use icrowd_platform::{MarketAccounting, SubmitOutcome};
use serde_json::{json, Value};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Campaign announcement: dataset, seed, roster size.
    Hello,
    /// One worker's poll of the schedule.
    RequestTask {
        /// External worker id (`"W3"`).
        worker: String,
    },
    /// An answer for an assigned task.
    SubmitAnswer {
        /// External worker id.
        worker: String,
        /// The task being answered.
        task: TaskId,
        /// The answer choice.
        answer: Answer,
    },
    /// Campaign progress + accounting probe.
    Status,
    /// Current consensus labels in canonical line format.
    Results,
    /// Live metrics scrape: close the current telemetry window and
    /// return it (counter deltas, windowed histograms, gauge extremes).
    Metrics,
    /// Graceful drain: stop accepting, flush in-flight, finalize.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    /// Malformed JSON, unknown ops, or missing/mistyped fields.
    pub fn parse(line: &str) -> Result<Request, String> {
        Self::parse_with_trace(line).map(|(req, _)| req)
    }

    /// Parses one request line together with its optional `"trace"` id
    /// (a nonzero `u64` stamped by tracing clients; absent or zero
    /// means the request is untraced).
    ///
    /// # Errors
    /// Malformed JSON, unknown ops, or missing/mistyped fields.
    pub fn parse_with_trace(line: &str) -> Result<(Request, Option<u64>), String> {
        let v: Value =
            serde_json::from_str(line.trim()).map_err(|_| "malformed JSON".to_owned())?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing \"op\"".to_owned())?;
        let trace = v.get("trace").and_then(Value::as_u64).filter(|&t| t != 0);
        let req = match op {
            "HELLO" => Request::Hello,
            "REQUEST_TASK" => Request::RequestTask {
                worker: str_field(&v, "worker")?,
            },
            "SUBMIT_ANSWER" => Request::SubmitAnswer {
                worker: str_field(&v, "worker")?,
                task: TaskId(
                    u32::try_from(u64_field(&v, "task")?)
                        .map_err(|_| "\"task\" out of range".to_owned())?,
                ),
                answer: Answer(
                    u8::try_from(u64_field(&v, "answer")?)
                        .map_err(|_| "\"answer\" out of range".to_owned())?,
                ),
            },
            "STATUS" => Request::Status,
            "RESULTS" => Request::Results,
            "METRICS" => Request::Metrics,
            "SHUTDOWN" => Request::Shutdown,
            other => return Err(format!("unknown op `{other}`")),
        };
        Ok((req, trace))
    }

    /// Encodes the request as its wire JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Hello => json!({"op": "HELLO"}),
            Request::RequestTask { worker } => {
                json!({"op": "REQUEST_TASK", "worker": worker})
            }
            Request::SubmitAnswer {
                worker,
                task,
                answer,
            } => json!({
                "op": "SUBMIT_ANSWER",
                "worker": worker,
                "task": task.0,
                "answer": answer.0,
            }),
            Request::Status => json!({"op": "STATUS"}),
            Request::Results => json!({"op": "RESULTS"}),
            Request::Metrics => json!({"op": "METRICS"}),
            Request::Shutdown => json!({"op": "SHUTDOWN"}),
        }
    }

    /// Encodes the request with a `"trace"` id stamped on the line
    /// (omitted when `trace` is `None` or zero, keeping untraced lines
    /// byte-identical to [`Request::to_value`]).
    pub fn to_value_traced(&self, trace: Option<u64>) -> Value {
        let mut v = self.to_value();
        if let (Some(t), Value::Object(o)) = (trace.filter(|&t| t != 0), &mut v) {
            o.push(("trace".into(), json!(t)));
        }
        v
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field \"{key}\""))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing numeric field \"{key}\""))
}

/// A server response, encoded to one wire line via [`Response::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Campaign announcement.
    Hello {
        /// Dataset key as accepted by `icrowd_sim::datasets::by_name`.
        dataset: String,
        /// Campaign seed (clients regenerate the dataset + workers).
        seed: u64,
        /// Roster size; external ids are `"W1"..="W{workers}"`.
        workers: usize,
        /// Number of published microtasks.
        tasks: usize,
        /// Approach display name.
        approach: String,
    },
    /// The worker was assigned (or re-issued) this task.
    Task(TaskId),
    /// Another worker's turn is ahead; poll again.
    Wait,
    /// The server had no task for the worker.
    Declined {
        /// Whether a retry turn is queued.
        retry: bool,
    },
    /// The worker left the marketplace; stop polling.
    Left,
    /// How a submission settled.
    Submit {
        /// `accepted`, `rejected`, `dropped`, `stalled` or `deferred`.
        result: &'static str,
        /// Rejection reason (`rejected` only).
        reason: Option<&'static str>,
    },
    /// Campaign progress + accounting.
    Status {
        /// Every task reached consensus.
        complete: bool,
        /// The driver ran its final sweep.
        finished: bool,
        /// Answers accepted so far.
        answers: usize,
        /// Marketplace accounting so far.
        accounting: MarketAccounting,
        /// The continuous conservation law
        /// `accepted + rejected == submitted`.
        balanced: bool,
        /// Connections waiting in the handler queue.
        queue_depth: usize,
        /// Distinct workers the serving layer has seen.
        workers_seen: usize,
    },
    /// Consensus labels in canonical `<task> <answer>` line format.
    Results {
        /// The label lines.
        labels: String,
    },
    /// One closed telemetry window (`METRICS` verb), carried as the
    /// pre-serialized JSON object `icrowd-obs` emitted for it.
    Metrics {
        /// `WindowReport::to_json()` output.
        window: String,
    },
    /// Shutdown acknowledged.
    Bye,
    /// Handler queue full; retry later.
    Busy,
    /// Request-level failure.
    Error {
        /// User-facing message.
        message: String,
    },
}

impl Response {
    /// Maps a submission verdict to the wire encoding.
    pub fn from_outcome(outcome: SubmitOutcome) -> Response {
        match outcome {
            SubmitOutcome::Accepted => Response::Submit {
                result: "accepted",
                reason: None,
            },
            SubmitOutcome::Rejected(reason) => Response::Submit {
                result: "rejected",
                reason: Some(reason.name()),
            },
        }
    }

    /// Encodes the response as its wire JSON value.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Hello {
                dataset,
                seed,
                workers,
                tasks,
                approach,
            } => json!({
                "ok": true, "type": "hello",
                "dataset": dataset, "seed": seed,
                "workers": workers, "tasks": tasks,
                "approach": approach,
            }),
            Response::Task(task) => json!({"ok": true, "type": "task", "task": task.0}),
            Response::Wait => json!({"ok": true, "type": "wait"}),
            Response::Declined { retry } => {
                json!({"ok": true, "type": "declined", "retry": retry})
            }
            Response::Left => json!({"ok": true, "type": "left"}),
            Response::Submit { result, reason } => {
                let mut v = json!({"ok": true, "type": "submit", "result": *result});
                if let (Some(reason), Value::Object(o)) = (reason, &mut v) {
                    o.push(("reason".into(), json!(*reason)));
                }
                v
            }
            Response::Status {
                complete,
                finished,
                answers,
                accounting: a,
                balanced,
                queue_depth,
                workers_seen,
            } => {
                let accounting = json!({
                    "submitted": a.answers_submitted,
                    "accepted": a.answers_accepted,
                    "rejected": a.answers_rejected,
                    "dropped": a.answers_dropped,
                    "paid": a.answers_paid,
                    "abandoned": a.answers_abandoned,
                    "stalled": a.stalled,
                    "churned": a.churned,
                });
                json!({
                    "ok": true, "type": "status",
                    "complete": complete, "finished": finished,
                    "answers": answers,
                    "accounting": accounting,
                    "balanced": balanced,
                    "queue_depth": queue_depth,
                    "workers_seen": workers_seen,
                })
            }
            Response::Results { labels } => {
                json!({"ok": true, "type": "results", "labels": labels})
            }
            Response::Metrics { window } => {
                // The window payload is already JSON (hand-written by
                // icrowd-obs); embed it structurally so the line stays
                // one object. A parse failure would be an obs encoder
                // bug — degrade to a string rather than panic.
                let payload = serde_json::from_str::<Value>(window)
                    .unwrap_or_else(|_| json!(window.as_str()));
                json!({"ok": true, "type": "metrics", "window": payload})
            }
            Response::Bye => json!({"ok": true, "type": "bye"}),
            Response::Busy => {
                json!({"ok": false, "type": "busy", "error": "server at capacity; retry"})
            }
            Response::Error { message } => {
                json!({"ok": false, "type": "error", "error": message})
            }
        }
    }

    /// Serializes into `buf` (reused across requests) with the trailing
    /// newline the framing requires.
    pub fn encode_line(&self, buf: &mut String) {
        serde_json::write_to_string(&self.to_value(), buf);
        buf.push('\n');
    }
}

/// Shorthand used by tests and the rejection path: encode straight to a
/// fresh line.
pub fn response_line(resp: &Response) -> String {
    let mut buf = String::new();
    resp.encode_line(&mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_platform::RejectReason;

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        let reqs = [
            Request::Hello,
            Request::RequestTask {
                worker: "W3".into(),
            },
            Request::SubmitAnswer {
                worker: "W1".into(),
                task: TaskId(17),
                answer: Answer(1),
            },
            Request::Status,
            Request::Results,
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = serde_json::to_string(&req.to_value()).unwrap();
            assert_eq!(Request::parse(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn trace_ids_ride_the_line_without_changing_the_request() {
        let req = Request::RequestTask {
            worker: "W7".into(),
        };
        // Stamped: the id round-trips (u64-exact, beyond 2^53).
        let id = u64::MAX - 3;
        let line = serde_json::to_string(&req.to_value_traced(Some(id))).unwrap();
        assert!(line.contains("\"trace\""), "{line}");
        let (parsed, trace) = Request::parse_with_trace(&line).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(trace, Some(id));
        // Unstamped (None or zero): byte-identical to the plain encoding.
        let plain = serde_json::to_string(&req.to_value()).unwrap();
        assert_eq!(
            serde_json::to_string(&req.to_value_traced(None)).unwrap(),
            plain
        );
        assert_eq!(
            serde_json::to_string(&req.to_value_traced(Some(0))).unwrap(),
            plain
        );
        let (_, trace) = Request::parse_with_trace(&plain).unwrap();
        assert_eq!(trace, None);
        // A zero id on the wire is treated as untraced.
        let (_, trace) = Request::parse_with_trace("{\"op\":\"STATUS\",\"trace\":0}").unwrap();
        assert_eq!(trace, None);
    }

    #[test]
    fn metrics_response_embeds_the_window_structurally() {
        let line = response_line(&Response::Metrics {
            window: "{\"type\":\"window\",\"seq\":3,\"dur_ns\":10,\"spans\":[],\"counters\":[],\"gauges\":[]}".into(),
        });
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["type"].as_str(), Some("metrics"));
        assert_eq!(v["window"]["seq"].as_u64(), Some(3));
        assert_eq!(v["window"]["type"].as_str(), Some("window"));
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{}").unwrap_err().contains("op"));
        assert!(Request::parse("{\"op\":\"EXPLODE\"}")
            .unwrap_err()
            .contains("unknown op"));
        assert!(Request::parse("{\"op\":\"REQUEST_TASK\"}")
            .unwrap_err()
            .contains("worker"));
        assert!(
            Request::parse("{\"op\":\"SUBMIT_ANSWER\",\"worker\":\"W1\",\"task\":\"x\"}").is_err()
        );
    }

    #[test]
    fn responses_carry_their_discriminators() {
        let line = response_line(&Response::Task(TaskId(5)));
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["type"].as_str(), Some("task"));
        assert_eq!(v["task"].as_u64(), Some(5));

        let line = response_line(&Response::Submit {
            result: "rejected",
            reason: Some(RejectReason::Duplicate.name()),
        });
        let v: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["result"].as_str(), Some("rejected"));
        assert_eq!(v["reason"].as_str(), Some("duplicate"));

        let v: Value = serde_json::from_str(&response_line(&Response::Busy)).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["type"].as_str(), Some("busy"));
    }

    #[test]
    fn encode_line_reuses_the_buffer() {
        let mut buf = String::new();
        Response::Wait.encode_line(&mut buf);
        let first = buf.clone();
        Response::Wait.encode_line(&mut buf);
        assert_eq!(buf, first, "encode clears before writing");
        assert!(buf.ends_with('\n'));
    }
}
