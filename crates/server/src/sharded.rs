//! A striped-lock map for state mutated concurrently by handler
//! threads.
//!
//! The campaign schedule itself is serialized behind one lock (the
//! determinism contract demands it), but per-worker serving statistics
//! have no cross-worker ordering constraints — so they live here,
//! sharded by key hash, and handler threads touching different workers
//! never contend.

use std::collections::HashMap;
use std::sync::Mutex;

const NUM_SHARDS: usize = 16;

/// A `HashMap<String, T>` striped over [`NUM_SHARDS`] mutexes.
pub struct Sharded<T> {
    shards: Vec<Mutex<HashMap<String, T>>>,
}

impl<T> Default for Sharded<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Sharded<T> {
    /// An empty sharded map.
    pub fn new() -> Self {
        Self {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// FNV-1a, folded onto a shard index.
    fn shard_for(&self, key: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h as usize) % self.shards.len()
    }

    /// Runs `f` on the entry for `key`, inserting a default first if
    /// absent. Only the key's shard is locked.
    pub fn update<R>(&self, key: &str, f: impl FnOnce(&mut T) -> R) -> R
    where
        T: Default,
    {
        let mut shard = self.shards[self.shard_for(key)]
            .lock()
            .expect("shard poisoned");
        f(shard.entry(key.to_owned()).or_default())
    }

    /// Reads the entry for `key` through `f`.
    pub fn get<R>(&self, key: &str, f: impl FnOnce(&T) -> R) -> Option<R> {
        let shard = self.shards[self.shard_for(key)]
            .lock()
            .expect("shard poisoned");
        shard.get(key).map(f)
    }

    /// Number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Folds every `(key, value)` pair into an accumulator (shards are
    /// visited in order; iteration order within a shard is unspecified).
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &str, &T) -> A) -> A {
        let mut acc = init;
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            for (k, v) in shard.iter() {
                acc = f(acc, k, v);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn updates_and_reads_route_to_the_same_shard() {
        let m: Sharded<u64> = Sharded::new();
        m.update("W1", |v| *v += 3);
        m.update("W1", |v| *v += 4);
        m.update("W2", |v| *v += 1);
        assert_eq!(m.get("W1", |v| *v), Some(7));
        assert_eq!(m.get("W2", |v| *v), Some(1));
        assert_eq!(m.get("W3", |v| *v), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn concurrent_updates_from_many_threads_lose_nothing() {
        let m: Arc<Sharded<u64>> = Arc::new(Sharded::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        m.update(&format!("W{}", (t + i) % 23 + 1), |v| *v += 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total = m.fold(0u64, |acc, _, v| acc + v);
        assert_eq!(total, 8 * 1000);
        assert_eq!(m.len(), 23);
    }
}
