//! Crash recovery: rebuild a served campaign from its journal.
//!
//! The journal is an *op log*, not a state dump: the
//! [`crate::CampaignEngine`] is deterministic given its construction
//! inputs (dataset, approach, config/seed), so replaying the journaled
//! poll/submit/pump stream through a freshly prepared engine
//! reconstructs the exact driver, estimator, and accounting state the
//! crashed server held at its last synced record. Recovery therefore:
//!
//! 1. reads the longest valid record prefix ([`read_journal`] stops at
//!    the first torn or corrupt frame),
//! 2. verifies the header matches the campaign being recovered
//!    (dataset, approach, seed, config fingerprint),
//! 3. replays every op through [`CampaignEngine::handle`] — before any
//!    journal is attached, so replay appends nothing — checking each
//!    outcome against the journaled verdict,
//! 4. verifies every surviving snapshot checkpoint and the marketplace
//!    conservation laws,
//! 5. truncates any torn tail off the file and reattaches an
//!    append-mode writer so serving resumes journaling where the valid
//!    prefix ended.
//!
//! Any divergence — a replayed poll assigned a different task, a
//! submit verdict flipped, a snapshot that does not match — is a hard
//! error: it means the journal was written under different code or
//! inputs, and resuming would silently fork the campaign.

use std::fs::OpenOptions;
use std::path::Path;

use icrowd_core::answer::Answer;
use icrowd_core::task::TaskId;
use icrowd_platform::journal::{read_journal, JournalOp, JournalSnapshot, JournalWriter, PollTag};
use icrowd_sim::campaign::{Approach, CampaignConfig};
use icrowd_sim::datasets::Dataset;

use crate::engine::CampaignEngine;
use crate::protocol::{Request, Response};

/// What recovery found and did, for operator-facing summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Ops replayed from the valid prefix.
    pub ops_replayed: u64,
    /// Torn/corrupt bytes truncated off the journal tail.
    pub truncated_bytes: u64,
    /// Snapshot checkpoints verified during replay.
    pub snapshots_verified: usize,
    /// Accepted answers in the recovered campaign.
    pub answers: u64,
    /// Whether the end-state conservation laws hold.
    pub balanced: bool,
}

/// Rebuilds an engine from `path` and resumes journaling to the same
/// file. `dataset_key`/`approach`/`config` must describe the campaign
/// the journal was written for — they are re-derived from CLI flags,
/// and the header check refuses a mismatch.
///
/// # Errors
/// Returns a description of the first inconsistency: unreadable file,
/// missing or mismatched header, replay divergence, failed snapshot
/// checkpoint, broken conservation law, or an I/O error while
/// truncating/reattaching the journal.
pub fn recover(
    path: &Path,
    dataset_key: &str,
    dataset: Dataset,
    approach: Approach,
    config: CampaignConfig,
    fsync_every: usize,
    snapshot_every: usize,
) -> Result<(CampaignEngine, RecoveryReport), String> {
    let _span = icrowd_obs::span!("recovery.replay");
    let readout =
        read_journal(path).map_err(|e| format!("cannot read journal `{}`: {e}", path.display()))?;
    let Some(header) = &readout.header else {
        return Err(format!(
            "journal `{}` has no valid header record",
            path.display()
        ));
    };
    let expected = CampaignEngine::expected_header(dataset_key, approach, &config);
    if *header != expected {
        return Err(format!(
            "journal header mismatch: journal holds {}/{} seed {} fp {:016x}, \
             but the requested campaign is {}/{} seed {} fp {:016x}",
            header.dataset,
            header.approach,
            header.seed,
            header.config_fp,
            expected.dataset,
            expected.approach,
            expected.seed,
            expected.config_fp,
        ));
    }

    let engine = CampaignEngine::new(dataset_key, dataset, approach, config);

    // Snapshots are ordered by the op count they checkpoint; verify each
    // one as soon as that many ops have been applied.
    let mut snapshots = readout.snapshots.iter().peekable();
    let mut verified = 0usize;
    for (applied, op) in readout.ops.iter().enumerate() {
        while snapshots.peek().is_some_and(|s| s.ops as usize <= applied) {
            let snap = snapshots.next().expect("peeked");
            verify_snapshot(&engine, snap, applied)?;
            verified += 1;
        }
        apply(&engine, op).map_err(|e| format!("replay diverged at op {applied}: {e}"))?;
    }
    for snap in snapshots {
        if snap.ops as usize > readout.ops.len() {
            return Err(format!(
                "journal snapshot checkpoints {} ops but only {} survived — \
                 the file is internally inconsistent",
                snap.ops,
                readout.ops.len()
            ));
        }
        verify_snapshot(&engine, snap, readout.ops.len())?;
        verified += 1;
    }

    let (accounting, answers, _, _) = engine.checkpoint();
    if accounting.answers_accepted + accounting.answers_rejected != accounting.answers_submitted {
        icrowd_obs::counter_add("serve.invariant_violation", 1);
        return Err(format!(
            "recovered state violates the continuous conservation law: \
             accepted {} + rejected {} != submitted {}",
            accounting.answers_accepted, accounting.answers_rejected, accounting.answers_submitted
        ));
    }
    if accounting.answers_paid + accounting.answers_abandoned > accounting.answers_accepted {
        icrowd_obs::counter_add("serve.invariant_violation", 1);
        return Err(format!(
            "recovered state violates the settlement law: paid {} + abandoned {} > accepted {}",
            accounting.answers_paid, accounting.answers_abandoned, accounting.answers_accepted
        ));
    }

    // Cut the torn tail off the file so the reattached writer appends
    // directly after the last valid record.
    if readout.truncated_bytes > 0 {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot reopen journal for truncation: {e}"))?;
        file.set_len(readout.valid_bytes)
            .map_err(|e| format!("cannot truncate torn journal tail: {e}"))?;
        file.sync_data()
            .map_err(|e| format!("cannot sync truncated journal: {e}"))?;
    }
    let writer = JournalWriter::append_to(path, fsync_every)
        .map_err(|e| format!("cannot reattach journal writer: {e}"))?;
    engine.resume_journal(writer, snapshot_every, readout.ops.len() as u64);

    icrowd_obs::counter_add("recovery.ops_replayed", readout.ops.len() as u64);
    icrowd_obs::counter_add("recovery.truncated_bytes", readout.truncated_bytes);
    let report = RecoveryReport {
        ops_replayed: readout.ops.len() as u64,
        truncated_bytes: readout.truncated_bytes,
        snapshots_verified: verified,
        answers,
        balanced: accounting.balanced(),
    };
    Ok((engine, report))
}

/// Checks one snapshot checkpoint against the engine's current state.
fn verify_snapshot(
    engine: &CampaignEngine,
    snap: &JournalSnapshot,
    applied: usize,
) -> Result<(), String> {
    let (accounting, answers, end_tick, epoch) = engine.checkpoint();
    let got = (accounting, answers, end_tick, epoch);
    let want = (snap.accounting, snap.answers, snap.end_tick, snap.epoch);
    if got != want {
        return Err(format!(
            "snapshot checkpoint at op {applied} does not match replayed state: \
             journal recorded {want:?}, replay produced {got:?}"
        ));
    }
    Ok(())
}

/// Replays one journaled op through the request interface, insisting
/// the engine reproduces the journaled outcome.
fn apply(engine: &CampaignEngine, op: &JournalOp) -> Result<(), String> {
    match op {
        JournalOp::Poll { worker, tag } => {
            let resp = engine.handle(
                &Request::RequestTask {
                    worker: worker.clone(),
                },
                0,
            );
            let got = match resp {
                Response::Task(task) => PollTag::Assigned(task.0),
                Response::Wait => PollTag::Wait,
                Response::Declined { retry: true } => PollTag::DeclinedRetry,
                Response::Declined { retry: false } => PollTag::DeclinedLeft,
                Response::Left => PollTag::Left,
                other => return Err(format!("poll for {worker} returned {other:?}")),
            };
            if got != *tag {
                return Err(format!(
                    "poll for {worker} produced `{}` but the journal recorded `{}`",
                    got.name(),
                    tag.name()
                ));
            }
            Ok(())
        }
        JournalOp::Submit {
            worker,
            task,
            answer,
            verdict,
        } => {
            let resp = engine.handle(
                &Request::SubmitAnswer {
                    worker: worker.clone(),
                    task: TaskId(*task),
                    answer: Answer(*answer),
                },
                0,
            );
            let got = match resp {
                Response::Submit { result, reason } => {
                    reason.map_or_else(|| result.to_owned(), |r| format!("{result}:{r}"))
                }
                other => return Err(format!("submit for {worker} returned {other:?}")),
            };
            if got != *verdict {
                return Err(format!(
                    "submit {worker}/{task} produced `{got}` but the journal recorded `{verdict}`"
                ));
            }
            Ok(())
        }
        JournalOp::Pump => {
            engine.replay_pump();
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::config::ICrowdConfig;
    use icrowd_sim::campaign::MetricChoice;
    use icrowd_sim::datasets::table1;

    fn quick_config() -> CampaignConfig {
        let mut config = CampaignConfig {
            metric: MetricChoice::Jaccard,
            icrowd: ICrowdConfig {
                similarity_threshold: 0.3,
                ..Default::default()
            },
            ..Default::default()
        };
        config.icrowd.warmup.num_qualification = 3;
        config
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("icrowd_recovery_{name}_{}.bin", std::process::id()))
    }

    /// Drives part of a journaled campaign, "crashes" (drops the engine
    /// without finalizing), recovers, and checks the recovered engine
    /// continues to the same labels as an uninterrupted run.
    #[test]
    fn recover_resumes_to_identical_labels() {
        let ds = table1();
        let config = quick_config();
        let expected = icrowd_sim::campaign::run_campaign(&ds, Approach::RandomMV, &config);

        let path = tmp("resume");
        let eng = CampaignEngine::new("table1", table1(), Approach::RandomMV, config.clone());
        eng.start_journal(&path, 1, 4).unwrap();
        let workers: Vec<String> = (1..=ds.workers.len()).map(|i| format!("W{i}")).collect();
        let sims = ds.spawn_workers(config.seed);
        let mut sims: Vec<_> = sims.into_iter().map(Some).collect();

        // Drive a bounded number of rounds, then crash mid-campaign.
        let drive = |eng: &CampaignEngine, rounds: usize, sims: &mut Vec<Option<_>>| {
            for _ in 0..rounds {
                let mut live = false;
                for (i, w) in workers.iter().enumerate() {
                    let Some(sim) = sims[i].as_mut() else {
                        continue;
                    };
                    match eng.handle(&Request::RequestTask { worker: w.clone() }, 0) {
                        Response::Task(task) => {
                            live = true;
                            let answer = icrowd_platform::market::WorkerBehavior::answer(
                                sim,
                                &ds.tasks[task],
                            );
                            eng.handle(
                                &Request::SubmitAnswer {
                                    worker: w.clone(),
                                    task,
                                    answer,
                                },
                                0,
                            );
                        }
                        Response::Wait | Response::Declined { retry: true } => live = true,
                        _ => sims[i] = None,
                    }
                }
                if !live {
                    return false;
                }
            }
            true
        };
        assert!(
            drive(&eng, 3, &mut sims),
            "campaign ended before the crash point"
        );
        drop(eng); // crash: no finalize, journal synced per-record

        let (recovered, report) = recover(
            &path,
            "table1",
            table1(),
            Approach::RandomMV,
            config.clone(),
            1,
            4,
        )
        .expect("recovery failed");
        assert!(report.ops_replayed > 0);
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.balanced || report.ops_replayed > 0);

        // NOTE: worker RNGs in `sims` carry over from before the crash —
        // exactly what the real loadgen's answer memoization preserves.
        while drive(&recovered, 1, &mut sims) {}
        let labels = recovered.labels();
        assert_eq!(
            labels,
            icrowd_sim::campaign::labels_lines(&expected.labels),
            "recovered campaign diverged from the uninterrupted baseline"
        );
        let result = recovered.finalize();
        assert!(result.accounting.balanced());
        std::fs::remove_file(&path).ok();
    }

    /// A journal written for one seed must not recover under another.
    #[test]
    fn recover_rejects_mismatched_config() {
        let path = tmp("mismatch");
        let config = quick_config();
        let eng = CampaignEngine::new("table1", table1(), Approach::RandomMV, config.clone());
        eng.start_journal(&path, 1, 0).unwrap();
        eng.handle(
            &Request::RequestTask {
                worker: "W1".into(),
            },
            0,
        );
        drop(eng);

        let mut other = config;
        other.seed = 7;
        match recover(&path, "table1", table1(), Approach::RandomMV, other, 1, 0) {
            Err(err) => assert!(err.contains("header mismatch"), "{err}"),
            Ok(_) => panic!("mismatched seed must be refused"),
        }
        std::fs::remove_file(&path).ok();
    }
}
