//! The load generator: N concurrent client threads multiplexing the
//! campaign's simulated worker roster against a running server.
//!
//! From the server's `HELLO` announcement the generator regenerates the
//! dataset and worker population locally (`by_name(dataset, seed)` +
//! `spawn_workers(seed)` — the same construction the in-process harness
//! uses), so each logical worker answers with the *identical* RNG
//! stream: one draw per assignment, in the order the server's
//! deterministic schedule issues assignments. That is what makes the
//! served campaign's consensus byte-identical to `run_campaign` at the
//! same seed.
//!
//! Logical workers sit in a shared dispenser queue; each client thread
//! pops one, runs one poll cycle (one connection: `REQUEST_TASK`, and
//! on assignment `SUBMIT_ANSWER`), and returns the worker to the queue
//! — so any number of threads drives any roster size, and "64
//! concurrent workers" means 64 real connections in flight, even
//! though the schedule serializes turns.
//!
//! Client-side fault injection covers the misbehaviours a *client* can
//! produce: duplicate submissions (`dup`) and late submissions
//! (`late`). Drops and stalls are server-side faults (`icrowd serve
//! --faults`) — a client that goes silent on a scheduled assignment
//! would wedge the campaign, which is the lease/fault machinery's
//! domain, not the load generator's.
//!
//! The generator survives server restarts: transport failures and
//! `BUSY` back-pressure retry with bounded exponential backoff plus
//! jitter, the target address is re-read from `--addr-file` on every
//! connection (a restarted server binds a fresh ephemeral port), and
//! answers are memoized per assignment so a re-submit after a
//! crash-rewind replays the *identical* answer — the server accepts it
//! once and rejects the copy as a duplicate, keeping accepted answers
//! exactly-once. A no-progress watchdog (`give_up_ms`) bounds how long
//! a wedged campaign can hang the run.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use icrowd_platform::market::WorkerBehavior;
use icrowd_sim::datasets::{by_name, Dataset};
use icrowd_sim::worker_model::SimWorker;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;

use crate::client::Conn;
use crate::protocol::Request;

/// Client-side fault plan: rates in `[0,1]`, deterministic under `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientFaultConfig {
    /// Probability a submission is sent twice (the copy is stray).
    pub dup: f64,
    /// Probability a submission is delayed by [`Self::late_ms`].
    pub late: f64,
    /// Delay for late submissions, milliseconds.
    pub late_ms: u64,
    /// RNG seed for the fault draws.
    pub seed: u64,
}

impl ClientFaultConfig {
    /// Parses a `dup=0.1,late=0.05:20,seed=7` spec.
    ///
    /// # Errors
    /// Unknown keys, unparseable numbers, and rates outside `[0,1]` —
    /// reported, never panicked.
    pub fn parse(spec: &str) -> Result<ClientFaultConfig, String> {
        let mut out = ClientFaultConfig {
            dup: 0.0,
            late: 0.0,
            late_ms: 10,
            seed: 0,
        };
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{part}`"))?;
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid rate `{v}` for `{key}`"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("rate `{v}` for `{key}` outside [0,1]"));
                }
                Ok(r)
            };
            match key {
                "dup" => out.dup = rate(value)?,
                "late" => match value.split_once(':') {
                    Some((r, ms)) => {
                        out.late = rate(r)?;
                        out.late_ms = ms
                            .parse()
                            .map_err(|_| format!("invalid late delay `{ms}`"))?;
                    }
                    None => out.late = rate(value)?,
                },
                "seed" => {
                    out.seed = value
                        .parse()
                        .map_err(|_| format!("invalid seed `{value}`"))?;
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(out)
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Re-read the server address from this file before every
    /// connection (falls back to [`Self::addr`] while the file is
    /// missing or empty). A restarted server writes its fresh ephemeral
    /// address here.
    pub addr_file: Option<String>,
    /// Number of concurrent client threads.
    pub workers: usize,
    /// Think time between a worker's poll cycles, milliseconds.
    pub think_ms: u64,
    /// Abort when no answer lands for this long (milliseconds; `0`
    /// disables the watchdog).
    pub give_up_ms: u64,
    /// Client-side fault plan.
    pub faults: Option<ClientFaultConfig>,
    /// Send `SHUTDOWN` after the campaign completes.
    pub shutdown: bool,
    /// Fetch the final consensus labels via `RESULTS`.
    pub fetch_labels: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7700".to_owned(),
            addr_file: None,
            workers: 8,
            think_ms: 0,
            give_up_ms: 30_000,
            faults: None,
            shutdown: true,
            fetch_labels: true,
        }
    }
}

/// What a load-generation run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Roster size announced by the server.
    pub roster: usize,
    /// Client threads run.
    pub threads: usize,
    /// Total protocol requests issued.
    pub requests: u64,
    /// Transport-level retries (reconnects after drops/`BUSY`).
    pub retries: u64,
    /// `BUSY` back-pressure responses received.
    pub busy: u64,
    /// Duplicate submissions injected (client faults).
    pub dups_sent: u64,
    /// Answers the server accepted (final `STATUS`).
    pub accepted: u64,
    /// Submissions the server rejected.
    pub rejected: u64,
    /// Every task reached consensus.
    pub complete: bool,
    /// The accounting conservation law held at the end.
    pub balanced: bool,
    /// Wall-clock duration of the drive phase.
    pub elapsed: Duration,
    /// Accepted answers per second.
    pub throughput: f64,
    /// p50/p99 of `REQUEST_TASK` round-trips, microseconds.
    pub request_p50_us: f64,
    /// p99 of `REQUEST_TASK` round-trips, microseconds.
    pub request_p99_us: f64,
    /// p50 of `SUBMIT_ANSWER` round-trips, microseconds.
    pub submit_p50_us: f64,
    /// p99 of `SUBMIT_ANSWER` round-trips, microseconds.
    pub submit_p99_us: f64,
    /// Final consensus labels (when fetched).
    pub labels: Option<String>,
}

/// One logical worker in the dispenser.
struct Logical {
    external: String,
    sim: SimWorker,
    rng: Option<StdRng>,
    /// Answers already drawn, by task id. `SimWorker::answer` advances
    /// the worker's RNG, so a re-submit (reconnect, crash-rewind
    /// re-issue) must replay the memoized draw rather than draw again —
    /// that is what keeps a recovered campaign byte-identical to the
    /// uninterrupted baseline. Entries are dropped on `dropped` /
    /// `rejected` verdicts, after which the in-process harness would
    /// also re-draw on the next assignment of that task.
    answered: HashMap<u32, icrowd_core::answer::Answer>,
}

/// How one poll cycle left its worker.
enum Cycle {
    /// Work continues; return the worker to the dispenser.
    Continue { answered: bool },
    /// The worker is done and the campaign finished.
    Done,
    /// Transient pressure (`BUSY`); back off and retry.
    Backoff,
    /// Transport failure (refused, reset, timeout, eviction); reconnect
    /// with backoff — the server may be restarting.
    Retry(String),
    /// Protocol violation; abort the run loudly.
    Error(String),
}

struct Shared {
    queue: Mutex<VecDeque<Logical>>,
    live: AtomicUsize,
    requests: AtomicU64,
    retries: AtomicU64,
    dups_sent: AtomicU64,
    abort: AtomicBool,
    error: Mutex<Option<String>>,
    /// Most recent transport error, folded into the give-up message.
    last_retry: Mutex<Option<String>>,
    /// Watchdog: when the run started, and elapsed-ms at last progress.
    started: Instant,
    progress_ms: AtomicU64,
}

impl Shared {
    fn mark_progress(&self) {
        self.progress_ms
            .store(self.started.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn stalled_for_ms(&self) -> u64 {
        (self.started.elapsed().as_millis() as u64)
            .saturating_sub(self.progress_ms.load(Ordering::Relaxed))
    }
}

/// The connect target: the addr-file contents when configured and
/// non-empty, else the static address.
fn resolve_addr(config: &LoadgenConfig) -> String {
    if let Some(path) = &config.addr_file {
        if let Ok(text) = std::fs::read_to_string(path) {
            let addr = text.trim();
            if !addr.is_empty() {
                return addr.to_owned();
            }
        }
    }
    config.addr.clone()
}

/// Bounded exponential backoff with jitter: ~2ms doubling to a 500ms
/// cap, plus up to +50% random jitter so a fleet of retrying clients
/// does not reconnect in lockstep.
fn backoff_sleep(streak: u32, rng: &mut StdRng) {
    let base = 2u64 << streak.min(8).saturating_sub(1);
    let capped = base.min(500);
    let jitter = rng.gen_range(0..=capped / 2 + 1);
    std::thread::sleep(Duration::from_millis(capped + jitter));
}

/// Drives a full campaign against the server at `config.addr`.
///
/// # Errors
/// Connection failures, protocol violations, and unknown datasets in
/// the server's announcement.
pub fn run_loadgen(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if config.workers == 0 {
        return Err("loadgen needs at least one worker thread".to_owned());
    }
    if !icrowd_obs::is_enabled() {
        icrowd_obs::enable();
    }

    // Campaign announcement → regenerate the roster locally. Retried
    // with backoff: the server (or its addr-file) may not be up yet.
    let mut jitter_rng = jitter_rng();
    let hello_deadline = Instant::now() + Duration::from_millis(config.give_up_ms.max(5_000));
    let hello = loop {
        let addr = resolve_addr(config);
        match Conn::open(addr.as_str()).and_then(|mut c| c.call(&Request::Hello)) {
            Ok(v) => break v,
            Err(e) => {
                if Instant::now() >= hello_deadline {
                    return Err(format!("cannot reach server at `{addr}`: {e}"));
                }
                backoff_sleep(3, &mut jitter_rng);
            }
        }
    };
    expect_ok(&hello, "hello")?;
    let dataset_key = hello
        .get("dataset")
        .and_then(Value::as_str)
        .ok_or("hello carries no dataset")?;
    let seed = hello
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or("hello carries no seed")?;
    let dataset = by_name(dataset_key, seed)
        .ok_or_else(|| format!("server announced unknown dataset `{dataset_key}`"))?;
    let dataset = Arc::new(dataset);
    let roster: VecDeque<Logical> = dataset
        .spawn_workers(seed)
        .into_iter()
        .enumerate()
        .map(|(i, sim)| Logical {
            external: format!("W{}", i + 1),
            sim,
            rng: config.faults.as_ref().map(|f| {
                StdRng::seed_from_u64(f.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            }),
            answered: HashMap::new(),
        })
        .collect();
    let roster_size = roster.len();

    let shared = Arc::new(Shared {
        live: AtomicUsize::new(roster.len()),
        queue: Mutex::new(roster),
        requests: AtomicU64::new(1), // the HELLO
        retries: AtomicU64::new(0),
        dups_sent: AtomicU64::new(0),
        abort: AtomicBool::new(false),
        error: Mutex::new(None),
        last_retry: Mutex::new(None),
        started: Instant::now(),
        progress_ms: AtomicU64::new(0),
    });

    let start = Instant::now();
    let threads: Vec<_> = (0..config.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let dataset = Arc::clone(&dataset);
            let config = config.clone();
            std::thread::spawn(move || drive(&shared, &dataset, &config))
        })
        .collect();
    for t in threads {
        t.join().map_err(|_| "client thread panicked".to_owned())?;
    }
    let elapsed = start.elapsed();
    if let Some(e) = shared
        .error
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        return Err(e);
    }

    // Final probe: accounting, labels, optional shutdown. The server
    // may be mid-restart right now (a crash harness kills it at
    // arbitrary instants), so the probe rides through transport
    // failures the same way the drive loop does: re-resolve the
    // address, back off, retry whole until the give-up deadline. Every
    // request in the probe is idempotent, so restarting it is safe.
    let probe_deadline = Instant::now() + Duration::from_millis(config.give_up_ms.max(5_000));
    let mut streak = 0u32;
    let (status, labels) = loop {
        match final_probe(config) {
            Ok(out) => break out,
            Err(e) => {
                if Instant::now() >= probe_deadline {
                    return Err(format!("final probe never succeeded: {e}"));
                }
                shared.retries.fetch_add(1, Ordering::Relaxed);
                icrowd_obs::counter_add("loadgen.retry", 1);
                backoff_sleep(streak, &mut jitter_rng);
                streak += 1;
            }
        }
    };

    let accepted = status_u64(&status, "accepted");
    let snap = icrowd_obs::snapshot();
    let span_us = |name: &str| {
        snap.spans
            .iter()
            .find(|s| s.name == name)
            .map_or((0.0, 0.0), |s| {
                (s.p50_ns as f64 / 1e3, s.p99_ns as f64 / 1e3)
            })
    };
    let (request_p50_us, request_p99_us) = span_us("loadgen.request");
    let (submit_p50_us, submit_p99_us) = span_us("loadgen.submit");

    Ok(LoadgenReport {
        roster: roster_size,
        threads: config.workers,
        requests: shared.requests.load(Ordering::Relaxed),
        retries: shared.retries.load(Ordering::Relaxed),
        busy: icrowd_obs::counter_value("loadgen.busy"),
        dups_sent: shared.dups_sent.load(Ordering::Relaxed),
        accepted,
        rejected: status_u64(&status, "rejected"),
        complete: status
            .get("complete")
            .and_then(Value::as_bool)
            .unwrap_or(false),
        balanced: status
            .get("balanced")
            .and_then(Value::as_bool)
            .unwrap_or(false),
        elapsed,
        throughput: accepted as f64 / elapsed.as_secs_f64().max(1e-9),
        request_p50_us,
        request_p99_us,
        submit_p50_us,
        submit_p99_us,
        labels,
    })
}

/// One attempt at the end-of-run probe: connect, fetch STATUS (and
/// LABELS when requested), then send SHUTDOWN. Any transport failure
/// aborts the attempt; the caller retries the whole sequence.
fn final_probe(config: &LoadgenConfig) -> Result<(Value, Option<String>), String> {
    let mut conn = Conn::open(resolve_addr(config).as_str())?;
    let status = conn.call(&Request::Status)?;
    expect_ok(&status, "status")?;
    let labels = if config.fetch_labels {
        let results = conn.call(&Request::Results)?;
        expect_ok(&results, "results")?;
        Some(
            results
                .get("labels")
                .and_then(Value::as_str)
                .ok_or("results carry no labels")?
                .to_owned(),
        )
    } else {
        None
    };
    if config.shutdown {
        let bye = conn.call(&Request::Shutdown)?;
        expect_ok(&bye, "shutdown")?;
    }
    Ok((status, labels))
}

fn status_u64(status: &Value, field: &str) -> u64 {
    status
        .get("accounting")
        .and_then(|a| a.get(field))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn expect_ok(v: &Value, what: &str) -> Result<(), String> {
    if v.get("ok").and_then(Value::as_bool) == Some(true) {
        Ok(())
    } else {
        Err(format!("{what} failed: {v:?}"))
    }
}

/// The next request trace id: unique within the process, never zero
/// (zero means "untraced" on the wire). Only drawn when telemetry is
/// enabled — untraced runs keep their request lines byte-identical to
/// the pre-tracing encoding.
fn next_trace_id() -> Option<u64> {
    if !icrowd_obs::is_enabled() {
        return None;
    }
    static NEXT: AtomicU64 = AtomicU64::new(1);
    Some(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Records one client-side op round-trip under its outcome series:
/// successful protocol ops land in `op` (the series the report and
/// BENCH gates read), while BUSY back-pressure, server errors, and
/// transport failures land in `retry_op` so retries never pollute the
/// success quantiles. `started` is `None` when telemetry is disabled.
fn record_op(started: Option<Instant>, ok: bool, op: &'static str, retry_op: &'static str) {
    if let Some(t0) = started {
        let ns = t0.elapsed().as_nanos() as u64;
        icrowd_obs::record_span_ns(if ok { op } else { retry_op }, ns);
    }
}

/// A jitter RNG seeded from the process-global hash randomness — the
/// campaign's determinism never depends on backoff timing.
fn jitter_rng() -> StdRng {
    let seed = std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish();
    StdRng::seed_from_u64(seed)
}

/// One client thread: pop a worker, run one cycle, repeat until the
/// roster is exhausted (or the run aborts).
fn drive(shared: &Shared, dataset: &Dataset, config: &LoadgenConfig) {
    let mut retry_streak = 0u32;
    let mut rng = jitter_rng();
    let queue = |w: Logical| {
        shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(w);
    };
    while shared.live.load(Ordering::SeqCst) > 0 && !shared.abort.load(Ordering::SeqCst) {
        if config.give_up_ms > 0 && shared.stalled_for_ms() > config.give_up_ms {
            let last = shared
                .last_retry
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .map_or(String::new(), |e| format!(" (last transport error: {e})"));
            *shared.error.lock().unwrap_or_else(PoisonError::into_inner) = Some(format!(
                "no answer accepted for {}ms — campaign wedged, giving up{last}",
                config.give_up_ms
            ));
            shared.abort.store(true, Ordering::SeqCst);
            return;
        }
        let popped = shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front();
        let Some(mut worker) = popped else {
            // All live workers are checked out by other threads.
            std::thread::sleep(Duration::from_micros(200));
            continue;
        };
        match cycle(shared, dataset, config, &mut worker) {
            Cycle::Continue { answered } => {
                retry_streak = 0;
                if answered {
                    shared.mark_progress();
                }
                queue(worker);
                if answered && config.think_ms > 0 {
                    std::thread::sleep(Duration::from_millis(config.think_ms));
                } else if !answered {
                    // Out of turn: yield briefly before polling again.
                    std::thread::sleep(Duration::from_micros(300));
                }
            }
            Cycle::Done => {
                retry_streak = 0;
                shared.mark_progress();
                shared.live.fetch_sub(1, Ordering::SeqCst);
            }
            res @ (Cycle::Backoff | Cycle::Retry(_)) => {
                // Transient: BUSY back-pressure, or the transport
                // dropped (possibly a server restart — the next cycle
                // re-resolves the address). Exponential backoff with
                // jitter; the no-progress watchdog bounds the total.
                if let Cycle::Retry(e) = res {
                    *shared
                        .last_retry
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(e);
                }
                retry_streak += 1;
                shared.retries.fetch_add(1, Ordering::Relaxed);
                icrowd_obs::counter_add("loadgen.retry", 1);
                queue(worker);
                backoff_sleep(retry_streak, &mut rng);
            }
            Cycle::Error(e) => {
                // Protocol violation — deterministic, retrying cannot
                // help; fail loudly instead of hanging.
                *shared.error.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(format!("worker {}: {e}", worker.external));
                shared.abort.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

/// The schedule says this worker is gone (left, terminally declined,
/// or stalled) — but after a crash-rewind the recovered server may
/// rewind that verdict, and the final sweep is driven by `STATUS`
/// pumps. Probe the campaign state: the worker only retires once the
/// campaign is actually complete or finished; until then it keeps
/// polling (and gets `WAIT` when it truly has nothing to do).
fn retire_probe(conn: &mut Conn, shared: &Shared) -> Cycle {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    match conn.call(&Request::Status) {
        Ok(status) => {
            let flag = |k: &str| status.get(k).and_then(Value::as_bool) == Some(true);
            if flag("complete") || flag("finished") {
                Cycle::Done
            } else {
                Cycle::Continue { answered: false }
            }
        }
        Err(e) => Cycle::Retry(e),
    }
}

/// One poll cycle on one connection: request, and on assignment answer
/// + submit (plus client-fault variations).
fn cycle(
    shared: &Shared,
    dataset: &Dataset,
    config: &LoadgenConfig,
    worker: &mut Logical,
) -> Cycle {
    let addr = resolve_addr(config);
    let mut conn = match Conn::open(addr.as_str()) {
        Ok(c) => c,
        Err(e) => return Cycle::Retry(e),
    };
    let req = Request::RequestTask {
        worker: worker.external.clone(),
    };
    // Client-side round-trip timing is recorded under an
    // outcome-dependent series: `loadgen.request` holds only requests
    // the campaign made progress on, `loadgen.request.retry` holds
    // BUSY/error/transport attempts — so queueing delay under overload
    // is visible without skewing the success quantiles the BENCH gates
    // read.
    let started = icrowd_obs::is_enabled().then(Instant::now);
    let resp = conn.call_traced(&req, next_trace_id());
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let resp = match resp {
        Ok(v) => v,
        Err(e) => {
            record_op(started, false, "loadgen.request", "loadgen.request.retry");
            return Cycle::Retry(e);
        }
    };
    let kind = resp.get("type").and_then(Value::as_str);
    record_op(
        started,
        matches!(kind, Some("task" | "wait" | "declined" | "left")),
        "loadgen.request",
        "loadgen.request.retry",
    );
    match kind {
        Some("task") => {}
        Some("wait") => return Cycle::Continue { answered: false },
        Some("busy") => {
            icrowd_obs::counter_add("loadgen.busy", 1);
            return Cycle::Backoff;
        }
        // Server-side trouble with this connection (idle eviction, a
        // parse hiccup on a torn line): reconnect and retry.
        Some("error") => return Cycle::Retry(format!("server error: {resp:?}")),
        Some("declined") => {
            return if resp.get("retry").and_then(Value::as_bool) == Some(true) {
                Cycle::Continue { answered: false }
            } else {
                retire_probe(&mut conn, shared)
            }
        }
        Some("left") => return retire_probe(&mut conn, shared),
        _ => return Cycle::Error(format!("unexpected poll response {resp:?}")),
    }
    let Some(task) = resp.get("task").and_then(Value::as_u64) else {
        return Cycle::Error("task response without task id".to_owned());
    };
    let Ok(task) = u32::try_from(task) else {
        return Cycle::Error(format!("task id {task} out of range"));
    };
    let task = icrowd_core::task::TaskId(task);

    // One answer draw per assignment — the same call the in-process
    // harness makes, in the same schedule order. A re-issued assignment
    // (reconnect, crash rewind) replays the memoized draw instead of
    // advancing the RNG again.
    let answer = if let Some(a) = worker.answered.get(&task.0) {
        *a
    } else {
        let a = worker.sim.answer(&dataset.tasks[task]);
        worker.answered.insert(task.0, a);
        a
    };

    let mut dup = false;
    if let (Some(faults), Some(rng)) = (config.faults.as_ref(), worker.rng.as_mut()) {
        dup = faults.dup > 0.0 && rng.gen_bool(faults.dup);
        let late = faults.late > 0.0 && rng.gen_bool(faults.late);
        if late {
            std::thread::sleep(Duration::from_millis(faults.late_ms));
        }
    }

    let submit = Request::SubmitAnswer {
        worker: worker.external.clone(),
        task,
        answer,
    };
    let started = icrowd_obs::is_enabled().then(Instant::now);
    let resp = conn.call_traced(&submit, next_trace_id());
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let resp = match resp {
        Ok(v) => v,
        // The submit may or may not have landed before the transport
        // dropped. The memoized answer makes the retry idempotent: the
        // server accepts the (worker, task, answer) triple at most once
        // and rejects the replay as a duplicate.
        Err(e) => {
            record_op(started, false, "loadgen.submit", "loadgen.submit.retry");
            return Cycle::Retry(e);
        }
    };
    record_op(
        started,
        resp.get("result").and_then(Value::as_str).is_some(),
        "loadgen.submit",
        "loadgen.submit.retry",
    );
    if dup {
        // The copy is a stray; a compliant server rejects it as a
        // duplicate, and the accounting's conservation law still holds.
        shared.dups_sent.fetch_add(1, Ordering::Relaxed);
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let _ = conn.call(&submit);
    }
    match resp.get("result").and_then(Value::as_str) {
        Some("stalled") => retire_probe(&mut conn, shared),
        Some("rejected" | "dropped") => {
            // The answer did not enter consensus; the next assignment
            // of this task draws fresh, as the in-process harness does.
            worker.answered.remove(&task.0);
            Cycle::Continue { answered: true }
        }
        Some("accepted" | "deferred") => Cycle::Continue { answered: true },
        _ => Cycle::Error(format!("unexpected submit response {resp:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_parses_the_documented_grammar() {
        let f = ClientFaultConfig::parse("dup=0.25,late=0.1:35,seed=9").unwrap();
        assert_eq!(f.dup, 0.25);
        assert_eq!(f.late, 0.1);
        assert_eq!(f.late_ms, 35);
        assert_eq!(f.seed, 9);
        let f = ClientFaultConfig::parse("late=0.5").unwrap();
        assert_eq!(f.late_ms, 10, "default delay");
    }

    // Regression: spec parsers return errors instead of panicking on
    // malformed input (three malformed specs).
    #[test]
    fn malformed_dup_rate_is_an_error_not_a_panic() {
        let err = ClientFaultConfig::parse("dup=banana").unwrap_err();
        assert!(err.contains("banana"), "{err}");
    }

    #[test]
    fn malformed_late_delay_is_an_error_not_a_panic() {
        let err = ClientFaultConfig::parse("late=0.5:xx").unwrap_err();
        assert!(err.contains("xx"), "{err}");
    }

    #[test]
    fn unknown_fault_key_is_an_error_not_a_panic() {
        let err = ClientFaultConfig::parse("wobble=0.1").unwrap_err();
        assert!(err.contains("wobble"), "{err}");
        let err = ClientFaultConfig::parse("dup=1.5").unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }
}
