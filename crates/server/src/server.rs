//! The TCP transport: one acceptor, a fixed handler pool, a bounded
//! hand-off queue.
//!
//! The acceptor thread accepts connections and `try_send`s them into a
//! bounded crossbeam channel; when the queue is full it writes a `BUSY`
//! line and closes (accept-then-reject backpressure — the client gets
//! an explicit signal instead of an opaque connection reset). A fixed
//! pool of handler threads serves queued connections to EOF, one line
//! per request.
//!
//! Shutdown (the `SHUTDOWN` op, or [`ServerHandle::shutdown`]) flips a
//! flag: the acceptor stops accepting and drops its sender, handlers
//! drain whatever is already queued (the channel hands out buffered
//! connections after disconnect), in-flight connections are flushed,
//! and [`ServerHandle::join`] finalizes the campaign into its scored
//! result.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use icrowd_sim::campaign::CampaignResult;

use crate::engine::CampaignEngine;
use crate::protocol::{Request, Response};

/// Transport parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (the bound
    /// address is available via [`ServerHandle::addr`]).
    pub addr: String,
    /// Handler pool size.
    pub handlers: usize,
    /// Bounded connection queue capacity; overflow is rejected `BUSY`.
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            handlers: 4,
            queue_cap: 64,
        }
    }
}

/// A running server; join it to collect the campaign result.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    handlers: Vec<JoinHandle<()>>,
    engine: Arc<CampaignEngine>,
}

impl ServerHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful drain (idempotent; the `SHUTDOWN` op does the
    /// same through the wire).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server drains (a `SHUTDOWN` op arrives or
    /// [`Self::shutdown`] is called), then finalizes and scores the
    /// campaign.
    pub fn join(self) -> CampaignResult {
        self.acceptor.join().expect("acceptor panicked");
        for h in self.handlers {
            h.join().expect("handler panicked");
        }
        let engine = Arc::try_unwrap(self.engine)
            .ok()
            .expect("handlers hold no engine refs after join");
        engine.finalize()
    }
}

/// Starts serving `engine` per `config`. Returns once the listener is
/// bound; the campaign runs on the handler threads until shutdown.
///
/// # Errors
/// Propagates socket errors from binding the listener.
pub fn serve(engine: CampaignEngine, config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let engine = Arc::new(engine);
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = bounded::<TcpStream>(config.queue_cap.max(1));

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || acceptor_loop(&listener, &tx, &shutdown))
    };
    let handlers = (0..config.handlers.max(1))
        .map(|_| {
            let rx = rx.clone();
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || handler_loop(&rx, &engine, &shutdown))
        })
        .collect();
    drop(rx);

    Ok(ServerHandle {
        addr,
        shutdown,
        acceptor,
        handlers,
        engine,
    })
}

fn acceptor_loop(listener: &TcpListener, tx: &Sender<TcpStream>, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return; // dropping tx lets handlers drain the queue and exit
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _span = icrowd_obs::span!("serve.accept");
                icrowd_obs::counter_add("serve.accept", 1);
                match tx.try_send(stream) {
                    Ok(()) => {
                        icrowd_obs::gauge_set("serve.queue_depth", tx.len() as f64);
                    }
                    Err(TrySendError::Full(mut stream)) => {
                        icrowd_obs::counter_add("serve.busy", 1);
                        let line = crate::protocol::response_line(&Response::Busy);
                        let _ = stream.write_all(line.as_bytes());
                        // closed on drop — accept-then-reject backpressure
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return,
        }
    }
}

fn handler_loop(rx: &Receiver<TcpStream>, engine: &CampaignEngine, shutdown: &AtomicBool) {
    // recv keeps returning buffered connections after the acceptor
    // disconnects — that is the drain: everything accepted is served.
    while let Ok(stream) = rx.recv() {
        icrowd_obs::gauge_set("serve.queue_depth", rx.len() as f64);
        serve_connection(stream, engine, rx, shutdown);
    }
}

/// Serves one connection to EOF (or shutdown). Errors drop the
/// connection; the protocol is stateless per line, so clients just
/// reconnect.
fn serve_connection(
    stream: TcpStream,
    engine: &CampaignEngine,
    rx: &Receiver<TcpStream>,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets the handler notice shutdown while
    // parked on an idle connection.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut out = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return; // drain: drop idle connections
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let resp = match Request::parse(&line) {
            Ok(Request::Shutdown) => {
                let resp = engine.handle(&Request::Shutdown, rx.len());
                resp.encode_line(&mut out);
                let _ = writer.write_all(out.as_bytes());
                let _ = writer.flush();
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            Ok(req) => engine.handle(&req, rx.len()),
            Err(message) => Response::Error { message },
        };
        resp.encode_line(&mut out);
        if writer
            .write_all(out.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}
