//! The TCP transport: one acceptor, a fixed handler pool, a bounded
//! hand-off queue.
//!
//! The acceptor thread accepts connections and `try_send`s them into a
//! bounded crossbeam channel; when the queue is full it writes a `BUSY`
//! line and closes (accept-then-reject backpressure — the client gets
//! an explicit signal instead of an opaque connection reset). A fixed
//! pool of handler threads serves queued connections to EOF, one line
//! per request.
//!
//! Shutdown (the `SHUTDOWN` op, or [`ServerHandle::shutdown`]) flips a
//! flag: the acceptor stops accepting and drops its sender, handlers
//! drain whatever is already queued (the channel hands out buffered
//! connections after disconnect), in-flight connections are flushed,
//! and [`ServerHandle::join`] finalizes the campaign into its scored
//! result.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender, TrySendError};
use icrowd_sim::campaign::CampaignResult;

use crate::engine::CampaignEngine;
use crate::protocol::{Request, Response};

/// Transport parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (the bound
    /// address is available via [`ServerHandle::addr`]).
    pub addr: String,
    /// Handler pool size.
    pub handlers: usize,
    /// Bounded connection queue capacity; overflow is rejected `BUSY`.
    pub queue_cap: usize,
    /// Evict a connection that has not completed a request line for
    /// this long (slow-loris / stalled-client guard). `0` disables
    /// eviction.
    pub idle_timeout_ms: u64,
    /// Advance and emit a telemetry window every this many
    /// milliseconds (`icrowd serve --metrics-every`). `0` disables the
    /// emitter; the `METRICS` verb works regardless.
    pub metrics_every_ms: u64,
    /// Where the periodic window JSONL stream goes; `None` writes to
    /// stderr.
    pub metrics_out: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            handlers: 4,
            queue_cap: 64,
            idle_timeout_ms: 10_000,
            metrics_every_ms: 0,
            metrics_out: None,
        }
    }
}

/// A running server; join it to collect the campaign result.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    handlers: Vec<JoinHandle<()>>,
    emitter: Option<JoinHandle<()>>,
    engine: Arc<CampaignEngine>,
}

impl ServerHandle {
    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates graceful drain (idempotent; the `SHUTDOWN` op does the
    /// same through the wire).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server drains (a `SHUTDOWN` op arrives or
    /// [`Self::shutdown`] is called), then finalizes and scores the
    /// campaign. A panicked transport thread is counted, not
    /// propagated — the campaign result is still recoverable from the
    /// engine.
    pub fn join(self) -> CampaignResult {
        if self.acceptor.join().is_err() {
            icrowd_obs::counter_add("serve.thread_panic", 1);
        }
        for h in self.handlers {
            if h.join().is_err() {
                icrowd_obs::counter_add("serve.thread_panic", 1);
            }
        }
        if let Some(e) = self.emitter {
            if e.join().is_err() {
                icrowd_obs::counter_add("serve.thread_panic", 1);
            }
        }
        // All threads are joined, so their engine refs are dropped;
        // brief retries cover the unwinder still releasing a clone.
        let mut engine = self.engine;
        for _ in 0..50 {
            match Arc::try_unwrap(engine) {
                Ok(e) => return e.finalize(),
                Err(arc) => {
                    engine = arc;
                    thread::sleep(Duration::from_millis(10));
                }
            }
        }
        unreachable!("handlers hold no engine refs after join")
    }
}

/// Starts serving `engine` per `config`. Returns once the listener is
/// bound; the campaign runs on the handler threads until shutdown.
///
/// # Errors
/// Propagates socket errors from binding the listener.
pub fn serve(engine: CampaignEngine, config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let engine = Arc::new(engine);
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = bounded::<TcpStream>(config.queue_cap.max(1));

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || acceptor_loop(&listener, &tx, &shutdown))
    };
    let idle_timeout = Duration::from_millis(config.idle_timeout_ms);
    let handlers = (0..config.handlers.max(1))
        .map(|_| {
            let rx = rx.clone();
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || handler_loop(&rx, &engine, &shutdown, idle_timeout))
        })
        .collect();
    drop(rx);
    let emitter = (config.metrics_every_ms > 0).then(|| {
        let shutdown = Arc::clone(&shutdown);
        let every = Duration::from_millis(config.metrics_every_ms);
        let out = config.metrics_out.clone();
        thread::spawn(move || metrics_emitter_loop(&shutdown, every, out.as_deref()))
    });

    Ok(ServerHandle {
        addr,
        shutdown,
        acceptor,
        handlers,
        emitter,
        engine,
    })
}

/// Closes a telemetry window every `every` and appends its JSON line to
/// `out` (stderr when `None`). Emits one final window on shutdown so
/// the tail of the run is never lost to the tick boundary.
fn metrics_emitter_loop(shutdown: &AtomicBool, every: Duration, out: Option<&str>) {
    let mut sink: Option<std::fs::File> = out.and_then(|p| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(p)
            .ok()
    });
    // Stream only flows when the operator passed `--metrics-every`;
    // with no `--metrics-out` path it goes to stderr (never stdout,
    // which belongs to the caller's output).
    let mut emit = |line: String| {
        let ok = match sink.as_mut() {
            Some(f) => f.write_all(line.as_bytes()).and_then(|()| f.flush()),
            None => std::io::stderr().write_all(line.as_bytes()),
        };
        if ok.is_err() {
            icrowd_obs::counter_add("serve.metrics_emit_error", 1);
        }
    };
    loop {
        let done = shutdown.load(Ordering::SeqCst);
        let window = icrowd_obs::window_advance();
        emit(format!("{}\n", window.to_json()));
        if done {
            return;
        }
        // Sleep in short slices so shutdown latency stays bounded even
        // with a long window period.
        let tick_start = Instant::now();
        while tick_start.elapsed() < every {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            thread::sleep(Duration::from_millis(20).min(every));
        }
    }
}

fn acceptor_loop(listener: &TcpListener, tx: &Sender<TcpStream>, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return; // dropping tx lets handlers drain the queue and exit
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _span = icrowd_obs::span!("serve.accept");
                icrowd_obs::counter_add("serve.conn_accepted", 1);
                match tx.try_send(stream) {
                    Ok(()) => {
                        icrowd_obs::gauge_set("serve.queue_depth", tx.len() as f64);
                    }
                    Err(TrySendError::Full(mut stream)) => {
                        icrowd_obs::counter_add("serve.conn_busy", 1);
                        let line = crate::protocol::response_line(&Response::Busy);
                        let _ = stream.write_all(line.as_bytes());
                        // closed on drop — accept-then-reject backpressure
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return,
        }
    }
}

fn handler_loop(
    rx: &Receiver<TcpStream>,
    engine: &CampaignEngine,
    shutdown: &AtomicBool,
    idle_timeout: Duration,
) {
    // recv keeps returning buffered connections after the acceptor
    // disconnects — that is the drain: everything accepted is served.
    while let Ok(stream) = rx.recv() {
        icrowd_obs::gauge_set("serve.queue_depth", rx.len() as f64);
        serve_connection(stream, engine, rx, shutdown, idle_timeout);
    }
}

/// A request line (trailing `\n` stripped) accumulated byte-by-byte, or
/// the reason the connection ended.
enum LineRead {
    Line(String),
    Eof,
    Evicted,
    ShuttingDown,
    Error,
}

/// Reads until `acc` holds a complete line, enforcing the idle
/// deadline. Partial bytes survive read timeouts — a slow writer is
/// only evicted once the *deadline* passes, never by losing data to a
/// 100 ms poll tick.
fn read_deadline_line(
    stream: &mut TcpStream,
    acc: &mut Vec<u8>,
    shutdown: &AtomicBool,
    idle_timeout: Duration,
) -> LineRead {
    let deadline_start = Instant::now();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(pos) = acc.iter().position(|&b| b == b'\n') {
            let rest = acc.split_off(pos + 1);
            let line = std::mem::replace(acc, rest);
            return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
        }
        match stream.read(&mut buf) {
            Ok(0) => return LineRead::Eof,
            Ok(n) => acc.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return LineRead::ShuttingDown; // drain: drop idle connections
                }
                if !idle_timeout.is_zero() && deadline_start.elapsed() >= idle_timeout {
                    return LineRead::Evicted;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return LineRead::Error,
        }
    }
}

/// Serves one connection to EOF (or shutdown, or idle eviction).
/// Errors drop the connection; the protocol is stateless per line, so
/// clients just reconnect.
fn serve_connection(
    mut stream: TcpStream,
    engine: &CampaignEngine,
    rx: &Receiver<TcpStream>,
    shutdown: &AtomicBool,
    idle_timeout: Duration,
) {
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets the handler notice shutdown and the
    // idle deadline while parked on a quiet connection; a write
    // deadline keeps a non-draining client from wedging the handler.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut acc: Vec<u8> = Vec::new();
    let mut out = String::new();
    loop {
        let line = match read_deadline_line(&mut stream, &mut acc, shutdown, idle_timeout) {
            LineRead::Line(line) => line,
            LineRead::Evicted => {
                icrowd_obs::counter_add("serve.conn_evicted", 1);
                out.clear();
                Response::Error {
                    message: "idle timeout — connection evicted".to_owned(),
                }
                .encode_line(&mut out);
                let _ = writer.write_all(out.as_bytes());
                return;
            }
            LineRead::Eof | LineRead::ShuttingDown | LineRead::Error => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let resp = match Request::parse_with_trace(&line) {
            Ok((Request::Shutdown, _)) => {
                let resp = engine.handle(&Request::Shutdown, rx.len());
                resp.encode_line(&mut out);
                let _ = writer.write_all(out.as_bytes());
                let _ = writer.flush();
                shutdown.store(true, Ordering::SeqCst);
                return;
            }
            // METRICS is transport-level: it scrapes the telemetry
            // plane, not the campaign, so it never takes the engine
            // lock (scraping a busy server cannot perturb assignment).
            Ok((Request::Metrics, _)) => Response::Metrics {
                window: icrowd_obs::window_advance().to_json(),
            },
            Ok((req, trace)) => {
                // The root span of this request's trace; engine /
                // driver / journal spans attach underneath via the
                // thread-local trace context. Untraced lines skip all
                // of this at the cost of one atomic load.
                let _root = icrowd_obs::trace_begin(
                    trace.unwrap_or(0),
                    match &req {
                        Request::RequestTask { .. } => "serve.rpc.request",
                        Request::SubmitAnswer { .. } => "serve.rpc.submit",
                        _ => "serve.rpc.other",
                    },
                );
                engine.handle(&req, rx.len())
            }
            Err(message) => Response::Error { message },
        };
        resp.encode_line(&mut out);
        if writer
            .write_all(out.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}
