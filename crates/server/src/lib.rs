//! # icrowd-serve
//!
//! A zero-dependency concurrent TCP serving layer and load generator
//! for the marketplace loop — the networked deployment of the paper's
//! Appendix A, where AMT workers reach iCrowd through its web server's
//! ExternalQuestion endpoint.
//!
//! The server fronts one campaign (a [`icrowd_platform::MarketDriver`]
//! plus an `ExternalQuestionServer`) behind a line-delimited JSON
//! protocol:
//!
//! * [`protocol`] — request/response grammar (`HELLO`, `REQUEST_TASK`,
//!   `SUBMIT_ANSWER`, `STATUS`, `RESULTS`, `SHUTDOWN`).
//! * [`engine`] — the shared campaign state: every mutation funnels
//!   through the driver's `poll`/`submit` paths, so `SubmitOutcome`
//!   validation and the `MarketAccounting` conservation laws hold under
//!   concurrent clients, and the final consensus is byte-identical to
//!   an in-process run at the same seed.
//! * [`sharded`] — a striped-lock map for per-worker statistics that
//!   are updated concurrently outside the campaign lock.
//! * [`server`] — one acceptor thread plus a fixed handler pool fed by
//!   a bounded channel; a full queue rejects with `BUSY`
//!   (accept-then-reject backpressure), and shutdown drains in-flight
//!   connections before finalizing the campaign.
//! * [`recovery`] — crash recovery: replay the write-ahead journal
//!   (see [`icrowd_platform::journal`]) through a freshly prepared
//!   engine, verify snapshots and conservation laws, truncate any torn
//!   tail, and resume serving byte-identically.
//! * [`client`] — a minimal blocking protocol client.
//! * [`loadgen`] — N concurrent simulated workers (rebuilt from the
//!   server's `HELLO` announcement) driving a campaign to completion,
//!   reporting throughput and p50/p99 latency via `icrowd-obs`.

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod client;
pub mod engine;
pub mod loadgen;
pub mod protocol;
pub mod recovery;
pub mod server;
pub mod sharded;

pub use client::Conn;
pub use engine::{config_fingerprint, CampaignEngine};
pub use loadgen::{run_loadgen, ClientFaultConfig, LoadgenConfig, LoadgenReport};
pub use protocol::{Request, Response};
pub use recovery::{recover, RecoveryReport};
pub use server::{serve, ServeConfig, ServerHandle};
pub use sharded::Sharded;
