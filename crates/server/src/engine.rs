//! The shared campaign state behind the serving layer.
//!
//! [`CampaignEngine`] owns a [`MarketDriver`] plus the approach's
//! `ExternalQuestionServer` under one mutex — the deterministic
//! `(tick, sequence)` schedule is inherently serial, so concurrency at
//! the transport layer collapses to an ordered stream of `poll` /
//! `submit` calls here. Because both the in-process harness and this
//! engine drive the *identical* driver code in the identical order, a
//! served campaign's consensus labels are byte-identical to an
//! in-process `run_campaign` at the same seed.
//!
//! With a journal attached ([`CampaignEngine::start_journal`]), every
//! call that moved the driver's mutation epoch is appended to the
//! write-ahead journal *inside the campaign lock*, so journal order is
//! exactly apply order. The driver is deterministic given its
//! construction inputs, which makes the op log a complete
//! recovery image: [`crate::recovery::recover`] replays it through a
//! freshly prepared engine and resumes serving. Idempotent re-issues
//! and out-of-turn waits leave the epoch (and the journal) untouched,
//! and a journal-free engine takes none of these branches — the
//! no-journal serve path is structurally identical to the pre-journal
//! behavior.
//!
//! Per-worker serving statistics (polls, assignments, verdicts) have no
//! ordering constraints and live outside the campaign lock in a
//! [`Sharded`] striped-lock map.

use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use icrowd_core::answer::Answer;
use icrowd_core::task::TaskId;
use icrowd_platform::journal::{
    fingerprint, JournalHeader, JournalOp, JournalRecord, JournalSnapshot, JournalWriter, PollTag,
    JOURNAL_VERSION,
};
use icrowd_platform::market::ExternalQuestionServer;
use icrowd_platform::{MarketAccounting, MarketDriver, PollOutcome, SubmitReport};
use icrowd_sim::campaign::{
    labels_lines, prepare_campaign, score_campaign, Approach, CampaignConfig, CampaignResult,
    CampaignServer,
};
use icrowd_sim::datasets::Dataset;

use crate::protocol::{Request, Response};
use crate::sharded::Sharded;

/// Per-worker serving statistics, updated outside the campaign lock.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkerStats {
    /// `REQUEST_TASK` calls.
    pub polls: u64,
    /// Polls that returned an assignment.
    pub assigned: u64,
    /// `SUBMIT_ANSWER` calls.
    pub submitted: u64,
    /// Submissions the server accepted.
    pub accepted: u64,
}

/// A stable fingerprint of the full campaign configuration, stored in
/// the journal header so recovery refuses a journal written under a
/// different configuration.
pub fn config_fingerprint(config: &CampaignConfig) -> u64 {
    fingerprint(&format!("{config:?}"))
}

/// Journal state riding inside the campaign lock, so append order is
/// apply order.
struct Journal {
    writer: JournalWriter,
    /// Ops appended so far (including replayed ones after recovery).
    ops: u64,
    /// Accepted answers between snapshots (`0` disables snapshots).
    snapshot_every: usize,
    accepted_since_snapshot: usize,
}

struct Core {
    driver: MarketDriver,
    backend: CampaignServer,
    journal: Option<Journal>,
}

/// One campaign served over the wire. See the module docs.
pub struct CampaignEngine {
    core: Mutex<Core>,
    stats: Sharded<WorkerStats>,
    dataset_key: String,
    dataset: Dataset,
    approach: Approach,
    config: CampaignConfig,
    gold: Vec<TaskId>,
    start: Instant,
}

impl CampaignEngine {
    /// Prepares a campaign for serving: offline work (graph + gold
    /// selection) runs here, exactly as `run_campaign` would, and the
    /// marketplace driver is built from the same
    /// [`icrowd_sim::campaign::CampaignSetup`].
    ///
    /// `dataset_key` is the name clients feed to
    /// [`icrowd_sim::datasets::by_name`] to regenerate `dataset`.
    pub fn new(
        dataset_key: &str,
        dataset: Dataset,
        approach: Approach,
        config: CampaignConfig,
    ) -> Self {
        let setup = prepare_campaign(&dataset, approach, &config);
        let driver = MarketDriver::new(
            dataset.tasks.clone(),
            setup.market,
            setup.scripts,
            config.faults.clone(),
        );
        Self {
            core: Mutex::new(Core {
                driver,
                backend: setup.server,
                journal: None,
            }),
            stats: Sharded::new(),
            dataset_key: dataset_key.to_owned(),
            dataset,
            approach,
            config,
            gold: setup.gold,
            start: Instant::now(),
        }
    }

    /// Locks the campaign core, recovering from a poisoned lock: the
    /// driver's state transitions are all-or-nothing per call, so a
    /// panicking handler thread must not take the whole campaign (and
    /// every other client) down with it.
    fn core_lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The journal header identifying this campaign — what
    /// [`Self::start_journal`] writes and recovery verifies.
    pub fn expected_header(
        dataset_key: &str,
        approach: Approach,
        config: &CampaignConfig,
    ) -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            dataset: dataset_key.to_owned(),
            approach: approach.name(),
            seed: config.seed,
            config_fp: config_fingerprint(config),
        }
    }

    /// Creates a fresh journal at `path` and starts journaling every
    /// mutation. The header is written and synced immediately, so a
    /// crash at any later instant leaves a recoverable file.
    ///
    /// # Errors
    /// Propagates journal-creation and header-write failures.
    pub fn start_journal(
        &self,
        path: &Path,
        fsync_every: usize,
        snapshot_every: usize,
    ) -> std::io::Result<()> {
        let mut writer = JournalWriter::create(path, fsync_every)?;
        writer.append(&JournalRecord::Header(Self::expected_header(
            &self.dataset_key,
            self.approach,
            &self.config,
        )))?;
        writer.sync()?;
        self.core_lock().journal = Some(Journal {
            writer,
            ops: 0,
            snapshot_every,
            accepted_since_snapshot: 0,
        });
        Ok(())
    }

    /// Reattaches a journal writer after recovery replayed `ops`
    /// existing records; subsequent mutations append after them.
    pub(crate) fn resume_journal(&self, writer: JournalWriter, snapshot_every: usize, ops: u64) {
        self.core_lock().journal = Some(Journal {
            writer,
            ops,
            snapshot_every,
            accepted_since_snapshot: 0,
        });
    }

    /// Appends one op (plus a periodic snapshot checkpoint, followed by
    /// compaction) to the journal, inside the campaign lock. A write
    /// failure stops journaling — the surviving file is still a valid
    /// replayable prefix — and counts `journal.error`.
    fn journal_append(journal: &mut Option<Journal>, driver: &MarketDriver, op: JournalOp) {
        let Some(j) = journal.as_mut() else {
            return;
        };
        let _span = icrowd_obs::span!("journal.append");
        let _tspan = icrowd_obs::TraceSpan::start("journal.append");
        let accepted = matches!(&op, JournalOp::Submit { verdict, .. } if verdict == "accepted");
        let mut failed = j.writer.append(&JournalRecord::Op(op)).is_err();
        if !failed {
            j.ops += 1;
            if accepted {
                j.accepted_since_snapshot += 1;
            }
            if j.snapshot_every > 0 && j.accepted_since_snapshot >= j.snapshot_every {
                j.accepted_since_snapshot = 0;
                let snap = JournalSnapshot {
                    ops: j.ops,
                    answers: driver.answers() as u64,
                    accounting: driver.accounting(),
                    end_tick: driver.now().0,
                    epoch: driver.epoch(),
                };
                icrowd_obs::counter_add("journal.snapshot", 1);
                failed = j.writer.append(&JournalRecord::Snapshot(snap)).is_err()
                    || j.writer.compact().is_err();
            }
        }
        if failed {
            icrowd_obs::counter_add("journal.error", 1);
            *journal = None;
        }
    }

    /// Handles one request. `queue_depth` is the transport's current
    /// connection backlog, echoed in `STATUS`.
    pub fn handle(&self, req: &Request, queue_depth: usize) -> Response {
        match req {
            Request::Hello => Response::Hello {
                dataset: self.dataset_key.clone(),
                seed: self.config.seed,
                workers: self.dataset.workers.len(),
                tasks: self.dataset.tasks.len(),
                approach: self.approach.name(),
            },
            Request::RequestTask { worker } => self.request_task(worker),
            Request::SubmitAnswer {
                worker,
                task,
                answer,
            } => self.submit_answer(worker, *task, *answer),
            Request::Status => self.status(queue_depth),
            Request::Results => Response::Results {
                labels: self.labels(),
            },
            // Normally answered at the transport layer without taking
            // the engine lock; kept here so in-process callers can
            // scrape through the same interface.
            Request::Metrics => Response::Metrics {
                window: icrowd_obs::window_advance().to_json(),
            },
            Request::Shutdown => Response::Bye,
        }
    }

    fn request_task(&self, worker: &str) -> Response {
        let _span = icrowd_obs::span!("serve.request");
        let _tspan = icrowd_obs::TraceSpan::start("engine.request");
        let outcome = {
            let mut core = self.core_lock();
            let Core {
                driver,
                backend,
                journal,
            } = &mut *core;
            let before = driver.epoch();
            let outcome = driver.poll(backend, worker);
            if driver.epoch() != before {
                let tag = match outcome {
                    PollOutcome::Assigned(task) => PollTag::Assigned(task.0),
                    PollOutcome::Wait => PollTag::Wait,
                    PollOutcome::Declined { retry: true } => PollTag::DeclinedRetry,
                    PollOutcome::Declined { retry: false } => PollTag::DeclinedLeft,
                    PollOutcome::Left => PollTag::Left,
                };
                Self::journal_append(
                    journal,
                    driver,
                    JournalOp::Poll {
                        worker: worker.to_owned(),
                        tag,
                    },
                );
            }
            outcome
        };
        self.stats.update(worker, |s| {
            s.polls += 1;
            if matches!(outcome, PollOutcome::Assigned(_)) {
                s.assigned += 1;
            }
        });
        match outcome {
            PollOutcome::Assigned(task) => Response::Task(task),
            PollOutcome::Wait => Response::Wait,
            PollOutcome::Declined { retry } => Response::Declined { retry },
            PollOutcome::Left => Response::Left,
        }
    }

    fn submit_answer(&self, worker: &str, task: TaskId, answer: Answer) -> Response {
        let _span = icrowd_obs::span!("serve.submit");
        let _tspan = icrowd_obs::TraceSpan::start("engine.submit");
        let resp = {
            let mut core = self.core_lock();
            let Core {
                driver,
                backend,
                journal,
            } = &mut *core;
            let before = driver.epoch();
            // The scheduled path is only for the assignment the driver
            // is suspended on; everything else (duplicates, unsolicited
            // submissions from misbehaving clients) goes through the
            // stray path, which validates without touching the schedule.
            let scheduled = driver
                .pending()
                .filter(|p| driver.external_id(p.worker) == worker && p.task == task);
            let resp = match scheduled {
                Some(p) => match driver.submit_scheduled(p.worker, answer, backend) {
                    SubmitReport::Delivered(outcome) => Response::from_outcome(outcome),
                    SubmitReport::Dropped => Response::Submit {
                        result: "dropped",
                        reason: None,
                    },
                    SubmitReport::Stalled => Response::Submit {
                        result: "stalled",
                        reason: None,
                    },
                    SubmitReport::Deferred => Response::Submit {
                        result: "deferred",
                        reason: None,
                    },
                },
                None => Response::from_outcome(driver.submit_stray(backend, worker, task, answer)),
            };
            // The continuous conservation law must hold after every
            // submission; a violation means a verdict was double-counted.
            let a = driver.accounting();
            if a.answers_accepted + a.answers_rejected != a.answers_submitted {
                icrowd_obs::counter_add("serve.invariant_violation", 1);
            }
            if driver.epoch() != before {
                if let Response::Submit { result, reason } = &resp {
                    let verdict =
                        reason.map_or_else(|| (*result).to_owned(), |r| format!("{result}:{r}"));
                    Self::journal_append(
                        journal,
                        driver,
                        JournalOp::Submit {
                            worker: worker.to_owned(),
                            task: task.0,
                            answer: answer.0,
                            verdict,
                        },
                    );
                }
            }
            resp
        };
        self.stats.update(worker, |s| {
            s.submitted += 1;
            if matches!(
                resp,
                Response::Submit {
                    result: "accepted",
                    ..
                }
            ) {
                s.accepted += 1;
            }
        });
        resp
    }

    fn status(&self, queue_depth: usize) -> Response {
        let mut core = self.core_lock();
        let Core {
            driver,
            backend,
            journal,
        } = &mut *core;
        // Pump deferred (late) deliveries so progress keeps moving even
        // after every worker left, and the final sweep runs once the
        // schedule drains.
        let before = driver.epoch();
        driver.pump(backend);
        if driver.epoch() != before {
            Self::journal_append(journal, driver, JournalOp::Pump);
        }
        let a = driver.accounting();
        Response::Status {
            complete: backend.is_complete(),
            finished: driver.is_finished(),
            answers: driver.answers(),
            accounting: a,
            balanced: a.answers_accepted + a.answers_rejected == a.answers_submitted,
            queue_depth,
            workers_seen: self.stats.len(),
        }
    }

    /// Current consensus labels in canonical line format.
    pub fn labels(&self) -> String {
        let mut core = self.core_lock();
        let Core {
            driver,
            backend,
            journal,
        } = &mut *core;
        let before = driver.epoch();
        driver.pump(backend);
        if driver.epoch() != before {
            Self::journal_append(journal, driver, JournalOp::Pump);
        }
        let results = backend.results(self.config.weighted_aggregation);
        let mut labels: Vec<(TaskId, Answer)> = results.into_iter().collect();
        labels.sort_unstable_by_key(|(t, _)| *t);
        labels_lines(&labels)
    }

    /// Applies a deferred-delivery pump without journaling — the
    /// recovery path replaying a journaled `Pump` record.
    pub(crate) fn replay_pump(&self) {
        let mut core = self.core_lock();
        let Core {
            driver, backend, ..
        } = &mut *core;
        driver.pump(backend);
    }

    /// The checkpoint view of the driver: accounting, accepted answers,
    /// latest tick and mutation epoch — what snapshots pin and recovery
    /// verifies.
    pub fn checkpoint(&self) -> (MarketAccounting, u64, u64, u64) {
        let core = self.core_lock();
        (
            core.driver.accounting(),
            core.driver.answers() as u64,
            core.driver.now().0,
            core.driver.epoch(),
        )
    }

    /// A copy of one worker's serving statistics.
    pub fn worker_stats(&self, worker: &str) -> Option<WorkerStats> {
        self.stats.get(worker, |s| *s)
    }

    /// Drains the campaign into its scored result: pumps stragglers,
    /// forces the final sweep if the schedule did not complete, and
    /// scores exactly as the in-process harness does. The journal (if
    /// any) is synced and closed *before* the drain sweep runs — drain
    /// mutations are never journaled, so a recovered campaign resumes
    /// from the last served state, not a half-drained one.
    pub fn finalize(self) -> CampaignResult {
        let core = self
            .core
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let Core {
            mut driver,
            mut backend,
            journal,
        } = core;
        if let Some(mut j) = journal {
            let _ = j.writer.sync();
        }
        driver.pump(&mut backend);
        if !driver.is_finished() {
            driver.finish_now();
        }
        let outcome = driver.into_outcome();
        score_campaign(
            &self.dataset,
            self.approach,
            &self.config,
            &mut backend,
            self.gold,
            &outcome,
            self.start.elapsed().as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::config::ICrowdConfig;
    use icrowd_sim::campaign::MetricChoice;
    use icrowd_sim::datasets::table1;

    fn quick_config() -> CampaignConfig {
        let mut config = CampaignConfig {
            metric: MetricChoice::Jaccard,
            icrowd: ICrowdConfig {
                similarity_threshold: 0.3,
                ..Default::default()
            },
            ..Default::default()
        };
        config.icrowd.warmup.num_qualification = 3;
        config
    }

    fn engine() -> CampaignEngine {
        CampaignEngine::new("table1", table1(), Approach::RandomMV, quick_config())
    }

    /// Drives a whole campaign through the request interface, exactly as
    /// remote pollers would, and checks the drain matches in-process.
    #[test]
    fn engine_driven_campaign_matches_in_process_labels() {
        let ds = table1();
        let config = quick_config();
        let expected = icrowd_sim::campaign::run_campaign(&ds, Approach::RandomMV, &config);

        let eng = engine();
        let workers: Vec<String> = (1..=ds.workers.len()).map(|i| format!("W{i}")).collect();
        let sims = ds.spawn_workers(config.seed);
        let mut sims: Vec<_> = sims.into_iter().map(Some).collect();
        let mut live = workers.len();
        let mut guard = 0;
        while live > 0 {
            guard += 1;
            assert!(guard < 1_000_000, "engine livelocked");
            for (i, w) in workers.iter().enumerate() {
                let Some(sim) = sims[i].as_mut() else {
                    continue;
                };
                match eng.handle(&Request::RequestTask { worker: w.clone() }, 0) {
                    Response::Task(task) => {
                        let answer =
                            icrowd_platform::market::WorkerBehavior::answer(sim, &ds.tasks[task]);
                        let resp = eng.handle(
                            &Request::SubmitAnswer {
                                worker: w.clone(),
                                task,
                                answer,
                            },
                            0,
                        );
                        assert!(
                            matches!(resp, Response::Submit { .. }),
                            "unexpected submit response {resp:?}"
                        );
                    }
                    Response::Wait | Response::Declined { retry: true } => {}
                    Response::Left | Response::Declined { retry: false } => {
                        sims[i] = None;
                        live -= 1;
                    }
                    other => panic!("unexpected poll response {other:?}"),
                }
            }
        }
        let labels = eng.labels();
        let result = eng.finalize();
        assert_eq!(labels, labels_lines(&expected.labels));
        assert_eq!(labels_lines(&result.labels), labels_lines(&expected.labels));
        assert_eq!(result.answers, expected.answers);
        assert_eq!(result.spend_cents, expected.spend_cents);
        assert!(result.accounting.balanced());
    }

    #[test]
    fn stray_submission_is_rejected_and_accounted() {
        let eng = engine();
        let resp = eng.handle(
            &Request::SubmitAnswer {
                worker: "W1".into(),
                task: TaskId(0),
                answer: Answer(0),
            },
            0,
        );
        assert!(
            matches!(
                resp,
                Response::Submit {
                    result: "rejected",
                    ..
                }
            ),
            "{resp:?}"
        );
        match eng.handle(&Request::Status, 0) {
            Response::Status {
                balanced,
                accounting,
                ..
            } => {
                assert!(balanced);
                assert_eq!(accounting.answers_rejected, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn finalize_mid_campaign_still_balances() {
        let eng = engine();
        // One real poll so a session opens, then drain immediately.
        let mut polled = false;
        for i in 1..=5 {
            if let Response::Task(task) = eng.handle(
                &Request::RequestTask {
                    worker: format!("W{i}"),
                },
                0,
            ) {
                let _ = eng.handle(
                    &Request::SubmitAnswer {
                        worker: format!("W{i}"),
                        task,
                        answer: Answer(0),
                    },
                    0,
                );
                polled = true;
                break;
            }
        }
        assert!(polled, "no worker could be assigned");
        let result = eng.finalize();
        assert!(result.accounting.balanced());
        assert!(!result.completed);
    }

    /// Journaling must not perturb the campaign: a journal-attached
    /// engine produces the identical op stream the journal records, and
    /// a journal-free engine at the same seed yields identical labels.
    #[test]
    fn journaled_engine_records_every_mutation_and_labels_match() {
        let path =
            std::env::temp_dir().join(format!("icrowd_engine_journal_{}.bin", std::process::id()));
        let eng = engine();
        eng.start_journal(&path, 1, 4).unwrap();

        let plain = engine();
        for i in 1..=5u32 {
            let w = format!("W{i}");
            let r1 = eng.handle(&Request::RequestTask { worker: w.clone() }, 0);
            let r2 = plain.handle(&Request::RequestTask { worker: w.clone() }, 0);
            assert_eq!(r1, r2, "journaling changed serving behavior");
            if let Response::Task(task) = r1 {
                let a1 = eng.handle(
                    &Request::SubmitAnswer {
                        worker: w.clone(),
                        task,
                        answer: Answer(0),
                    },
                    0,
                );
                let a2 = plain.handle(
                    &Request::SubmitAnswer {
                        worker: w,
                        task,
                        answer: Answer(0),
                    },
                    0,
                );
                assert_eq!(a1, a2);
            }
        }
        let (acct, answers, end, epoch) = eng.checkpoint();
        let r = eng.finalize();
        assert!(r.accounting.balanced());

        let readout = icrowd_platform::read_journal(&path).unwrap();
        assert_eq!(
            readout.header,
            Some(CampaignEngine::expected_header(
                "table1",
                Approach::RandomMV,
                &quick_config()
            ))
        );
        assert!(!readout.ops.is_empty(), "mutating polls were journaled");
        assert_eq!(readout.truncated_bytes, 0);

        // Replaying the journal through a fresh engine reproduces the
        // exact checkpoint the live engine reached.
        let fresh = engine();
        for op in &readout.ops {
            match op {
                JournalOp::Poll { worker, .. } => {
                    fresh.handle(
                        &Request::RequestTask {
                            worker: worker.clone(),
                        },
                        0,
                    );
                }
                JournalOp::Submit {
                    worker,
                    task,
                    answer,
                    ..
                } => {
                    fresh.handle(
                        &Request::SubmitAnswer {
                            worker: worker.clone(),
                            task: TaskId(*task),
                            answer: Answer(*answer),
                        },
                        0,
                    );
                }
                JournalOp::Pump => fresh.replay_pump(),
            }
        }
        assert_eq!(fresh.checkpoint(), (acct, answers, end, epoch));
        std::fs::remove_file(&path).ok();
    }
}
