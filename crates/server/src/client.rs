//! A minimal blocking protocol client: one line out, one line back.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde_json::Value;

use crate::protocol::Request;

/// One protocol connection. Connections are cheap and stateless;
/// the load generator opens one per poll cycle.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    buf: String,
}

impl Conn {
    /// Connects to the server.
    ///
    /// # Errors
    /// Propagates socket errors as strings.
    pub fn open<A: ToSocketAddrs>(addr: A) -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer,
            buf: String::new(),
        })
    }

    /// Connects with retries — covers the window between spawning a
    /// server process and its listener binding.
    ///
    /// # Errors
    /// The last connect error once `attempts` are exhausted.
    pub fn open_retry<A: ToSocketAddrs + Copy>(addr: A, attempts: u32) -> Result<Conn, String> {
        let mut last = "no attempts".to_owned();
        for i in 0..attempts.max(1) {
            match Conn::open(addr) {
                Ok(conn) => return Ok(conn),
                Err(e) => last = e,
            }
            std::thread::sleep(Duration::from_millis(20 * u64::from(i + 1)));
        }
        Err(last)
    }

    /// Sends one request and reads one response line.
    ///
    /// # Errors
    /// I/O failures, closed connections, and unparseable responses.
    pub fn call(&mut self, req: &Request) -> Result<Value, String> {
        self.call_traced(req, None)
    }

    /// Sends one request with an optional trace id stamped on the line
    /// (`None` / zero sends the plain encoding) and reads one response.
    ///
    /// # Errors
    /// I/O failures, closed connections, and unparseable responses.
    pub fn call_traced(&mut self, req: &Request, trace: Option<u64>) -> Result<Value, String> {
        serde_json::write_to_string(&req.to_value_traced(trace), &mut self.buf);
        self.buf.push('\n');
        self.writer
            .write_all(self.buf.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        if line.is_empty() {
            return Err("connection closed by server".to_owned());
        }
        serde_json::from_str(&line).map_err(|_| format!("unparseable response: {line}"))
    }
}

/// Opens a fresh connection, issues one request, and closes.
///
/// # Errors
/// See [`Conn::call`].
pub fn call_once<A: ToSocketAddrs>(addr: A, req: &Request) -> Result<Value, String> {
    Conn::open(addr)?.call(req)
}
