//! Table 1 — the worked-example entity-resolution microtasks with their
//! token sets.

use icrowd_sim::datasets::table1::{table1, table1_pairs};

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let ds = table1();
    println!("=== Table 1: microtasks for verifying whether two entities are matched ===");
    println!("{:<5} {:<55} Tokens", "Task", "Verifying two entities");
    for (task, (a, b)) in ds.tasks.iter().zip(table1_pairs()) {
        println!(
            "{:<5} {:<55} {{{}}}",
            task.id.to_string(),
            format!("({a}, {b})"),
            task.text
        );
    }
    icrowd_bench::telemetry::finish(telemetry);
}
