//! Table 4 — dataset statistics.

use icrowd_sim::datasets::{item_compare, yahooqa};

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    println!("=== Table 4: dataset statistics ===");
    println!("{:<20} {:>10} {:>12}", "Dataset", "YahooQA", "ItemCompare");
    let y = yahooqa(42).statistics();
    let ic = item_compare(42).statistics();
    println!("{:<20} {:>10} {:>12}", "# of microtasks", y.0, ic.0);
    println!("{:<20} {:>10} {:>12}", "# of domains", y.1, ic.1);
    println!("{:<20} {:>10} {:>12}", "# of workers", y.2, ic.2);
    icrowd_bench::telemetry::finish(telemetry);
}
