//! Figure 14 (Appendix D.3) — the effect of assignment size k on
//! ItemCompare, for all four approaches.
//!
//! The paper: iCrowd leads at every k; accuracy rises with k with
//! diminishing returns (about +5 points from k = 1 to k = 3).

use icrowd::core::ICrowdConfig;
use icrowd::AssignStrategy;
use icrowd_bench::averaged_campaign;
use icrowd_sim::campaign::{Approach, CampaignConfig};
use icrowd_sim::datasets::item_compare;

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let approaches = [
        Approach::RandomMV,
        Approach::RandomEM,
        Approach::AvgAccPV,
        Approach::ICrowd(AssignStrategy::Adapt),
    ];
    let ks = [1usize, 3, 5];

    println!("=== Figure 14: effect of assignment size k (ItemCompare) ===");
    print!("{:<12}", "approach");
    for k in ks {
        print!(" {:>10}", format!("k={k}"));
    }
    println!();
    for approach in approaches {
        print!("{:<12}", approach.name());
        for k in ks {
            let config = CampaignConfig {
                icrowd: ICrowdConfig {
                    assignment_size: k,
                    ..CampaignConfig::default().icrowd
                },
                ..Default::default()
            };
            let r = averaged_campaign(&item_compare, approach, &config);
            print!(" {:>10.3}", r.rows.last().unwrap().1);
        }
        println!();
    }
    icrowd_bench::telemetry::finish(telemetry);
}
