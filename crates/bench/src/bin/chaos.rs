//! Chaos sweep — fault-injected marketplace runs against the iCrowd
//! framework, asserting the accounting invariants that the lease and
//! rejection machinery exists to protect:
//!
//! * every task reaches consensus even with dropped answers, stalled
//!   workers, duplicate deliveries, late arrivals and a churn spike
//!   (leases reclaim dead assignments so the task re-enters the pool);
//! * the books balance: `paid + abandoned + rejected == submitted`
//!   among answers that reached the server, and total spend equals the
//!   number of paid HITs times the per-HIT reward;
//! * no task collects more than `k` votes, no HIT is paid twice;
//! * a fixed seed replays byte-identically (event-log JSON compared).
//!
//! `--smoke` runs only the reference cell (20% drop + 5% stall) plus
//! the determinism check — the CI `chaos-smoke` job's entry point.
//! Telemetry is armed by `ICROWD_TELEMETRY` like every other bin.

use icrowd::core::{ICrowdConfig, Tick, WarmupConfig};
use icrowd::platform::market::{WorkerBehavior, WorkerScript};
use icrowd::platform::{
    ChurnSpike, ExternalQuestionServer, FaultConfig, MarketConfig, MarketOutcome, Marketplace,
};
use icrowd::{AssignStrategy, ICrowd, ICrowdBuilder};
use icrowd_sim::datasets::table1;

const SEED: u64 = 20150531;
const WORKERS: usize = 24;

struct Cell {
    outcome: MarketOutcome,
    completed: bool,
    events_json: String,
    max_votes: usize,
}

fn run_cell(drop: f64, stall: f64, seed: u64) -> Cell {
    let ds = table1();
    let metric = icrowd::text::JaccardSimilarity::new(
        &ds.tasks,
        &icrowd::text::Tokenizer::keeping_stopwords(),
    );
    let mut server: ICrowd = ICrowdBuilder::new(ds.tasks.clone())
        .config(ICrowdConfig {
            similarity_threshold: 0.4,
            // Short leases so assignments held by stalled workers are
            // reclaimed well before the remaining crowd gives up.
            lease_ticks: Some(12),
            warmup: WarmupConfig {
                num_qualification: 2,
                ..Default::default()
            },
            ..Default::default()
        })
        .strategy(AssignStrategy::Adapt)
        .metric(&metric)
        .build();
    let market = Marketplace::new(
        ds.tasks.clone(),
        MarketConfig {
            // Patient workers: enough retry headroom to outlive a lease
            // on a stalled assignment.
            max_retries: 20,
            ..Default::default()
        },
    );
    let behaviors: Vec<(WorkerScript, Box<dyn WorkerBehavior>)> = ds
        .spawn_workers(seed)
        .into_iter()
        .cycle()
        .take(WORKERS)
        .enumerate()
        .map(|(i, w)| {
            (
                WorkerScript {
                    arrival: Tick(i as u64 * 2),
                    max_answers: usize::MAX,
                    ticks_per_answer: 1,
                },
                Box::new(w) as Box<dyn WorkerBehavior>,
            )
        })
        .collect();
    let faults = FaultConfig {
        seed,
        drop_rate: drop,
        dup_rate: 0.1,
        late_rate: 0.1,
        late_max_ticks: 6,
        stall_rate: stall,
        churn: vec![ChurnSpike {
            at: 60,
            fraction: 0.2,
        }],
    };
    let outcome = market.run_with_faults(&mut server, behaviors, Some(faults));
    let completed = server.is_complete();
    let k = ICrowdConfig::default().assignment_size;
    let max_votes = (0..ds.tasks.len() as u32)
        .map(|t| server.consensus().votes(icrowd::core::TaskId(t)).len())
        .max()
        .unwrap_or(0);
    assert!(
        max_votes <= k,
        "a task collected {max_votes} votes, more than k = {k}"
    );
    let events_json = outcome.events.to_json_lines();
    Cell {
        outcome,
        completed,
        events_json,
        max_votes,
    }
}

fn assert_invariants(cell: &Cell, drop: f64, stall: f64) {
    let a = cell.outcome.accounting;
    assert!(
        a.balanced(),
        "accounting out of balance at drop={drop} stall={stall}: {a:?}"
    );
    assert_eq!(
        a.answers_paid + a.answers_abandoned + a.answers_rejected,
        a.answers_submitted,
        "paid + abandoned + rejected != submitted at drop={drop} stall={stall}"
    );
    let reward = u64::from(MarketConfig::default().reward_cents);
    assert_eq!(
        cell.outcome.ledger.total_spend(),
        cell.outcome.ledger.num_payments() as u64 * reward,
        "spend != paid HITs x reward at drop={drop} stall={stall}"
    );
    assert!(
        cell.completed,
        "campaign failed to complete at drop={drop} stall={stall}"
    );
}

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (drops, stalls): (Vec<f64>, Vec<f64>) = if smoke {
        (vec![0.2], vec![0.05])
    } else {
        (vec![0.0, 0.05, 0.1, 0.2], vec![0.0, 0.02, 0.05])
    };

    println!("=== Chaos sweep: table1, {WORKERS} workers, seed {SEED} ===");
    println!(
        "{:>5} {:>6} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>6}",
        "drop", "stall", "submitted", "accepted", "rejected", "paid", "spend", "votes", "done"
    );
    for &drop in &drops {
        for &stall in &stalls {
            let cell = run_cell(drop, stall, SEED);
            assert_invariants(&cell, drop, stall);
            let a = cell.outcome.accounting;
            println!(
                "{:>5.2} {:>6.2} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>6}",
                drop,
                stall,
                a.answers_submitted,
                a.answers_accepted,
                a.answers_rejected,
                a.answers_paid,
                cell.outcome.ledger.total_spend(),
                cell.max_votes,
                if cell.completed { "yes" } else { "no" }
            );
        }
    }

    // Determinism: the reference cell replays byte-identically.
    let a = run_cell(0.2, 0.05, SEED);
    let b = run_cell(0.2, 0.05, SEED);
    assert_eq!(
        a.events_json, b.events_json,
        "event logs differ between identical chaos runs"
    );
    assert_eq!(a.outcome.accounting, b.outcome.accounting);
    assert_eq!(a.outcome.faults, b.outcome.faults);
    println!(
        "\ndeterminism: PASS ({} events byte-identical across reruns)",
        a.events_json.lines().count()
    );
    println!(
        "faults injected at reference cell: drop {} dup {} late {} stall {} churn {}",
        a.outcome.faults.drops,
        a.outcome.faults.dups,
        a.outcome.faults.lates,
        a.outcome.faults.stalls,
        a.outcome.faults.churned
    );
    println!("all invariants hold");
    icrowd_bench::telemetry::finish(telemetry);
}
