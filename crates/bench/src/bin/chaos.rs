//! Chaos sweep — fault-injected marketplace runs against the iCrowd
//! framework, asserting the accounting invariants that the lease and
//! rejection machinery exists to protect:
//!
//! * every task reaches consensus even with dropped answers, stalled
//!   workers, duplicate deliveries, late arrivals and a churn spike
//!   (leases reclaim dead assignments so the task re-enters the pool);
//! * the books balance: `paid + abandoned + rejected == submitted`
//!   among answers that reached the server, and total spend equals the
//!   number of paid HITs times the per-HIT reward;
//! * no task collects more than `k` votes, no HIT is paid twice;
//! * a fixed seed replays byte-identically (event-log JSON compared).
//!
//! `--smoke` runs only the reference cell (20% drop + 5% stall) plus
//! the determinism check — the CI `chaos-smoke` job's entry point.
//! Telemetry is armed by `ICROWD_TELEMETRY` like every other bin.
//!
//! `--crash` runs the kill-and-recover harness instead: it spawns a
//! real `icrowd serve --journal` process, SIGKILLs it at randomized
//! points mid-campaign (occasionally also tearing the journal tail),
//! restarts it with `--recover`, and asserts the finished campaign's
//! labels are byte-identical to an in-process baseline with zero
//! `serve.invariant_violation` in the telemetry export — the CI
//! `crash-smoke` job's entry point. It also measures journaling
//! overhead (fsync-every-record vs no journal) into
//! `BENCH_journal.json`.

use icrowd::core::{ICrowdConfig, Tick, WarmupConfig};
use icrowd::platform::market::{WorkerBehavior, WorkerScript};
use icrowd::platform::{
    ChurnSpike, ExternalQuestionServer, FaultConfig, MarketConfig, MarketOutcome, Marketplace,
};
use icrowd::{AssignStrategy, ICrowd, ICrowdBuilder};
use icrowd_sim::datasets::table1;

const SEED: u64 = 20150531;
const WORKERS: usize = 24;

struct Cell {
    outcome: MarketOutcome,
    completed: bool,
    events_json: String,
    max_votes: usize,
}

fn run_cell(drop: f64, stall: f64, seed: u64) -> Cell {
    let ds = table1();
    let metric = icrowd::text::JaccardSimilarity::new(
        &ds.tasks,
        &icrowd::text::Tokenizer::keeping_stopwords(),
    );
    let mut server: ICrowd = ICrowdBuilder::new(ds.tasks.clone())
        .config(ICrowdConfig {
            similarity_threshold: 0.4,
            // Short leases so assignments held by stalled workers are
            // reclaimed well before the remaining crowd gives up.
            lease_ticks: Some(12),
            warmup: WarmupConfig {
                num_qualification: 2,
                ..Default::default()
            },
            ..Default::default()
        })
        .strategy(AssignStrategy::Adapt)
        .metric(&metric)
        .build();
    let market = Marketplace::new(
        ds.tasks.clone(),
        MarketConfig {
            // Patient workers: enough retry headroom to outlive a lease
            // on a stalled assignment.
            max_retries: 20,
            ..Default::default()
        },
    );
    let behaviors: Vec<(WorkerScript, Box<dyn WorkerBehavior>)> = ds
        .spawn_workers(seed)
        .into_iter()
        .cycle()
        .take(WORKERS)
        .enumerate()
        .map(|(i, w)| {
            (
                WorkerScript {
                    arrival: Tick(i as u64 * 2),
                    max_answers: usize::MAX,
                    ticks_per_answer: 1,
                },
                Box::new(w) as Box<dyn WorkerBehavior>,
            )
        })
        .collect();
    let faults = FaultConfig {
        seed,
        drop_rate: drop,
        dup_rate: 0.1,
        late_rate: 0.1,
        late_max_ticks: 6,
        stall_rate: stall,
        churn: vec![ChurnSpike {
            at: 60,
            fraction: 0.2,
        }],
    };
    let outcome = market.run_with_faults(&mut server, behaviors, Some(faults));
    let completed = server.is_complete();
    let k = ICrowdConfig::default().assignment_size;
    let max_votes = (0..ds.tasks.len() as u32)
        .map(|t| server.consensus().votes(icrowd::core::TaskId(t)).len())
        .max()
        .unwrap_or(0);
    assert!(
        max_votes <= k,
        "a task collected {max_votes} votes, more than k = {k}"
    );
    let events_json = outcome.events.to_json_lines();
    Cell {
        outcome,
        completed,
        events_json,
        max_votes,
    }
}

fn assert_invariants(cell: &Cell, drop: f64, stall: f64) {
    let a = cell.outcome.accounting;
    assert!(
        a.balanced(),
        "accounting out of balance at drop={drop} stall={stall}: {a:?}"
    );
    assert_eq!(
        a.answers_paid + a.answers_abandoned + a.answers_rejected,
        a.answers_submitted,
        "paid + abandoned + rejected != submitted at drop={drop} stall={stall}"
    );
    let reward = u64::from(MarketConfig::default().reward_cents);
    assert_eq!(
        cell.outcome.ledger.total_spend(),
        cell.outcome.ledger.num_payments() as u64 * reward,
        "spend != paid HITs x reward at drop={drop} stall={stall}"
    );
    assert!(
        cell.completed,
        "campaign failed to complete at drop={drop} stall={stall}"
    );
}

mod crash {
    //! The kill-and-recover harness behind `chaos --crash`.

    use std::io::{BufRead, BufReader, Write};
    use std::path::{Path, PathBuf};
    use std::process::{Child, Command, Stdio};
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    use icrowd::core::ICrowdConfig;
    use icrowd_serve::{run_loadgen, serve, CampaignEngine, LoadgenConfig, ServeConfig};
    use icrowd_sim::campaign::{
        labels_lines, run_campaign, Approach, CampaignConfig, MetricChoice,
    };
    use icrowd_sim::datasets::table1;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Crash rounds before the campaign is allowed to finish.
    const KILLS: usize = 3;

    /// The campaign the child serves — must mirror the CLI flags in
    /// [`serve_args`] exactly, or the recovery header check (rightly)
    /// refuses the journal.
    fn served_config() -> CampaignConfig {
        let mut icrowd = ICrowdConfig {
            assignment_size: 3,
            similarity_threshold: 0.3,
            ..Default::default()
        };
        icrowd.warmup.num_qualification = 3;
        CampaignConfig {
            seed: 42,
            icrowd,
            metric: MetricChoice::Jaccard,
            ..Default::default()
        }
    }

    fn serve_args() -> Vec<&'static str> {
        vec![
            "serve",
            "--dataset",
            "table1",
            "--approach",
            "random-mv",
            "--seed",
            "42",
            "--k",
            "3",
            "--threshold",
            "0.3",
            "--metric",
            "jaccard",
            "--q",
            "3",
            "--addr",
            "127.0.0.1:0",
            "--fsync",
            "1",
            "--snapshot-every",
            "8",
        ]
    }

    /// The `icrowd` CLI binary, expected next to this harness binary.
    fn icrowd_bin() -> PathBuf {
        let me = std::env::current_exe().expect("current exe path");
        let dir = me.parent().expect("exe has a parent directory");
        let bin = dir.join("icrowd");
        assert!(
            bin.exists(),
            "icrowd binary not found at {} — build it first (cargo build -p icrowd-cli)",
            bin.display()
        );
        bin
    }

    /// SIGKILL-on-drop guard so a panicking harness never leaks a
    /// serving child process.
    struct Reaper(Option<Child>);

    impl Reaper {
        fn kill_now(&mut self) {
            if let Some(mut child) = self.0.take() {
                let _ = child.kill(); // SIGKILL on unix — no cleanup runs
                let _ = child.wait();
            }
        }
    }

    impl Drop for Reaper {
        fn drop(&mut self) {
            self.kill_now();
        }
    }

    /// Publishes the server address atomically (write + rename) so
    /// `--addr-file` readers never see a partial line.
    fn publish_addr(addr_file: &Path, addr: &str) {
        let staged = addr_file.with_extension("tmp");
        std::fs::write(&staged, addr).expect("write addr file");
        std::fs::rename(&staged, addr_file).expect("publish addr file");
    }

    /// Spawns a serving child and blocks until its listen banner (and,
    /// on recovery rounds, its recovery summary) arrives. Remaining
    /// stdout is drained by a background thread to keep the pipe moving.
    fn spawn_server(
        bin: &Path,
        journal: &Path,
        recover: bool,
        extra: &[(&str, &Path)],
    ) -> (Reaper, String) {
        let mut cmd = Command::new(bin);
        cmd.args(serve_args());
        cmd.arg(if recover { "--recover" } else { "--journal" })
            .arg(journal);
        for (flag, path) in extra {
            cmd.arg(flag).arg(path);
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn icrowd serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut addr = None;
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            if let Some(rest) = line.trim().strip_prefix("icrowd-serve listening on ") {
                addr = Some(rest.to_owned());
                break;
            }
            if line.trim().starts_with("recovered ") {
                println!("  child: {}", line.trim());
            }
            line.clear();
        }
        let addr = addr.expect("server exited before announcing its address");
        std::thread::spawn(move || {
            for l in reader.lines().map_while(Result::ok) {
                println!("  child: {l}");
            }
        });
        (Reaper(Some(child)), addr)
    }

    /// Measures loadgen wall-clock with and without a fsync-every-record
    /// journal, appending a JSON line to `BENCH_journal.json`.
    fn measure_overhead(baseline: &str, journal: &Path) -> std::io::Result<()> {
        let mut timings = [0f64; 2];
        for (i, journaled) in [false, true].into_iter().enumerate() {
            let engine =
                CampaignEngine::new("table1", table1(), Approach::RandomMV, served_config());
            if journaled {
                engine.start_journal(journal, 1, 8).expect("journal starts");
            }
            let handle = serve(engine, &ServeConfig::default()).expect("bind");
            let start = Instant::now();
            let report = run_loadgen(&LoadgenConfig {
                addr: handle.addr().to_string(),
                workers: 4,
                ..Default::default()
            })
            .expect("loadgen completes");
            timings[i] = start.elapsed().as_secs_f64() * 1e3;
            let result = handle.join();
            assert!(report.complete && report.balanced, "{report:?}");
            assert_eq!(
                labels_lines(&result.labels),
                baseline,
                "labels diverged (journaled: {journaled})"
            );
        }
        std::fs::remove_file(journal).ok();
        let overhead_pct = (timings[1] / timings[0].max(1e-9) - 1.0) * 100.0;
        println!(
            "journal overhead (fsync every record): plain {:.1}ms, journaled {:.1}ms ({overhead_pct:+.1}%)",
            timings[0], timings[1]
        );
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open("BENCH_journal.json")?;
        writeln!(
            f,
            "{{\"dataset\":\"table1\",\"fsync_every\":1,\"snapshot_every\":8,\"plain_ms\":{:.3},\"journal_ms\":{:.3},\"overhead_pct\":{:.2}}}",
            timings[0], timings[1], overhead_pct
        )
    }

    /// The harness: baseline → overhead → kill/recover rounds → final
    /// round to completion → label + telemetry verification.
    pub fn run() {
        let expected = run_campaign(&table1(), Approach::RandomMV, &served_config());
        let baseline = labels_lines(&expected.labels);
        println!("=== Crash harness: table1 / random-mv, seed 42 ===");
        println!(
            "baseline: {} labels, {} answers",
            expected.labels.len(),
            expected.answers
        );

        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let journal = dir.join(format!("icrowd_chaos_{pid}.journal"));
        let addr_file = dir.join(format!("icrowd_chaos_{pid}.addr"));
        let labels_out = dir.join(format!("icrowd_chaos_{pid}.labels"));
        let telemetry_out = dir.join(format!("icrowd_chaos_{pid}.telemetry"));
        for p in [&journal, &addr_file, &labels_out, &telemetry_out] {
            std::fs::remove_file(p).ok();
        }

        measure_overhead(&baseline, &journal).expect("write BENCH_journal.json");
        std::fs::remove_file(&journal).ok();

        let bin = icrowd_bin();
        let mut rng = StdRng::seed_from_u64(super::SEED);

        // One loadgen spans every server incarnation: it follows the
        // addr-file across restarts and re-submits idempotently.
        let (tx, rx) = mpsc::channel();
        let loadgen = {
            let config = LoadgenConfig {
                addr: String::new(),
                addr_file: Some(addr_file.to_string_lossy().into_owned()),
                workers: 4,
                // Pace the campaign so the kill schedule lands mid-flight
                // instead of racing a sub-second run.
                think_ms: 30,
                give_up_ms: 60_000,
                ..Default::default()
            };
            std::thread::spawn(move || {
                let _ = tx.send(run_loadgen(&config));
            })
        };

        let extra: Vec<(&str, &Path)> = vec![
            ("--labels-out", labels_out.as_path()),
            ("--telemetry", telemetry_out.as_path()),
        ];
        let mut kills = 0usize;
        let mut torn = 0usize;
        let report = loop {
            let recovering = kills > 0;
            let (mut reaper, addr) = spawn_server(&bin, &journal, recovering, &extra);
            publish_addr(&addr_file, &addr);

            if kills < KILLS {
                // Wait for the journal to accumulate real state, then
                // kill at a randomized instant.
                let floor = 300 + kills as u64 * 200;
                let grow_deadline = Instant::now() + Duration::from_secs(15);
                while std::fs::metadata(&journal).map_or(0, |m| m.len()) < floor
                    && Instant::now() < grow_deadline
                {
                    std::thread::sleep(Duration::from_millis(5));
                }
                std::thread::sleep(Duration::from_millis(rng.gen_range(10..120)));
                if let Ok(result) = rx.try_recv() {
                    // The campaign outran the kill schedule; let the
                    // child drain the SHUTDOWN it already received.
                    let child = reaper.0.take().expect("child running");
                    wait_with_deadline(child, Duration::from_secs(30));
                    break result;
                }
                reaper.kill_now();
                kills += 1;
                println!(
                    "kill #{kills}: SIGKILL at journal size {}",
                    std::fs::metadata(&journal).map_or(0, |m| m.len())
                );
                // Also tear the tail, as a crash mid-write would —
                // cycling truncate / garbage / clean so every run
                // exercises all three recovery paths.
                match kills % 3 {
                    0 => {
                        let len = std::fs::metadata(&journal).map_or(0, |m| m.len());
                        let cut = rng.gen_range(1u64..=64).min(len.saturating_sub(200));
                        if cut > 0 {
                            let f = std::fs::OpenOptions::new()
                                .write(true)
                                .open(&journal)
                                .expect("open journal");
                            f.set_len(len - cut).expect("truncate journal");
                            torn += 1;
                            println!("  torn: truncated {cut} bytes");
                        }
                    }
                    1 => {
                        let mut f = std::fs::OpenOptions::new()
                            .append(true)
                            .open(&journal)
                            .expect("open journal");
                        let garbage: Vec<u8> =
                            (0..rng.gen_range(1..40)).map(|_| rng.gen()).collect();
                        f.write_all(&garbage).expect("append garbage");
                        torn += 1;
                        println!("  torn: appended {} garbage bytes", garbage.len());
                    }
                    _ => {}
                }
            } else {
                // Final round: run to completion (the loadgen sends
                // SHUTDOWN, the child drains and writes labels-out).
                let result = rx
                    .recv_timeout(Duration::from_secs(120))
                    .expect("loadgen did not finish after the final recovery");
                let child = reaper.0.take().expect("child running");
                let out = wait_with_deadline(child, Duration::from_secs(30));
                assert!(out, "served child did not exit after SHUTDOWN");
                break result;
            }
        };
        loadgen.join().expect("loadgen thread");

        let report = report.expect("loadgen failed");
        assert!(report.complete, "campaign incomplete: {report:?}");
        assert!(report.balanced, "conservation law violated: {report:?}");
        let final_labels = std::fs::read_to_string(&labels_out).expect("child wrote --labels-out");
        assert_eq!(
            report.labels.as_deref(),
            Some(baseline.as_str()),
            "loadgen-fetched labels diverged from baseline"
        );
        assert_eq!(final_labels, baseline, "label file diverged from baseline");
        println!(
            "labels match baseline ({} labels, {kills} kills, {torn} torn tails)",
            expected.labels.len()
        );

        let telemetry = std::fs::read_to_string(&telemetry_out).unwrap_or_default();
        let violations = telemetry
            .lines()
            .filter(|l| l.contains("serve.invariant_violation"))
            .count();
        assert_eq!(
            violations, 0,
            "telemetry recorded serve.invariant_violation"
        );
        println!("invariant violations: {violations}");
        println!("retries ridden through by clients: {}", report.retries);

        for p in [&journal, &addr_file, &labels_out, &telemetry_out] {
            std::fs::remove_file(p).ok();
        }
    }

    /// Waits for the child to exit, killing it if the deadline passes.
    fn wait_with_deadline(mut child: Child, deadline: Duration) -> bool {
        let until = Instant::now() + deadline;
        while Instant::now() < until {
            match child.try_wait() {
                Ok(Some(_)) => return true,
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => return false,
            }
        }
        let _ = child.kill();
        let _ = child.wait();
        false
    }
}

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    if std::env::args().any(|a| a == "--crash") {
        crash::run();
        icrowd_bench::telemetry::finish(telemetry);
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (drops, stalls): (Vec<f64>, Vec<f64>) = if smoke {
        (vec![0.2], vec![0.05])
    } else {
        (vec![0.0, 0.05, 0.1, 0.2], vec![0.0, 0.02, 0.05])
    };

    println!("=== Chaos sweep: table1, {WORKERS} workers, seed {SEED} ===");
    println!(
        "{:>5} {:>6} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>6}",
        "drop", "stall", "submitted", "accepted", "rejected", "paid", "spend", "votes", "done"
    );
    for &drop in &drops {
        for &stall in &stalls {
            let cell = run_cell(drop, stall, SEED);
            assert_invariants(&cell, drop, stall);
            let a = cell.outcome.accounting;
            println!(
                "{:>5.2} {:>6.2} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6} {:>6}",
                drop,
                stall,
                a.answers_submitted,
                a.answers_accepted,
                a.answers_rejected,
                a.answers_paid,
                cell.outcome.ledger.total_spend(),
                cell.max_votes,
                if cell.completed { "yes" } else { "no" }
            );
        }
    }

    // Determinism: the reference cell replays byte-identically.
    let a = run_cell(0.2, 0.05, SEED);
    let b = run_cell(0.2, 0.05, SEED);
    assert_eq!(
        a.events_json, b.events_json,
        "event logs differ between identical chaos runs"
    );
    assert_eq!(a.outcome.accounting, b.outcome.accounting);
    assert_eq!(a.outcome.faults, b.outcome.faults);
    println!(
        "\ndeterminism: PASS ({} events byte-identical across reruns)",
        a.events_json.lines().count()
    );
    println!(
        "faults injected at reference cell: drop {} dup {} late {} stall {} churn {}",
        a.outcome.faults.drops,
        a.outcome.faults.dups,
        a.outcome.faults.lates,
        a.outcome.faults.stalls,
        a.outcome.faults.churned
    );
    println!("all invariants hold");
    icrowd_bench::telemetry::finish(telemetry);
}
