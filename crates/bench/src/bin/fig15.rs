//! Figure 15 (Appendix D.5) — distribution of microtask completions over
//! the top workers on ItemCompare.
//!
//! The paper: the top-15 of 53 workers completed 84% of the 1080
//! assignments, the most prolific over 13%. We run iCrowd under the
//! heavy-tailed worker dynamics and report the same distribution.

use icrowd::AssignStrategy;
use icrowd_sim::campaign::{run_campaign, Approach, CampaignConfig, WorkerDynamics};
use icrowd_sim::datasets::item_compare;
use icrowd_sim::metrics::top_workers_by_assignments;

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let ds = item_compare(42);
    let config = CampaignConfig {
        dynamics: WorkerDynamics::HeavyTail,
        ..Default::default()
    };
    let r = run_campaign(&ds, Approach::ICrowd(AssignStrategy::Adapt), &config);
    let sorted = top_workers_by_assignments(r.worker_assignments.clone());
    let total: u32 = sorted.iter().map(|&(_, c)| c).sum();

    println!("=== Figure 15: assignment distribution over top-15 workers (ItemCompare) ===");
    println!("total regular assignments: {total}");
    println!(
        "{:<6} {:<18} {:>12} {:>10}",
        "rank", "worker", "assignments", "share"
    );
    let mut top15 = 0u32;
    for (rank, (name, count)) in sorted.iter().take(15).enumerate() {
        top15 += count;
        println!(
            "{:<6} {:<18} {:>12} {:>9.1}%",
            rank + 1,
            name,
            count,
            100.0 * f64::from(*count) / f64::from(total.max(1))
        );
    }
    println!(
        "top-15 workers completed {:.0}% of all assignments",
        100.0 * f64::from(top15) / f64::from(total.max(1))
    );
    icrowd_bench::telemetry::finish(telemetry);
}
