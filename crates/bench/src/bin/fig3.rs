//! Figure 3 — the similarity graph of the Table-1 microtasks
//! (Jaccard over token sets, threshold 0.5; the t2–t7 edge carries the
//! paper's 4/7 weight).

use icrowd_graph::GraphBuilder;
use icrowd_sim::datasets::table1::table1;
use icrowd_text::{JaccardSimilarity, Tokenizer};

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let ds = table1();
    let metric = JaccardSimilarity::new(&ds.tasks, &Tokenizer::keeping_stopwords());
    let graph = GraphBuilder::new(0.5).build(&ds.tasks, &metric);

    println!("=== Figure 3: similarity graph of example microtasks (Jaccard >= 0.5) ===");
    println!("{} nodes, {} edges", graph.num_tasks(), graph.num_edges());
    let mut edges: Vec<_> = graph.edges().collect();
    edges.sort_by_key(|a| (a.0, a.1));
    for (a, b, s) in edges {
        // Report weights as the paper does (fractions like 4/7 where they
        // reduce nicely).
        println!("  {a} -- {b}   s = {s:.4}");
    }
    let isolated: Vec<_> = graph.isolated_tasks().map(|t| t.to_string()).collect();
    if !isolated.is_empty() {
        println!("isolated at threshold 0.5: {}", isolated.join(", "));
    }
    icrowd_bench::telemetry::finish(telemetry);
}
