//! Figure 12 (Appendix D.1) — similarity measures and thresholds on
//! ItemCompare.
//!
//! Sweeps Jaccard, Cos(tf-idf) and Cos(topic) over similarity thresholds,
//! reporting iCrowd's overall accuracy. The paper found the metrics
//! broadly comparable at low thresholds, an intermediate threshold best,
//! and Cos(topic) the strongest overall (its default: threshold 0.8).

use icrowd::core::ICrowdConfig;
use icrowd::AssignStrategy;
use icrowd_bench::averaged_campaign;
use icrowd_sim::campaign::{Approach, CampaignConfig, MetricChoice};
use icrowd_sim::datasets::item_compare;

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let metrics = [
        MetricChoice::Jaccard,
        MetricChoice::CosTfIdf,
        MetricChoice::CosTopic { num_topics: 8 },
    ];
    let thresholds = [0.2, 0.4, 0.6, 0.8, 0.95];

    println!("=== Figure 12: similarity measures and thresholds (ItemCompare) ===");
    print!("{:<14}", "metric");
    for th in thresholds {
        print!(" {th:>10.2}");
    }
    println!();
    for metric in metrics {
        print!("{:<14}", metric.name());
        for th in thresholds {
            let config = CampaignConfig {
                metric,
                icrowd: ICrowdConfig {
                    similarity_threshold: th,
                    ..Default::default()
                },
                ..Default::default()
            };
            let r = averaged_campaign(
                &item_compare,
                Approach::ICrowd(AssignStrategy::Adapt),
                &config,
            );
            print!(" {:>10.3}", r.rows.last().unwrap().1);
        }
        println!();
    }
    icrowd_bench::telemetry::finish(telemetry);
}
