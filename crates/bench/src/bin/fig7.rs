//! Figure 7 — effect of qualification: RandomQF vs InfQF.
//!
//! Both strategies run the full iCrowd pipeline; only the
//! qualification-selection differs. The paper reports InfQF ahead in
//! most domains and ~8% overall on YahooQA, winning everywhere on
//! ItemCompare.

use icrowd::AssignStrategy;
use icrowd_bench::{averaged_campaign, print_accuracy_table};
use icrowd_sim::campaign::{Approach, CampaignConfig, QualStrategy};
use icrowd_sim::datasets::{item_compare, yahooqa, Dataset};

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let datasets: [(&str, &dyn Fn(u64) -> Dataset); 2] =
        [("YahooQA", &yahooqa), ("ItemCompare", &item_compare)];
    for (name, make) in datasets {
        let results: Vec<_> = [QualStrategy::Random, QualStrategy::Influence]
            .into_iter()
            .map(|qual| {
                let config = CampaignConfig {
                    qual,
                    ..Default::default()
                };
                let mut r =
                    averaged_campaign(make, Approach::ICrowd(AssignStrategy::Adapt), &config);
                r.approach = qual.name().to_owned();
                r
            })
            .collect();
        print_accuracy_table(
            &format!("Figure 7: effect of qualification — {name}"),
            &results,
        );
    }
    icrowd_bench::telemetry::finish(telemetry);
}
