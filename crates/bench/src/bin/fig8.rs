//! Figure 8 — effect of adaptive assignment: QF-Only vs BestEffort vs
//! Adapt.
//!
//! The paper reports QF-Only worst (estimates frozen after warm-up),
//! BestEffort in between (adaptive estimates, myopic assignment) and
//! Adapt best.

use icrowd::AssignStrategy;
use icrowd_bench::{averaged_campaign, print_accuracy_table};
use icrowd_sim::campaign::{Approach, CampaignConfig};
use icrowd_sim::datasets::{item_compare, yahooqa, Dataset};

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let config = CampaignConfig::default();
    let datasets: [(&str, &dyn Fn(u64) -> Dataset); 2] =
        [("YahooQA", &yahooqa), ("ItemCompare", &item_compare)];
    for (name, make) in datasets {
        let results: Vec<_> = [
            AssignStrategy::QfOnly,
            AssignStrategy::BestEffort,
            AssignStrategy::Adapt,
        ]
        .into_iter()
        .map(|s| {
            let mut r = averaged_campaign(make, Approach::ICrowd(s), &config);
            r.approach = s.name().to_owned();
            r
        })
        .collect();
        print_accuracy_table(
            &format!("Figure 8: effect of adaptive assignment — {name}"),
            &results,
        );
    }
    icrowd_bench::telemetry::finish(telemetry);
}
