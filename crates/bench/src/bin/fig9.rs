//! Figure 9 — comparison with existing approaches.
//!
//! RandomMV, RandomEM, AvgAccPV and iCrowd on both datasets, accuracy
//! per domain and overall. The paper reports iCrowd ~10% ahead overall
//! and 20%+ in some domains (e.g. Home Schooling), with the Auto domain
//! showing only a small win because no good Auto worker exists.

use icrowd::AssignStrategy;
use icrowd_bench::{averaged_campaign, print_accuracy_table};
use icrowd_sim::campaign::{Approach, CampaignConfig};
use icrowd_sim::datasets::{item_compare, yahooqa};

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let config = CampaignConfig::default();
    let approaches = [
        Approach::RandomMV,
        Approach::RandomEM,
        Approach::AvgAccPV,
        Approach::ICrowd(AssignStrategy::Adapt),
    ];

    let datasets: [(&str, &dyn Fn(u64) -> icrowd_sim::datasets::Dataset); 2] =
        [("YahooQA", &yahooqa), ("ItemCompare", &item_compare)];
    for (name, make) in datasets {
        let results: Vec<_> = approaches
            .iter()
            .map(|&a| averaged_campaign(make, a, &config))
            .collect();
        print_accuracy_table(
            &format!("Figure 9: comparison with existing approaches — {name}"),
            &results,
        );
    }
    icrowd_bench::telemetry::finish(telemetry);
}
