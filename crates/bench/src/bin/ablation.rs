//! Design-choice ablations (beyond the paper's own figures):
//!
//! 1. **Estimation mode** — literal Algorithm 1 (`Raw`), baseline-centered
//!    propagation (`Centered`) and mass-normalized propagation
//!    (`Normalized`, our default): how each ranks workers and what the
//!    campaign accuracy ends up being. Motivates the deviation documented
//!    in DESIGN.md §1.
//! 2. **Qualification count Q** — the warm-up budget's accuracy/cost
//!    trade-off.
//! 3. **Worker dynamics** — uniform vs heavy-tail vs session crowds,
//!    showing the adaptive assigner matters most when expertise is
//!    temporally scarce.

use icrowd::core::{ICrowdConfig, WarmupConfig};
use icrowd::estimate::EstimationMode;
use icrowd::AssignStrategy;
use icrowd_bench::averaged_campaign;
use icrowd_sim::campaign::{Approach, CampaignConfig, WorkerDynamics};
use icrowd_sim::datasets::yahooqa;

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    println!("=== Ablation 1: estimation mode (YahooQA, iCrowd Adapt) ===");
    for mode in [
        EstimationMode::Raw,
        EstimationMode::Centered,
        EstimationMode::Normalized,
    ] {
        let config = CampaignConfig {
            estimation_mode: mode,
            ..Default::default()
        };
        let r = averaged_campaign(&yahooqa, Approach::ICrowd(AssignStrategy::Adapt), &config);
        println!("{mode:<12?} overall = {:.3}", r.rows.last().unwrap().1);
    }

    println!("\n=== Ablation 2: qualification budget Q (YahooQA) ===");
    for q in [4usize, 10, 16, 24] {
        let config = CampaignConfig {
            icrowd: ICrowdConfig {
                warmup: WarmupConfig {
                    num_qualification: q,
                    ..Default::default()
                },
                ..CampaignConfig::default().icrowd
            },
            ..Default::default()
        };
        let r = averaged_campaign(&yahooqa, Approach::ICrowd(AssignStrategy::Adapt), &config);
        println!("Q = {q:<3} overall = {:.3}", r.rows.last().unwrap().1);
    }

    println!("\n=== Ablation 2b: weighted vs plain aggregation (YahooQA, iCrowd) ===");
    for weighted in [false, true] {
        let config = CampaignConfig {
            weighted_aggregation: weighted,
            ..Default::default()
        };
        let r = averaged_campaign(&yahooqa, Approach::ICrowd(AssignStrategy::Adapt), &config);
        println!(
            "{:<22} overall = {:.3}",
            if weighted {
                "estimate-weighted MV"
            } else {
                "plain consensus MV"
            },
            r.rows.last().unwrap().1
        );
    }

    println!("\n=== Ablation 3: worker dynamics (YahooQA, iCrowd vs RandomMV) ===");
    for (name, dynamics) in [
        (
            "uniform",
            WorkerDynamics::Uniform {
                max_answers: usize::MAX,
            },
        ),
        ("heavy-tail", WorkerDynamics::HeavyTail),
        ("sessions(6)", WorkerDynamics::Sessions { concurrency: 6 }),
        ("sessions(3)", WorkerDynamics::Sessions { concurrency: 3 }),
    ] {
        let config = CampaignConfig {
            dynamics,
            ..Default::default()
        };
        let ic = averaged_campaign(&yahooqa, Approach::ICrowd(AssignStrategy::Adapt), &config);
        let mv = averaged_campaign(&yahooqa, Approach::RandomMV, &config);
        println!(
            "{name:<12} iCrowd = {:.3}   RandomMV = {:.3}   gap = {:+.3}",
            ic.rows.last().unwrap().1,
            mv.rows.last().unwrap().1,
            ic.rows.last().unwrap().1 - mv.rows.last().unwrap().1
        );
    }
    icrowd_bench::telemetry::finish(telemetry);
}
