//! Figure 6 — diverse workers' accuracies across domains.
//!
//! The paper computed each worker's empirical per-domain accuracy from
//! her collected AMT answers (workers with 20+ completed microtasks).
//! We reproduce the measurement by sampling each simulated worker on
//! ~15 tasks per domain — the same per-worker answer volumes — and
//! reporting the empirical ratios next to the true profile values.

use icrowd_platform::market::WorkerBehavior;
use icrowd_sim::datasets::{item_compare, yahooqa, Dataset};

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let datasets: [(&str, &dyn Fn(u64) -> Dataset); 2] = [
        ("(a) YahooQA", &yahooqa),
        ("(b) ItemCompare", &item_compare),
    ];
    for (title, make) in datasets {
        let ds = make(42);
        println!("\n=== Figure 6 {title}: workers' accuracies across domains ===");
        print!("{:<18}", "worker");
        for (_, name) in ds.domains.iter() {
            print!(" {name:>14}");
        }
        println!(" {:>8}", "avg");

        let workers = ds.spawn_workers(42);
        for (profile, mut worker) in ds.workers.iter().zip(workers).take(12) {
            let mut counts = vec![(0u32, 0u32); ds.domains.len()];
            for task in ds.tasks.iter() {
                let d = task.domain.expect("labelled").index();
                if counts[d].1 >= 15 {
                    continue;
                }
                let ans = worker.answer(task);
                counts[d].1 += 1;
                if Some(ans) == task.ground_truth {
                    counts[d].0 += 1;
                }
            }
            print!("{:<18}", profile.name);
            let mut sum = 0.0;
            for &(c, t) in &counts {
                let acc = if t == 0 {
                    0.0
                } else {
                    f64::from(c) / f64::from(t)
                };
                sum += acc;
                print!(" {acc:>14.3}");
            }
            println!(" {:>8.3}", sum / counts.len() as f64);
        }

        println!("--- true profile accuracies of the anchor workers ---");
        for profile in ds.workers.iter().take(3) {
            print!("{:<18}", profile.name);
            for &a in &profile.domain_accuracy {
                print!(" {a:>14.3}");
            }
            println!(" {:>8.3}", profile.average_accuracy());
        }
    }
    icrowd_bench::telemetry::finish(telemetry);
}
