//! Extension experiment (beyond the paper): confidence-based early
//! stopping.
//!
//! The paper's related work (CrowdScreen, optimal filtering) asks how
//! many assignments a task actually needs. iCrowd's accuracy estimates
//! make a natural stopping rule: complete a task once the naive-Bayes
//! posterior of its leading answer reaches a confidence `tau`, instead
//! of always waiting for the `(k+1)/2` majority. This sweep reports the
//! accuracy/cost trade-off on YahooQA at k = 5.

use icrowd::core::ICrowdConfig;
use icrowd::AssignStrategy;
use icrowd_bench::SEEDS;
use icrowd_sim::campaign::{run_campaign, Approach, CampaignConfig};
use icrowd_sim::datasets::yahooqa;

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    println!("=== Extension: confidence-based early stopping (YahooQA, k = 5) ===");
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "tau", "accuracy", "crowd answers", "spend (c)"
    );
    for tau in [None, Some(0.85), Some(0.92), Some(0.97)] {
        let mut acc = 0.0;
        let mut answers = 0usize;
        let mut spend = 0u64;
        for &seed in &SEEDS {
            let ds = yahooqa(seed);
            let config = CampaignConfig {
                seed,
                icrowd: ICrowdConfig {
                    assignment_size: 5,
                    early_stop_confidence: tau,
                    ..CampaignConfig::default().icrowd
                },
                ..Default::default()
            };
            let r = run_campaign(&ds, Approach::ICrowd(AssignStrategy::Adapt), &config);
            acc += r.overall;
            answers += r.answers;
            spend += r.spend_cents;
        }
        let n = SEEDS.len() as f64;
        println!(
            "{:>10} {:>12.3} {:>14.0} {:>12.0}",
            tau.map_or("off".to_owned(), |t| format!("{t:.2}")),
            acc / n,
            answers as f64 / n,
            spend as f64 / n
        );
    }
    icrowd_bench::telemetry::finish(telemetry);
}
