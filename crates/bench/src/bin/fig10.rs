//! Figure 10 — scalability of task assignment with simulation.
//!
//! The paper: "Initially the entire microtask set was empty. We inserted
//! 0.2 million microtasks at each time and ran iCrowd to evaluate the
//! efficiency", with the maximal neighbor count per microtask in
//! {20, 40, 60} (neighbors drawn at random). We measure, per task-set
//! size and neighbor cap:
//!
//! * offline index construction (graph + linearity index + qualification
//!   selection), and
//! * online assignment: total elapsed time of 1,000 `request_task`
//!   calls from a 20-worker pool, with the candidate pool capped — the
//!   paper's "effective index structures".
//!
//! The paper reports sub-linear growth of assignment time in `|T|`; the
//! capped candidate pool reproduces that (per-request work is bounded by
//! evidence neighborhoods, not `|T|`).
//!
//! Sizes default to the paper's 0.2M..1.0M; set `FIG10_SCALE=small` for
//! a quick 20k..100k pass. `FIG10_THREADS` sets the offline-build worker
//! thread count (`0`/unset = all hardware threads; the built index is
//! bit-identical regardless). `FIG10_JSON=path` additionally appends one
//! JSON object per configuration to `path` for machine consumption.
//! `FIG10_TELEMETRY=path` arms the `icrowd-obs` sink per configuration:
//! each child writes its span/counter telemetry (index.build, ppr.solve,
//! assign.loop, estimator.refresh, ...) to `path.<n>.<cap>.jsonl`; in
//! direct child mode (`fig10 <n> <cap>`) the value is used verbatim.

use std::io::Write as _;
use std::time::Instant;

use icrowd::core::{Answer, ICrowdConfig, PprConfig, Tick, WarmupConfig};
use icrowd::platform::ExternalQuestionServer;
use icrowd::{AssignStrategy, ICrowdBuilder};
use icrowd_graph::GraphBuilder;
use icrowd_sim::datasets::{scalability_edges, scalability_tasks};

fn main() {
    // Child mode: run one (n, cap) configuration and print its row. The
    // parent spawns a child per configuration so allocator high-water
    // from one million-task graph never accumulates into the next.
    let args: Vec<String> = std::env::args().skip(1).collect();
    match icrowd_bench::parse_child_args(&args) {
        Ok(Some((n, cap))) => {
            run_one(n, cap);
            return;
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }

    let small = std::env::var("FIG10_SCALE").is_ok_and(|v| v == "small");
    let sizes: Vec<usize> = if small {
        vec![20_000, 40_000, 60_000, 80_000, 100_000]
    } else {
        vec![200_000, 400_000, 600_000, 800_000, 1_000_000]
    };
    let caps = [20usize, 40, 60];

    // Fresh JSON output per run; children append their own rows.
    if let Ok(path) = std::env::var("FIG10_JSON") {
        let _ = std::fs::remove_file(path);
    }

    println!("=== Figure 10: evaluating scalability with simulation ===");
    println!("offline build threads: {}", build_threads_label());
    println!(
        "{:>12} {:>6} {:>18} {:>22} {:>16}",
        "#microtasks", "cap", "index build (s)", "1000 assignments (ms)", "per request (us)"
    );
    let me = std::env::current_exe().expect("own path");
    let telemetry_base = std::env::var("FIG10_TELEMETRY").ok();
    for &cap in &caps {
        for &n in &sizes {
            let mut child = std::process::Command::new(&me);
            child.arg(n.to_string()).arg(cap.to_string());
            // One telemetry file per configuration: the children run
            // sequentially but must not clobber each other's export.
            if let Some(base) = &telemetry_base {
                child.env("FIG10_TELEMETRY", format!("{base}.{n}.{cap}.jsonl"));
            }
            let status = child.status().expect("spawn child");
            if !status.success() {
                println!("{n:>12} {cap:>6}   (child failed: {status})");
            }
        }
    }
}

/// The `FIG10_THREADS` knob: worker threads for graph + index build.
/// `0` or unset defers to hardware parallelism.
fn build_threads() -> usize {
    std::env::var("FIG10_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn build_threads_label() -> String {
    match build_threads() {
        0 => format!("auto ({} hardware)", icrowd_graph::resolve_threads(0)),
        n => n.to_string(),
    }
}

fn rss_mb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map_or(0, |kb| kb / 1024)
}

fn run_one(n: usize, cap: usize) {
    let telemetry = std::env::var("FIG10_TELEMETRY").ok();
    // Telemetry is always armed: the per-request latency distribution
    // (p50/p99 of the assign.loop span) comes from the obs histograms,
    // and the assign-gate CI job asserts the p99 against a baseline.
    icrowd_obs::reset();
    icrowd_obs::enable();
    let debug_mem = std::env::var("FIG10_MEM").is_ok();
    {
        {
            let tasks = scalability_tasks(n);
            let edges = scalability_edges(n, cap, 42);
            if debug_mem {
                eprintln!("after edges: {} MB", rss_mb());
            }
            let graph = GraphBuilder::new(0.5)
                .with_max_neighbors(cap)
                .build_from_edges(n, edges);
            if debug_mem {
                eprintln!("after graph: {} MB", rss_mb());
            }

            let threads = build_threads();
            let config = ICrowdConfig {
                warmup: WarmupConfig {
                    num_qualification: 10,
                    ..Default::default()
                },
                ppr: PprConfig {
                    index_epsilon: 1e-3,
                    max_iterations: 20,
                    tolerance: 1e-6,
                    threads,
                },
                ..Default::default()
            };
            let t0 = Instant::now();
            let mut server = ICrowdBuilder::new(tasks)
                .config(config)
                .strategy(AssignStrategy::Adapt)
                .graph(graph)
                .candidate_limit(2_048)
                .build();
            let build_s = t0.elapsed().as_secs_f64();
            if debug_mem {
                eprintln!("after server build: {} MB", rss_mb());
            }

            // 20 workers churn; measure request_task time only.
            let mut assign_time = 0.0f64;
            let mut requests = 0usize;
            let mut tick = 0u64;
            'outer: loop {
                for w in 0..20 {
                    let name = format!("W{w}");
                    let t1 = Instant::now();
                    let task = server.request_task(&name, Tick(tick));
                    assign_time += t1.elapsed().as_secs_f64();
                    requests += 1;
                    if let Some(t) = task {
                        server.submit_answer(&name, t, Answer::YES, Tick(tick));
                    }
                    tick += 1;
                    if requests >= 1_000 {
                        break 'outer;
                    }
                }
            }
            // Per-request latency distribution from the assign.loop span
            // (nanosecond histogram recorded inside request_task).
            let (p50_us, p99_us) = icrowd_obs::span_histogram("assign.loop")
                .filter(|h| h.count() > 0)
                .map_or((0.0, 0.0), |h| {
                    (
                        h.percentile(0.50) as f64 / 1e3,
                        h.percentile(0.99) as f64 / 1e3,
                    )
                });
            println!(
                "{:>12} {:>6} {:>18.2} {:>22.1} {:>16.1} (p50 {:.1} us, p99 {:.1} us)",
                n,
                cap,
                build_s,
                assign_time * 1e3,
                assign_time * 1e6 / requests as f64,
                p50_us,
                p99_us
            );
            // Latency gate: FIG10_MAX_P99_US fails the child when the
            // assignment p99 regressed past the budget.
            if let Some(max_p99) = std::env::var("FIG10_MAX_P99_US")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
            {
                if p99_us > max_p99 {
                    eprintln!(
                        "assign-gate: p99 {p99_us:.1} us exceeds budget {max_p99:.1} us \
                         (n={n}, cap={cap})"
                    );
                    std::process::exit(1);
                }
            }
            if let Ok(path) = std::env::var("FIG10_JSON") {
                let row = serde_json::json!({
                    "tasks": n,
                    "cap": cap,
                    "threads": threads,
                    "effective_threads": icrowd_graph::resolve_threads(threads),
                    "index_build_s": build_s,
                    "assign_1000_ms": assign_time * 1e3,
                    "per_request_us": assign_time * 1e6 / requests as f64,
                    "request_p50_us": p50_us,
                    "request_p99_us": p99_us,
                });
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    let _ = writeln!(f, "{}", serde_json::to_string(&row).expect("row json"));
                }
            }
            if let Some(path) = telemetry {
                icrowd_obs::gauge_set("fig10.tasks", n as f64);
                icrowd_obs::gauge_set("fig10.cap", cap as f64);
                icrowd_obs::disable();
                match icrowd_obs::write_jsonl(&path) {
                    Ok(()) => eprintln!("telemetry written to {path}"),
                    Err(e) => eprintln!("cannot write telemetry to {path}: {e}"),
                }
            }
        }
    }
}
