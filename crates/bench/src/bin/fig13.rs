//! Figure 13 (Appendix D.2) — the effect of alpha on ItemCompare.
//!
//! Alpha balances Equation (2): small alpha favours graph smoothness
//! (everything connected converges to the same estimate), large alpha
//! pins estimates to the raw observations (no inference). The paper
//! found both extremes inferior and settled on alpha = 1.

use icrowd::core::ICrowdConfig;
use icrowd::estimate::EstimationMode;
use icrowd::AssignStrategy;
use icrowd_bench::averaged_campaign;
use icrowd_sim::campaign::{Approach, CampaignConfig};
use icrowd_sim::datasets::item_compare;

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    println!("=== Figure 13: effect of alpha (ItemCompare) ===");
    println!(
        "{:>8} {:>16} {:>16}",
        "alpha", "Centered (paper)", "Normalized (ours)"
    );
    // The literal Equation-(2)/(4) formulation (Centered propagation)
    // responds to alpha as the paper describes; our default Normalized
    // mode divides the propagated mass out, so alpha mostly cancels —
    // both columns are reported.
    for alpha in [0.01, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0] {
        let mut row = format!("{alpha:>8.2}");
        for mode in [EstimationMode::Centered, EstimationMode::Normalized] {
            let config = CampaignConfig {
                icrowd: ICrowdConfig {
                    alpha,
                    ..CampaignConfig::default().icrowd
                },
                estimation_mode: mode,
                ..Default::default()
            };
            let r = averaged_campaign(
                &item_compare,
                Approach::ICrowd(AssignStrategy::Adapt),
                &config,
            );
            row.push_str(&format!(" {:>16.3}", r.rows.last().unwrap().1));
        }
        println!("{row}");
    }
    icrowd_bench::telemetry::finish(telemetry);
}
