//! Table 5 (Appendix D.4) — approximation error of the greedy
//! assignment algorithm vs the enumeration-based optimum on ItemCompare.
//!
//! The paper varies the number of active workers (3–7; beyond that the
//! exact solver did not finish in 30 minutes) and reports
//! `(OPT − APP) / OPT`, finding errors under 2%. Our branch-and-bound
//! handles a couple more workers, reported as a bonus column block.

use icrowd::core::{Answer, ICrowdConfig, TaskId};
use icrowd_assign::greedy::scheme_objective;
use icrowd_assign::{greedy_assign, optimal_assign, top_worker_set, TopWorkerSet};
use icrowd_core::worker::WorkerId;
use icrowd_estimate::{AccuracyEstimator, EstimationMode};
use icrowd_sim::campaign::{build_graph, select_gold, CampaignConfig};
use icrowd_sim::datasets::item_compare;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let telemetry = icrowd_bench::telemetry::init_from_env();
    let ds = item_compare(42);
    let config = CampaignConfig::default();
    let graph = build_graph(&ds, &config);
    let gold = select_gold(&ds, &graph, &config);

    println!("=== Table 5: approximation error of the greedy assignment (ItemCompare) ===");
    println!(
        "{:>16} {:>22} {:>22}",
        "# active workers", "error, fresh (%)", "error, mid-campaign (%)"
    );
    println!(
        "{:>16} {:>22} {:>22}",
        "", "(all tasks k' = k)", "(15% partially assigned)"
    );

    const INSTANCES: usize = 10;
    for num_workers in 3..=9usize {
        // Estimate accuracies for a worker pool that completed warm-up,
        // then build the top-worker sets Algorithm 3/OPT both consume.
        let mut est = AccuracyEstimator::new(
            graph.clone(),
            ICrowdConfig::default(),
            EstimationMode::default(),
        );
        let mut rng = StdRng::seed_from_u64(7 + num_workers as u64);
        let workers = ds.spawn_workers(42);
        for (wi, worker) in workers.iter().take(num_workers).enumerate() {
            let w = WorkerId(wi as u32);
            let mut worker = worker.clone();
            for &g in &gold {
                let ans =
                    icrowd_platform::market::WorkerBehavior::answer(&mut worker, &ds.tasks[g]);
                est.record_qualification(w, g, ans, ds.tasks[g].ground_truth.unwrap());
            }
        }
        let k = 3usize;
        let mut errors = [0.0f64; 2]; // [fresh, mid-campaign]
        for (scenario, partial_fraction) in [(0usize, 0.0f64), (1, 0.15)] {
            let (mut opt_sum, mut app_sum) = (0.0f64, 0.0f64);
            for _instance in 0..INSTANCES {
                // A random subset of open tasks keeps enumeration honest
                // (the paper's exact search over 337 tasks already timed
                // out above 7 workers).
                let mut candidate_tasks: Vec<TaskId> =
                    ds.tasks.ids().filter(|t| !gold.contains(t)).collect();
                for i in 0..candidate_tasks.len() {
                    let j = rng.gen_range(i..candidate_tasks.len());
                    candidate_tasks.swap(i, j);
                }
                candidate_tasks.truncate(40);

                let sets: Vec<TopWorkerSet> = candidate_tasks
                    .iter()
                    .map(|&t| {
                        // Fresh tasks keep k' = k; partially assigned
                        // ones already hold 1-2 (ineligible) workers.
                        let already = if rng.gen::<f64>() < partial_fraction {
                            rng.gen_range(1..=2usize)
                        } else {
                            0
                        }
                        .min(k.min(num_workers) - 1);
                        let mut pool: Vec<u32> = (0..num_workers as u32).collect();
                        for j in 0..already {
                            let s = rng.gen_range(j..pool.len());
                            pool.swap(j, s);
                        }
                        let eligible = pool[already..]
                            .iter()
                            .map(|&wi| (WorkerId(wi), est.accuracy(WorkerId(wi), t)))
                            .collect::<Vec<_>>();
                        top_worker_set(t, eligible, k - already)
                    })
                    .filter(|s| !s.workers.is_empty())
                    .collect();

                opt_sum += scheme_objective(&optimal_assign(&sets));
                app_sum += scheme_objective(&greedy_assign(&sets));
            }
            errors[scenario] = if opt_sum > 0.0 {
                (opt_sum - app_sum) / opt_sum * 100.0
            } else {
                0.0
            };
        }
        println!("{num_workers:>16} {:>22.1} {:>22.1}", errors[0], errors[1]);
        let _ = Answer::YES;
    }
    icrowd_bench::telemetry::finish(telemetry);
}
