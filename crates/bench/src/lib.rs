//! # icrowd-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! iCrowd paper's evaluation (Section 6 and Appendix D). Each artefact
//! is a binary: `cargo run --release -p icrowd-bench --bin fig9`.
//!
//! The paper ran each configuration once against the live AMT crowd; our
//! crowd is stochastic, so every experiment averages a few seeds and
//! reports the mean (the seed list is printed with each run).

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

use icrowd_sim::campaign::{run_campaign_with, Approach, CampaignConfig, CampaignResult};
use icrowd_sim::datasets::Dataset;
use icrowd_sim::metrics::DomainAccuracy;

/// Seeds used by averaged experiments.
pub const SEEDS: [u64; 5] = [42, 1337, 20150531, 7, 271828];

/// Telemetry plumbing shared by the bench bins: arm the `icrowd-obs`
/// sink from the `ICROWD_TELEMETRY` environment variable and write the
/// JSONL export when the bin finishes. (`fig10` uses its own
/// `FIG10_TELEMETRY` knob because it fans out over child processes.)
pub mod telemetry {
    /// Environment variable naming the JSONL export path.
    pub const ENV: &str = "ICROWD_TELEMETRY";

    /// Enables telemetry collection when [`ENV`] is set, returning the
    /// export path. Call once at the top of `main`.
    #[must_use]
    pub fn init_from_env() -> Option<String> {
        let path = std::env::var(ENV).ok()?;
        icrowd_obs::reset();
        icrowd_obs::enable();
        Some(path)
    }

    /// Writes the JSONL export and a summary table to stderr when
    /// telemetry was armed by [`init_from_env`]. Call at the end of
    /// `main`.
    pub fn finish(path: Option<String>) {
        let Some(path) = path else { return };
        icrowd_obs::disable();
        match icrowd_obs::write_jsonl(&path) {
            Ok(()) => eprintln!("{}telemetry written to {path}", icrowd_obs::summary_table()),
            Err(e) => eprintln!("cannot write telemetry to {path}: {e}"),
        }
    }
}

/// Parses `fig10`'s child-mode positional arguments (`<n> <cap>`).
///
/// `Ok(None)` means no child arguments were given (parent mode);
/// `Ok(Some((n, cap)))` runs one configuration. Malformed invocations
/// are reported as errors so the binary can exit nonzero instead of
/// panicking mid-benchmark.
///
/// # Errors
/// A wrong argument count or unparseable numbers.
pub fn parse_child_args(args: &[String]) -> Result<Option<(usize, usize)>, String> {
    match args {
        [] => Ok(None),
        [n, cap] => {
            let n = n
                .parse()
                .map_err(|_| format!("invalid task count `{n}` (expected a number)"))?;
            let cap = cap
                .parse()
                .map_err(|_| format!("invalid neighbor cap `{cap}` (expected a number)"))?;
            Ok(Some((n, cap)))
        }
        other => Err(format!(
            "expected `fig10 <tasks> <cap>` or no arguments, got {} argument(s)",
            other.len()
        )),
    }
}

/// Accuracy rows averaged over seeds: one entry per domain plus `ALL`.
#[derive(Debug, Clone)]
pub struct AveragedResult {
    /// Approach name.
    pub approach: String,
    /// `(domain, mean accuracy)` pairs in domain order, then `("ALL", ..)`.
    pub rows: Vec<(String, f64)>,
}

/// Runs `approach` on `dataset` across [`SEEDS`], sharing the graph and
/// gold set per seed, and averages the per-domain accuracies.
pub fn averaged_campaign(
    make_dataset: &dyn Fn(u64) -> Dataset,
    approach: Approach,
    base: &CampaignConfig,
) -> AveragedResult {
    let mut sums: Vec<(String, f64)> = Vec::new();
    let mut overall_sum = 0.0;
    for &seed in &SEEDS {
        let dataset = make_dataset(seed);
        let config = CampaignConfig {
            seed,
            ..base.clone()
        };
        let graph = icrowd_sim::campaign::build_graph(&dataset, &config);
        let gold = icrowd_sim::campaign::select_gold(&dataset, &graph, &config);
        let r = run_campaign_with(&dataset, approach, &config, graph, gold);
        accumulate(&mut sums, &r.per_domain);
        overall_sum += r.overall;
    }
    let n = SEEDS.len() as f64;
    let mut rows: Vec<(String, f64)> = sums.into_iter().map(|(d, s)| (d, s / n)).collect();
    rows.push(("ALL".into(), overall_sum / n));
    AveragedResult {
        approach: approach.name(),
        rows,
    }
}

fn accumulate(sums: &mut Vec<(String, f64)>, per_domain: &[DomainAccuracy]) {
    if sums.is_empty() {
        *sums = per_domain.iter().map(|d| (d.domain.clone(), 0.0)).collect();
    }
    for (slot, d) in sums.iter_mut().zip(per_domain) {
        debug_assert_eq!(slot.0, d.domain);
        slot.1 += d.accuracy();
    }
}

/// Averages full campaign results (answers, spend, ...) over [`SEEDS`]
/// for experiments that need more than accuracies.
pub fn campaigns_over_seeds(
    make_dataset: &dyn Fn(u64) -> Dataset,
    approach: Approach,
    base: &CampaignConfig,
) -> Vec<CampaignResult> {
    SEEDS
        .iter()
        .map(|&seed| {
            let dataset = make_dataset(seed);
            let config = CampaignConfig {
                seed,
                ..base.clone()
            };
            icrowd_sim::campaign::run_campaign(&dataset, approach, &config)
        })
        .collect()
}

/// Prints a figure-style accuracy table: approaches as rows, domains as
/// columns.
pub fn print_accuracy_table(title: &str, results: &[AveragedResult]) {
    println!("\n=== {title} ===");
    if results.is_empty() {
        return;
    }
    let headers: Vec<&str> = results[0].rows.iter().map(|(d, _)| d.as_str()).collect();
    print!("{:<12}", "approach");
    for h in &headers {
        print!(" {h:>14}");
    }
    println!();
    for r in results {
        print!("{:<12}", r.approach);
        for (_, acc) in &r.rows {
            print!(" {acc:>14.3}");
        }
        println!();
    }
}

/// Prints a generic two-column table.
pub fn print_pairs(title: &str, header: (&str, &str), pairs: &[(String, String)]) {
    println!("\n=== {title} ===");
    println!("{:<28} {:>16}", header.0, header.1);
    for (a, b) in pairs {
        println!("{a:<28} {b:>16}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_sim::campaign::MetricChoice;
    use icrowd_sim::datasets::table1;

    #[test]
    fn averaged_campaign_produces_domain_rows_plus_all() {
        let base = CampaignConfig {
            metric: MetricChoice::Jaccard,
            icrowd: icrowd::core::ICrowdConfig {
                similarity_threshold: 0.3,
                warmup: icrowd::core::WarmupConfig {
                    num_qualification: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let r = averaged_campaign(&|_| table1(), Approach::RandomMV, &base);
        assert_eq!(r.rows.len(), 4, "3 domains + ALL");
        assert_eq!(r.rows.last().unwrap().0, "ALL");
        for (_, acc) in &r.rows {
            assert!((0.0..=1.0).contains(acc));
        }
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn child_args_parse_parent_and_child_modes() {
        assert_eq!(parse_child_args(&[]).unwrap(), None);
        assert_eq!(
            parse_child_args(&strings(&["200000", "40"])).unwrap(),
            Some((200_000, 40))
        );
    }

    // Regression: child-mode argument parsing reports malformed input
    // instead of panicking (three malformed invocations).
    #[test]
    fn child_args_reject_non_numeric_task_count() {
        let err = parse_child_args(&strings(&["banana", "40"])).unwrap_err();
        assert!(err.contains("banana"), "{err}");
    }

    #[test]
    fn child_args_reject_non_numeric_cap() {
        let err = parse_child_args(&strings(&["200000", "wide"])).unwrap_err();
        assert!(err.contains("wide"), "{err}");
    }

    #[test]
    fn child_args_reject_wrong_arity() {
        let err = parse_child_args(&strings(&["200000"])).unwrap_err();
        assert!(err.contains("1 argument"), "{err}");
        assert!(parse_child_args(&strings(&["1", "2", "3"])).is_err());
    }
}
