//! LDA sampler throughput (the offline cost behind `Cos(topic)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icrowd::text::{LdaConfig, LdaModel, Tokenizer};
use icrowd_sim::datasets::{item_compare, yahooqa};

fn bench_lda(c: &mut Criterion) {
    let mut group = c.benchmark_group("lda");
    group.sample_size(10);
    let tokenizer = Tokenizer::new();
    for (name, tasks) in [
        ("yahooqa_110", yahooqa(42).tasks),
        ("item_compare_360", item_compare(42).tasks),
    ] {
        let (docs, vocab) = icrowd::text::tokenize::encode_corpus(
            &tokenizer,
            tasks.iter().map(|t| t.text.as_str()),
        );
        let v = vocab.len();
        group.bench_with_input(BenchmarkId::new("fit_50_sweeps", name), &docs, |b, d| {
            b.iter(|| {
                LdaModel::fit(
                    d,
                    v,
                    &LdaConfig {
                        num_topics: 8,
                        iterations: 50,
                        seed: 1,
                        ..Default::default()
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lda);
criterion_main!(benches);
