//! Equation (1) ablation: Poisson-binomial DP vs literal subset
//! enumeration for the worker-set accuracy `Pr(W_t)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icrowd::core::{worker_set_accuracy, worker_set_accuracy_enumerate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_voting(c: &mut Criterion) {
    let mut group = c.benchmark_group("worker_set_accuracy");
    let mut rng = StdRng::seed_from_u64(3);
    for &k in &[3usize, 7, 15, 21] {
        let probs: Vec<f64> = (0..k).map(|_| rng.gen_range(0.3..0.95)).collect();
        group.bench_with_input(BenchmarkId::new("dp", k), &probs, |b, p| {
            b.iter(|| worker_set_accuracy(p))
        });
        if k <= 21 {
            group.bench_with_input(BenchmarkId::new("enumerate", k), &probs, |b, p| {
                b.iter(|| worker_set_accuracy_enumerate(p))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_voting);
criterion_main!(benches);
