//! Assignment kernel benchmarks: greedy (Algorithm 3) across instance
//! sizes, exact branch-and-bound on small instances, and qualification
//! selection (Algorithm 4 with CELF).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icrowd::assign::{
    greedy_assign, optimal_assign, select_qualification_influence, top_worker_set, TopWorkerSet,
};
use icrowd::core::{PprConfig, TaskId, WorkerId};
use icrowd::graph::{GraphBuilder, LinearityIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_sets(num_tasks: usize, num_workers: usize, k: usize, seed: u64) -> Vec<TopWorkerSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_tasks as u32)
        .map(|t| {
            let mut pool: Vec<u32> = (0..num_workers as u32).collect();
            for j in 0..k.min(num_workers) {
                let s = rng.gen_range(j..pool.len());
                pool.swap(j, s);
            }
            let eligible: Vec<(WorkerId, f64)> = pool[..k.min(num_workers)]
                .iter()
                .map(|&w| (WorkerId(w), rng.gen_range(0.3..0.95)))
                .collect();
            top_worker_set(TaskId(t), eligible, k)
        })
        .collect()
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment");
    group.sample_size(20);
    for &(t, w) in &[(100usize, 25usize), (1_000, 50), (10_000, 100)] {
        let sets = random_sets(t, w, 3, 11);
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{t}tasks_{w}workers")),
            &sets,
            |b, s| b.iter(|| greedy_assign(s)),
        );
    }
    // Exact solver only on paper-scale instances (Table 5's 3-7 workers).
    for &w in &[5usize, 7] {
        let sets = random_sets(30, w, 3, 13);
        group.bench_with_input(
            BenchmarkId::new("optimal", format!("{w}workers")),
            &sets,
            |b, s| b.iter(|| optimal_assign(s)),
        );
    }

    // Qualification selection over a blocky graph.
    let mut rng = StdRng::seed_from_u64(5);
    let mut edges: Vec<(TaskId, TaskId, f64)> = Vec::new();
    for i in 0..2_000u32 {
        for _ in 0..8 {
            let j = rng.gen_range(0..2_000u32);
            if j != i {
                edges.push((TaskId(i), TaskId(j), rng.gen_range(0.5..1.0)));
            }
        }
    }
    let graph = GraphBuilder::new(0.5).build_from_edges(2_000, edges);
    let index = LinearityIndex::build(&graph, 1.0, &PprConfig::default());
    group.bench_function("qualification_selection_q10_2000tasks", |b| {
        b.iter(|| select_qualification_influence(&index, 10))
    });
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
