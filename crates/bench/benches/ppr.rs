//! PPR engine benchmarks — the ablation behind Lemma 3.
//!
//! Compares, on a blocky similarity graph:
//! * a full dense power-iteration solve per estimation request (what a
//!   naive implementation of Equation (4) costs),
//! * a sparse truncated solve, and
//! * the linearity-index lookup (Algorithm 1's online path) — the paper's
//!   design, orders of magnitude cheaper per request.
//!
//! Two further groups cover this round of optimizations:
//! * `index_build_threads` — the offline build at 1/2/4/8 worker
//!   threads (bit-identical output; wall-clock only scales with the
//!   hardware threads actually present), and
//! * `estimator_refresh` — absorbing one new observation incrementally
//!   (accumulator delta + cache patch) vs re-deriving the estimate from
//!   the raw observation set, the pre-accumulator cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use icrowd::core::{Answer, ICrowdConfig, PprConfig, TaskId, WorkerId};
use icrowd::estimate::{AccuracyEstimator, EstimationMode};
use icrowd::graph::{
    power_iteration, sparse_ppr, LinearityIndex, SimilarityGraph, SparseTaskVector,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A graph of `blocks` cliques of size `block_size` with sparse bridges.
fn blocky_graph(blocks: usize, block_size: usize, seed: u64) -> SimilarityGraph {
    let n = blocks * block_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for b in 0..blocks {
        let base = (b * block_size) as u32;
        for i in 0..block_size as u32 {
            for j in (i + 1)..block_size as u32 {
                edges.push((TaskId(base + i), TaskId(base + j), rng.gen_range(0.6..1.0)));
            }
        }
    }
    SimilarityGraph::from_edges(n, &edges)
}

fn bench_ppr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppr");
    group.sample_size(10);
    for &n_blocks in &[5usize, 20] {
        let graph = blocky_graph(n_blocks, 20, 7);
        let n = graph.num_tasks();
        let config = PprConfig::default();
        let mut q_dense = vec![0.0; n];
        q_dense[0] = 1.0;
        q_dense[n / 2] = 0.5;
        let q_sparse = SparseTaskVector::from_pairs(vec![(0, 1.0), (n as u32 / 2, 0.5)]);

        group.bench_with_input(BenchmarkId::new("dense_power_iteration", n), &n, |b, _| {
            b.iter(|| power_iteration(&graph, &q_dense, 1.0, &config))
        });
        group.bench_with_input(BenchmarkId::new("sparse_ppr", n), &n, |b, _| {
            b.iter(|| sparse_ppr(&graph, &q_sparse, 1.0, 1e-6, &config))
        });

        let index = LinearityIndex::build(&graph, 1.0, &config);
        group.bench_with_input(BenchmarkId::new("linearity_lookup", n), &n, |b, _| {
            b.iter(|| index.estimate_dense(&q_sparse))
        });
        group.bench_with_input(BenchmarkId::new("index_build", n), &n, |b, _| {
            b.iter(|| LinearityIndex::build(&graph, 1.0, &config))
        });
    }
    group.finish();
}

fn bench_index_build_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build_threads");
    group.sample_size(10);
    let graph = blocky_graph(50, 20, 7);
    for &threads in &[1usize, 2, 4, 8] {
        let config = PprConfig {
            threads,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| LinearityIndex::build(&graph, 1.0, &config))
        });
    }
    group.finish();
}

/// One refresh = absorb a (re)observation on a rotating task and read
/// the estimate back at that task.
fn bench_estimator_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_refresh");
    group.sample_size(10);
    let graph = blocky_graph(50, 20, 7);
    let n = graph.num_tasks();
    let worker = WorkerId(0);
    let make = || {
        let mut e = AccuracyEstimator::new(
            graph.clone(),
            ICrowdConfig::default(),
            EstimationMode::Normalized,
        );
        // 50 standing observations spread over the blocks; the rotating
        // refresh below replaces them in turn, so the observed set stays
        // at a steady-state size.
        for i in 0..50u32 {
            let t = TaskId((i as usize * n / 50) as u32);
            e.record_qualification(worker, t, Answer::YES, Answer::YES);
        }
        let _ = e.accuracies(worker);
        e
    };

    let mut e = make();
    let mut round = 0u32;
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let t = TaskId((round as usize * n / 50) as u32 % n as u32);
            let ans = if round.is_multiple_of(3) {
                Answer::NO
            } else {
                Answer::YES
            };
            e.record_qualification(worker, t, ans, Answer::YES);
            round += 1;
            black_box(e.accuracy(worker, t))
        })
    });

    // The pre-accumulator cost: re-derive the dense estimate from the
    // raw observation set (Σ q_i·p_{t_i} via the index) on every refresh.
    let mut e = make();
    let mut round = 0u32;
    group.bench_function("full_recompute", |b| {
        b.iter(|| {
            let t = TaskId((round as usize * n / 50) as u32 % n as u32);
            let ans = if round.is_multiple_of(3) {
                Answer::NO
            } else {
                Answer::YES
            };
            e.record_qualification(worker, t, ans, Answer::YES);
            round += 1;
            let q: SparseTaskVector = e
                .observed(worker)
                .expect("registered")
                .iter()
                .map(|(&i, &v)| (i, v))
                .collect();
            black_box(e.index().estimate_dense(&q)[t.index()])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ppr,
    bench_index_build_threads,
    bench_estimator_refresh
);
criterion_main!(benches);
