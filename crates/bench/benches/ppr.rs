//! PPR engine benchmarks — the ablation behind Lemma 3.
//!
//! Compares, on a blocky similarity graph:
//! * a full dense power-iteration solve per estimation request (what a
//!   naive implementation of Equation (4) costs),
//! * a sparse truncated solve, and
//! * the linearity-index lookup (Algorithm 1's online path) — the paper's
//!   design, orders of magnitude cheaper per request.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icrowd::core::{PprConfig, TaskId};
use icrowd::graph::{power_iteration, sparse_ppr, LinearityIndex, SimilarityGraph, SparseTaskVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A graph of `blocks` cliques of size `block_size` with sparse bridges.
fn blocky_graph(blocks: usize, block_size: usize, seed: u64) -> SimilarityGraph {
    let n = blocks * block_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for b in 0..blocks {
        let base = (b * block_size) as u32;
        for i in 0..block_size as u32 {
            for j in (i + 1)..block_size as u32 {
                edges.push((
                    TaskId(base + i),
                    TaskId(base + j),
                    rng.gen_range(0.6..1.0),
                ));
            }
        }
    }
    SimilarityGraph::from_edges(n, &edges)
}

fn bench_ppr(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppr");
    group.sample_size(10);
    for &n_blocks in &[5usize, 20] {
        let graph = blocky_graph(n_blocks, 20, 7);
        let n = graph.num_tasks();
        let config = PprConfig::default();
        let mut q_dense = vec![0.0; n];
        q_dense[0] = 1.0;
        q_dense[n / 2] = 0.5;
        let q_sparse = SparseTaskVector::from_pairs(vec![(0, 1.0), (n as u32 / 2, 0.5)]);

        group.bench_with_input(
            BenchmarkId::new("dense_power_iteration", n),
            &n,
            |b, _| b.iter(|| power_iteration(&graph, &q_dense, 1.0, &config)),
        );
        group.bench_with_input(BenchmarkId::new("sparse_ppr", n), &n, |b, _| {
            b.iter(|| sparse_ppr(&graph, &q_sparse, 1.0, 1e-6, &config))
        });

        let index = LinearityIndex::build(&graph, 1.0, &config);
        group.bench_with_input(BenchmarkId::new("linearity_lookup", n), &n, |b, _| {
            b.iter(|| index.estimate_dense(&q_sparse))
        });
        group.bench_with_input(BenchmarkId::new("index_build", n), &n, |b, _| {
            b.iter(|| LinearityIndex::build(&graph, 1.0, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ppr);
criterion_main!(benches);
