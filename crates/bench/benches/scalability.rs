//! The Figure-10 kernel as a criterion bench: per-request assignment
//! cost vs task-set size under a capped candidate pool. Complements the
//! `fig10` binary (which prints the paper-style series at full scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icrowd::core::{Answer, ICrowdConfig, PprConfig, Tick, WarmupConfig};
use icrowd::graph::GraphBuilder;
use icrowd::platform::ExternalQuestionServer;
use icrowd::{AssignStrategy, ICrowd, ICrowdBuilder};
use icrowd_sim::datasets::{scalability_edges, scalability_tasks};

fn build_server(n: usize, cap: usize) -> ICrowd {
    let tasks = scalability_tasks(n);
    let edges = scalability_edges(n, cap, 42);
    let graph = GraphBuilder::new(0.5)
        .with_max_neighbors(cap)
        .build_from_edges(n, edges);
    ICrowdBuilder::new(tasks)
        .config(ICrowdConfig {
            warmup: WarmupConfig {
                num_qualification: 10,
                ..Default::default()
            },
            ppr: PprConfig {
                index_epsilon: 1e-3,
                max_iterations: 20,
                tolerance: 1e-6,
                ..Default::default()
            },
            ..Default::default()
        })
        .strategy(AssignStrategy::Adapt)
        .graph(graph)
        .candidate_limit(2_048)
        .build()
}

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for &n in &[10_000usize, 40_000] {
        let mut server = build_server(n, 20);
        // Warm the pipeline: a few answered rounds so estimates exist.
        let mut tick = 0u64;
        for _ in 0..50 {
            for w in 0..8 {
                let name = format!("W{w}");
                if let Some(t) = server.request_task(&name, Tick(tick)) {
                    server.submit_answer(&name, t, Answer::YES, Tick(tick));
                }
                tick += 1;
            }
        }
        group.bench_with_input(BenchmarkId::new("request_and_submit", n), &n, |b, _| {
            b.iter(|| {
                for w in 0..8 {
                    let name = format!("W{w}");
                    if let Some(t) = server.request_task(&name, Tick(tick)) {
                        server.submit_answer(&name, t, Answer::YES, Tick(tick));
                    }
                    tick += 1;
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
