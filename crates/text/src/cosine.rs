//! Cosine similarities: `Cos(tf-idf)` and `Cos(topic)` (Appendix D.1).

use icrowd_core::task::{TaskId, TaskSet};

use crate::lda::{LdaConfig, LdaModel};
use crate::metric::TaskSimilarity;
use crate::tfidf::TfIdfModel;
use crate::tokenize::{encode_corpus, Tokenizer};

/// `Cos(tf-idf)`: cosine similarity of L2-normalized tf-idf vectors.
#[derive(Debug, Clone)]
pub struct CosineTfIdf {
    model: TfIdfModel,
}

impl CosineTfIdf {
    /// Fits tf-idf over the task texts.
    pub fn new(tasks: &TaskSet, tokenizer: &Tokenizer) -> Self {
        let model = TfIdfModel::fit(tokenizer, tasks.iter().map(|t| t.text.as_str()));
        Self { model }
    }

    /// The underlying tf-idf model.
    pub fn model(&self) -> &TfIdfModel {
        &self.model
    }
}

impl TaskSimilarity for CosineTfIdf {
    fn similarity(&self, a: TaskId, b: TaskId) -> f64 {
        self.model.cosine(a.index(), b.index())
    }

    fn name(&self) -> &str {
        "Cos(tf-idf)"
    }
}

/// `Cos(topic)`: cosine similarity of LDA topic distributions — the
/// paper's best-performing similarity (used with threshold 0.8 as the
/// default across experiments).
#[derive(Debug, Clone)]
pub struct TopicCosine {
    model: LdaModel,
}

impl TopicCosine {
    /// Tokenizes the task texts and fits LDA.
    pub fn new(tasks: &TaskSet, tokenizer: &Tokenizer, config: &LdaConfig) -> Self {
        let (docs, vocab) = encode_corpus(tokenizer, tasks.iter().map(|t| t.text.as_str()));
        let model = LdaModel::fit(&docs, vocab.len().max(1), config);
        Self { model }
    }

    /// Wraps an already-fitted LDA model (documents must be in task-id
    /// order).
    pub fn from_model(model: LdaModel) -> Self {
        Self { model }
    }

    /// The underlying LDA model.
    pub fn model(&self) -> &LdaModel {
        &self.model
    }
}

impl TaskSimilarity for TopicCosine {
    fn similarity(&self, a: TaskId, b: TaskId) -> f64 {
        self.model.topic_cosine(a.index(), b.index())
    }

    fn name(&self) -> &str {
        "Cos(topic)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::Microtask;

    fn tasks(texts: &[&str]) -> TaskSet {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Microtask::binary(TaskId(i as u32), *t))
            .collect()
    }

    #[test]
    fn tfidf_cosine_orders_related_before_unrelated() {
        let ts = tasks(&[
            "iphone 4 wifi 32gb",
            "iphone four wifi 16gb",
            "nba lakers championship",
        ]);
        let m = CosineTfIdf::new(&ts, &Tokenizer::keeping_stopwords());
        assert!(m.similarity(TaskId(0), TaskId(1)) > m.similarity(TaskId(0), TaskId(2)));
        assert_eq!(m.name(), "Cos(tf-idf)");
    }

    #[test]
    fn topic_cosine_separates_domains() {
        let mut texts = Vec::new();
        for _ in 0..10 {
            texts.push("iphone ipad apple wifi screen battery");
            texts.push("nba lakers basketball player court game");
        }
        let ts = tasks(&texts);
        let m = TopicCosine::new(
            &ts,
            &Tokenizer::keeping_stopwords(),
            &LdaConfig {
                num_topics: 2,
                iterations: 120,
                seed: 3,
                ..Default::default()
            },
        );
        let same = m.similarity(TaskId(0), TaskId(2));
        let cross = m.similarity(TaskId(0), TaskId(1));
        assert!(same > cross, "same-domain {same} vs cross-domain {cross}");
        assert_eq!(m.name(), "Cos(topic)");
    }

    #[test]
    fn topic_cosine_is_symmetric_and_bounded() {
        let ts = tasks(&["a b c", "c d e", "x y z"]);
        let m = TopicCosine::new(
            &ts,
            &Tokenizer::keeping_stopwords(),
            &LdaConfig {
                num_topics: 3,
                iterations: 30,
                ..Default::default()
            },
        );
        for i in 0..3u32 {
            for j in 0..3u32 {
                let s = m.similarity(TaskId(i), TaskId(j));
                assert!((0.0..=1.0).contains(&s));
                assert!((s - m.similarity(TaskId(j), TaskId(i))).abs() < 1e-12);
            }
        }
    }
}
