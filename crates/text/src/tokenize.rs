//! Tokenization, stop-word removal and vocabulary interning.
//!
//! Appendix D.1: "we tokenized the text of microtasks and removed the
//! stopwords". The tokenizer lowercases, splits on non-alphanumeric
//! boundaries and drops a small English stop-word list; [`Vocabulary`]
//! interns tokens to dense `u32` ids so similarity metrics and the LDA
//! sampler can work with integer arrays.

use std::collections::HashMap;

/// A compact English stop-word list (function words common in microtask
/// text; matching the paper's preprocessing in spirit).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "had", "has", "have",
    "he", "her", "his", "i", "if", "in", "into", "is", "it", "its", "me", "my", "no", "not", "of",
    "on", "or", "our", "she", "so", "that", "the", "their", "them", "then", "there", "these",
    "they", "this", "to", "was", "we", "were", "what", "when", "which", "who", "will", "with",
    "you", "your",
];

/// Lowercasing, stop-word-removing tokenizer.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    stopwords: std::collections::HashSet<&'static str>,
    keep_stopwords: bool,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tokenizer {
    /// Creates the standard tokenizer (stop words removed).
    pub fn new() -> Self {
        Self {
            stopwords: STOPWORDS.iter().copied().collect(),
            keep_stopwords: false,
        }
    }

    /// Creates a tokenizer that keeps stop words (useful for the short
    /// product-record tasks of Table 1 where nearly every token matters).
    pub fn keeping_stopwords() -> Self {
        Self {
            stopwords: std::collections::HashSet::new(),
            keep_stopwords: true,
        }
    }

    /// Splits `text` into lowercase tokens, dropping stop words.
    ///
    /// Tokens are maximal runs of alphanumeric characters; punctuation and
    /// whitespace are separators. Duplicates are preserved (term frequency
    /// matters for tf-idf and LDA).
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut current = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                current.extend(ch.to_lowercase());
            } else if !current.is_empty() {
                self.push_token(&mut out, std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            self.push_token(&mut out, current);
        }
        out
    }

    fn push_token(&self, out: &mut Vec<String>, token: String) {
        if self.keep_stopwords || !self.stopwords.contains(token.as_str()) {
            out.push(token);
        }
    }
}

/// Interns tokens to dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    by_token: HashMap<String, u32>,
    tokens: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `token`, returning its id.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.by_token.get(token) {
            return id;
        }
        let id = u32::try_from(self.tokens.len()).expect("vocabulary overflow");
        self.by_token.insert(token.to_owned(), id);
        self.tokens.push(token.to_owned());
        id
    }

    /// Looks up a token id without interning.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.by_token.get(token).copied()
    }

    /// The token with the given id.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.tokens.get(id as usize).map(String::as_str)
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Tokenizes and interns a whole document, returning token ids.
    pub fn encode(&mut self, tokenizer: &Tokenizer, text: &str) -> Vec<u32> {
        tokenizer
            .tokenize(text)
            .into_iter()
            .map(|t| self.intern(&t))
            .collect()
    }
}

/// Encodes a corpus of texts into token-id documents plus the vocabulary.
pub fn encode_corpus<'a>(
    tokenizer: &Tokenizer,
    texts: impl IntoIterator<Item = &'a str>,
) -> (Vec<Vec<u32>>, Vocabulary) {
    let mut vocab = Vocabulary::new();
    let docs = texts
        .into_iter()
        .map(|t| vocab.encode(tokenizer, t))
        .collect();
    (docs, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits_on_punctuation() {
        let t = Tokenizer::keeping_stopwords();
        assert_eq!(
            t.tokenize("iPhone 4, WiFi/32GB black!"),
            vec!["iphone", "4", "wifi", "32gb", "black"]
        );
    }

    #[test]
    fn stopwords_are_removed_by_default() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("the iPad with a Retina display"),
            vec!["ipad", "retina", "display"]
        );
    }

    #[test]
    fn keeping_stopwords_preserves_them() {
        let t = Tokenizer::keeping_stopwords();
        assert_eq!(
            t.tokenize("the iPad with Retina"),
            vec!["the", "ipad", "with", "retina"]
        );
    }

    #[test]
    fn duplicates_are_preserved() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("ipod ipod nano"), vec!["ipod", "ipod", "nano"]);
    }

    #[test]
    fn empty_and_punctuation_only_texts() {
        let t = Tokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("?!., --").is_empty());
    }

    #[test]
    fn vocabulary_interns_stably() {
        let mut v = Vocabulary::new();
        let a = v.intern("iphone");
        let b = v.intern("ipad");
        assert_ne!(a, b);
        assert_eq!(v.intern("iphone"), a);
        assert_eq!(v.get("ipad"), Some(b));
        assert_eq!(v.token(a), Some("iphone"));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn encode_corpus_shares_vocabulary() {
        let t = Tokenizer::keeping_stopwords();
        let (docs, vocab) = encode_corpus(&t, ["iphone 4 wifi", "iphone case"]);
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0][0], docs[1][0], "shared token shares id");
        assert_eq!(vocab.len(), 4, "iphone, 4, wifi, case");
    }

    #[test]
    fn unicode_text_tokenizes_without_panicking() {
        let t = Tokenizer::new();
        let toks = t.tokenize("Überraschung — naïve café 数据库");
        assert!(toks.contains(&"überraschung".to_string()));
        assert!(toks.contains(&"数据库".to_string()));
    }
}
