//! Classification-based similarity (Section 3.3 case 3).
//!
//! For complicated microtasks the paper suggests training a classifier on
//! labelled (similar / not similar) pairs and using its binary prediction
//! as a 0/1 similarity. We implement an averaged perceptron over simple
//! pair features (Jaccard overlap, tf-idf cosine, relative length
//! difference) — a linear classifier in the spirit of the paper's SVM
//! suggestion, with no external dependencies.

use icrowd_core::task::{TaskId, TaskSet};

use crate::jaccard::JaccardSimilarity;
use crate::metric::TaskSimilarity;
use crate::tfidf::TfIdfModel;
use crate::tokenize::Tokenizer;

/// Number of features (plus a bias term) used per task pair.
const NUM_FEATURES: usize = 4;

/// A labelled training pair: `(a, b, similar?)`.
pub type LabelledPair = (TaskId, TaskId, bool);

/// An averaged-perceptron pair classifier exposed as a 0/1 similarity.
#[derive(Debug, Clone)]
pub struct ClassifierSimilarity {
    jaccard: JaccardSimilarity,
    tfidf: TfIdfModel,
    lengths: Vec<usize>,
    /// Learned weights: `[bias, w_jaccard, w_cosine, w_lendiff]`.
    weights: [f64; NUM_FEATURES],
}

impl ClassifierSimilarity {
    /// Trains the classifier on `pairs` for `epochs` passes of the
    /// averaged perceptron.
    ///
    /// # Panics
    /// Panics if `pairs` is empty or `epochs == 0`.
    pub fn train(
        tasks: &TaskSet,
        tokenizer: &Tokenizer,
        pairs: &[LabelledPair],
        epochs: usize,
    ) -> Self {
        assert!(!pairs.is_empty(), "need at least one training pair");
        assert!(epochs > 0, "need at least one epoch");
        let jaccard = JaccardSimilarity::new(tasks, tokenizer);
        let tfidf = TfIdfModel::fit(tokenizer, tasks.iter().map(|t| t.text.as_str()));
        let lengths: Vec<usize> = tasks
            .iter()
            .map(|t| tokenizer.tokenize(&t.text).len())
            .collect();
        let mut this = Self {
            jaccard,
            tfidf,
            lengths,
            weights: [0.0; NUM_FEATURES],
        };

        // Averaged perceptron: accumulate weight snapshots for stability.
        let mut w = [0.0f64; NUM_FEATURES];
        let mut acc = [0.0f64; NUM_FEATURES];
        let mut steps = 0usize;
        for _ in 0..epochs {
            for &(a, b, label) in pairs {
                let x = this.features(a, b);
                let score: f64 = w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum();
                let y = if label { 1.0 } else { -1.0 };
                if y * score <= 0.0 {
                    for i in 0..NUM_FEATURES {
                        w[i] += y * x[i];
                    }
                }
                for i in 0..NUM_FEATURES {
                    acc[i] += w[i];
                }
                steps += 1;
            }
        }
        for (w, &a) in this.weights.iter_mut().zip(&acc) {
            *w = a / steps as f64;
        }
        this
    }

    /// The pair feature vector `[1, jaccard, cosine, 1 - lendiff]`.
    fn features(&self, a: TaskId, b: TaskId) -> [f64; NUM_FEATURES] {
        let j = self.jaccard.similarity(a, b);
        let c = self.tfidf.cosine(a.index(), b.index());
        let (la, lb) = (
            self.lengths[a.index()] as f64,
            self.lengths[b.index()] as f64,
        );
        let len_sim = if la.max(lb) == 0.0 {
            1.0
        } else {
            1.0 - (la - lb).abs() / la.max(lb)
        };
        [1.0, j, c, len_sim]
    }

    /// The learned decision score (positive ⇒ similar).
    pub fn score(&self, a: TaskId, b: TaskId) -> f64 {
        self.weights
            .iter()
            .zip(self.features(a, b))
            .map(|(w, x)| w * x)
            .sum()
    }

    /// Whether the classifier deems the pair similar.
    pub fn classify(&self, a: TaskId, b: TaskId) -> bool {
        self.score(a, b) > 0.0
    }
}

impl TaskSimilarity for ClassifierSimilarity {
    /// The paper's convention: similarity is 1 for predicted-similar
    /// pairs, 0 otherwise (with the diagonal always 1).
    fn similarity(&self, a: TaskId, b: TaskId) -> f64 {
        if a == b || self.classify(a, b) {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &str {
        "Classifier"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::Microtask;

    fn product_tasks() -> TaskSet {
        [
            "iphone 4 wifi 32gb",      // 0 phone
            "iphone four wifi 16gb",   // 1 phone
            "iphone 4 case black",     // 2 phone
            "nba lakers championship", // 3 sports
            "nba bucks season record", // 4 sports
            "nba finals winner team",  // 5 sports
        ]
        .iter()
        .enumerate()
        .map(|(i, t)| Microtask::binary(TaskId(i as u32), *t))
        .collect()
    }

    fn training_pairs() -> Vec<LabelledPair> {
        vec![
            (TaskId(0), TaskId(1), true),
            (TaskId(1), TaskId(2), true),
            (TaskId(3), TaskId(4), true),
            (TaskId(4), TaskId(5), true),
            (TaskId(0), TaskId(3), false),
            (TaskId(1), TaskId(4), false),
            (TaskId(2), TaskId(5), false),
        ]
    }

    #[test]
    fn learns_to_separate_domains() {
        let ts = product_tasks();
        let clf = ClassifierSimilarity::train(
            &ts,
            &Tokenizer::keeping_stopwords(),
            &training_pairs(),
            50,
        );
        // Held-out same-domain pair.
        assert!(clf.classify(TaskId(0), TaskId(2)));
        assert!(clf.classify(TaskId(3), TaskId(5)));
        // Held-out cross-domain pair.
        assert!(!clf.classify(TaskId(0), TaskId(5)));
        assert_eq!(clf.similarity(TaskId(0), TaskId(2)), 1.0);
        assert_eq!(clf.similarity(TaskId(0), TaskId(5)), 0.0);
    }

    #[test]
    fn diagonal_is_always_similar() {
        let ts = product_tasks();
        let clf =
            ClassifierSimilarity::train(&ts, &Tokenizer::keeping_stopwords(), &training_pairs(), 5);
        for i in 0..6u32 {
            assert_eq!(clf.similarity(TaskId(i), TaskId(i)), 1.0);
        }
    }

    #[test]
    fn scores_are_symmetric() {
        let ts = product_tasks();
        let clf = ClassifierSimilarity::train(
            &ts,
            &Tokenizer::keeping_stopwords(),
            &training_pairs(),
            20,
        );
        for a in 0..6u32 {
            for b in 0..6u32 {
                let s1 = clf.score(TaskId(a), TaskId(b));
                let s2 = clf.score(TaskId(b), TaskId(a));
                assert!((s1 - s2).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one training pair")]
    fn rejects_empty_training_set() {
        let ts = product_tasks();
        ClassifierSimilarity::train(&ts, &Tokenizer::new(), &[], 5);
    }
}
