//! Normalized edit-distance similarity (Section 3.3 mentions edit distance
//! as an alternative textual metric).
//!
//! Similarity is `1 - lev(a, b) / max(|a|, |b|)` over the raw task texts
//! (character level), which maps to `[0, 1]` with `1` for identical texts.

use icrowd_core::task::{TaskId, TaskSet};

use crate::metric::TaskSimilarity;

/// Levenshtein distance between two strings, `O(|a| * |b|)` time and
/// `O(min(|a|, |b|))` space (two-row dynamic program over chars).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string as the row for minimal memory.
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Character-level normalized edit-distance similarity over task texts.
#[derive(Debug, Clone)]
pub struct EditDistanceSimilarity {
    texts: Vec<String>,
}

impl EditDistanceSimilarity {
    /// Lowercases and stores the task texts.
    pub fn new(tasks: &TaskSet) -> Self {
        Self {
            texts: tasks.iter().map(|t| t.text.to_lowercase()).collect(),
        }
    }
}

impl TaskSimilarity for EditDistanceSimilarity {
    fn similarity(&self, a: TaskId, b: TaskId) -> f64 {
        let (ta, tb) = (&self.texts[a.index()], &self.texts[b.index()]);
        let max_len = ta.chars().count().max(tb.chars().count());
        if max_len == 0 {
            return 1.0;
        }
        1.0 - levenshtein(ta, tb) as f64 / max_len as f64
    }

    fn name(&self) -> &str {
        "EditDistance"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::Microtask;

    fn tasks(texts: &[&str]) -> TaskSet {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Microtask::binary(TaskId(i as u32), *t))
            .collect()
    }

    #[test]
    fn classic_levenshtein_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn similarity_normalizes_and_is_case_insensitive() {
        let ts = tasks(&["iPhone 4", "iphone 4", "xxxxxxxx"]);
        let m = EditDistanceSimilarity::new(&ts);
        assert_eq!(m.similarity(TaskId(0), TaskId(1)), 1.0);
        assert_eq!(m.similarity(TaskId(0), TaskId(2)), 0.0);
        assert_eq!(m.name(), "EditDistance");
    }

    #[test]
    fn empty_texts_are_identical() {
        let ts = tasks(&["", ""]);
        let m = EditDistanceSimilarity::new(&ts);
        assert_eq!(m.similarity(TaskId(0), TaskId(1)), 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn triangle_inequality(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
                let ab = levenshtein(&a, &b);
                let bc = levenshtein(&b, &c);
                let ac = levenshtein(&a, &c);
                prop_assert!(ac <= ab + bc);
            }

            #[test]
            fn symmetric(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
                prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            }

            #[test]
            fn bounded_by_longer_length(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
                let d = levenshtein(&a, &b);
                prop_assert!(d <= a.chars().count().max(b.chars().count()));
            }
        }
    }
}
