//! Latent Dirichlet Allocation via collapsed Gibbs sampling.
//!
//! Appendix D.1's best-performing similarity, `Cos(topic)`, needs a topic
//! distribution per microtask. This module implements the standard LDA
//! generative model (Blei, Ng & Jordan) with the collapsed Gibbs sampler of
//! Griffiths & Steyvers: topic assignments `z` are resampled word by word
//! from
//!
//! ```text
//! P(z = k | rest) ∝ (n_dk + alpha) * (n_kw + beta) / (n_k + V * beta)
//! ```
//!
//! After burn-in, document–topic distributions `theta` and topic–word
//! distributions `phi` are read off the smoothed counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// LDA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdaConfig {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Symmetric Dirichlet prior on document–topic distributions.
    pub alpha: f64,
    /// Symmetric Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Total Gibbs sweeps (burn-in included).
    pub iterations: usize,
    /// RNG seed (sampling is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self {
            num_topics: 10,
            alpha: 0.5,
            beta: 0.01,
            iterations: 200,
            seed: 42,
        }
    }
}

/// A fitted LDA model.
#[derive(Debug, Clone)]
pub struct LdaModel {
    num_topics: usize,
    vocab_size: usize,
    /// `theta[d][k]`: probability of topic `k` in document `d`.
    theta: Vec<Vec<f64>>,
    /// `phi[k][w]`: probability of word `w` under topic `k`.
    phi: Vec<Vec<f64>>,
}

impl LdaModel {
    /// Fits LDA on `docs` (token-id documents over a vocabulary of
    /// `vocab_size` words) by collapsed Gibbs sampling.
    ///
    /// Empty documents are legal; their `theta` is the uniform
    /// distribution.
    ///
    /// # Panics
    /// Panics if `config.num_topics == 0`, `iterations == 0`, or any token
    /// id is `>= vocab_size`.
    pub fn fit(docs: &[Vec<u32>], vocab_size: usize, config: &LdaConfig) -> Self {
        assert!(config.num_topics > 0, "need at least one topic");
        assert!(config.iterations > 0, "need at least one Gibbs sweep");
        let k = config.num_topics;
        let v = vocab_size;
        for doc in docs {
            for &w in doc {
                assert!((w as usize) < v, "token id {w} out of vocabulary");
            }
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        // Counts: n_dk (doc-topic), n_kw (topic-word), n_k (topic totals).
        let mut n_dk = vec![vec![0u32; k]; docs.len()];
        let mut n_kw = vec![vec![0u32; v]; k];
        let mut n_k = vec![0u32; k];
        // Current topic assignment of every token position.
        let mut z: Vec<Vec<usize>> = docs
            .iter()
            .map(|doc| doc.iter().map(|_| rng.gen_range(0..k)).collect())
            .collect();
        for (d, doc) in docs.iter().enumerate() {
            for (i, &w) in doc.iter().enumerate() {
                let t = z[d][i];
                n_dk[d][t] += 1;
                n_kw[t][w as usize] += 1;
                n_k[t] += 1;
            }
        }

        let mut weights = vec![0.0f64; k];
        for _sweep in 0..config.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let w = w as usize;
                    let old = z[d][i];
                    // Remove the token from the counts.
                    n_dk[d][old] -= 1;
                    n_kw[old][w] -= 1;
                    n_k[old] -= 1;
                    // Full conditional for each topic.
                    let mut total = 0.0;
                    for (t, wt) in weights.iter_mut().enumerate() {
                        let a = n_dk[d][t] as f64 + config.alpha;
                        let b = (n_kw[t][w] as f64 + config.beta)
                            / (n_k[t] as f64 + v as f64 * config.beta);
                        *wt = a * b;
                        total += *wt;
                    }
                    // Inverse-CDF sample.
                    let mut u = rng.gen::<f64>() * total;
                    let mut new = k - 1;
                    for (t, &wt) in weights.iter().enumerate() {
                        if u < wt {
                            new = t;
                            break;
                        }
                        u -= wt;
                    }
                    z[d][i] = new;
                    n_dk[d][new] += 1;
                    n_kw[new][w] += 1;
                    n_k[new] += 1;
                }
            }
        }

        // Read distributions off the final counts (single-sample estimate).
        let theta = docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                let denom = doc.len() as f64 + k as f64 * config.alpha;
                (0..k)
                    .map(|t| (n_dk[d][t] as f64 + config.alpha) / denom)
                    .collect()
            })
            .collect();
        let phi = (0..k)
            .map(|t| {
                let denom = n_k[t] as f64 + v as f64 * config.beta;
                (0..v)
                    .map(|w| (n_kw[t][w] as f64 + config.beta) / denom)
                    .collect()
            })
            .collect();

        Self {
            num_topics: k,
            vocab_size: v,
            theta,
            phi,
        }
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Topic distribution of document `d`.
    pub fn theta(&self, d: usize) -> &[f64] {
        &self.theta[d]
    }

    /// Word distribution of topic `t`.
    pub fn phi(&self, t: usize) -> &[f64] {
        &self.phi[t]
    }

    /// Number of fitted documents.
    pub fn num_docs(&self) -> usize {
        self.theta.len()
    }

    /// Cosine similarity between the topic distributions of documents
    /// `i` and `j`, clamped to `[0, 1]`.
    pub fn topic_cosine(&self, i: usize, j: usize) -> f64 {
        let (a, b) = (&self.theta[i], &self.theta[j]);
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            (dot / (na * nb)).clamp(0.0, 1.0)
        }
    }

    /// The `n` most probable words of topic `t` (ids, most probable first).
    pub fn top_words(&self, t: usize, n: usize) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.vocab_size as u32).collect();
        idx.sort_by(|&a, &b| {
            self.phi[t][b as usize]
                .total_cmp(&self.phi[t][a as usize])
                .then(a.cmp(&b))
        });
        idx.truncate(n);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::{encode_corpus, Tokenizer};

    /// Two clearly separated topics: phones and basketball.
    fn two_topic_corpus() -> (Vec<Vec<u32>>, usize) {
        let texts: Vec<String> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    "iphone ipad wifi screen battery apple phone tablet".to_string()
                } else {
                    "nba lakers basketball court player coach season game".to_string()
                }
            })
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (docs, vocab) = encode_corpus(&Tokenizer::keeping_stopwords(), refs);
        let v = vocab.len();
        (docs, v)
    }

    fn fit_two_topics() -> LdaModel {
        let (docs, v) = two_topic_corpus();
        LdaModel::fit(
            &docs,
            v,
            &LdaConfig {
                num_topics: 2,
                iterations: 150,
                seed: 7,
                ..Default::default()
            },
        )
    }

    #[test]
    fn theta_and_phi_are_distributions() {
        let m = fit_two_topics();
        for d in 0..m.num_docs() {
            let s: f64 = m.theta(d).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "theta[{d}] sums to {s}");
            assert!(m.theta(d).iter().all(|&p| p > 0.0));
        }
        for t in 0..m.num_topics() {
            let s: f64 = m.phi(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "phi[{t}] sums to {s}");
        }
    }

    #[test]
    fn separates_two_obvious_topics() {
        let m = fit_two_topics();
        // Same-domain documents should be much closer than cross-domain.
        let same = m.topic_cosine(0, 2);
        let cross = m.topic_cosine(0, 1);
        assert!(
            same > cross + 0.3,
            "same-domain cosine {same} should dominate cross-domain {cross}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (docs, v) = two_topic_corpus();
        let cfg = LdaConfig {
            num_topics: 2,
            iterations: 50,
            seed: 99,
            ..Default::default()
        };
        let m1 = LdaModel::fit(&docs, v, &cfg);
        let m2 = LdaModel::fit(&docs, v, &cfg);
        for d in 0..m1.num_docs() {
            assert_eq!(m1.theta(d), m2.theta(d));
        }
    }

    #[test]
    fn empty_documents_get_uniform_theta() {
        let docs = vec![vec![0, 1, 2], vec![]];
        let m = LdaModel::fit(
            &docs,
            3,
            &LdaConfig {
                num_topics: 4,
                iterations: 10,
                ..Default::default()
            },
        );
        let th = m.theta(1);
        for &p in th {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn top_words_reflect_topic_mass() {
        let m = fit_two_topics();
        // The top words of the two topics should be (mostly) disjoint.
        let a = m.top_words(0, 5);
        let b = m.top_words(1, 5);
        let overlap = a.iter().filter(|w| b.contains(w)).count();
        assert!(overlap <= 1, "topics share {overlap} of top-5 words");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_out_of_vocab_tokens() {
        LdaModel::fit(&[vec![5]], 3, &LdaConfig::default());
    }
}
