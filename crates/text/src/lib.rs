//! # icrowd-text
//!
//! Microtask similarity substrate for iCrowd (Section 3.3 and Appendix
//! D.1 of the paper). iCrowd never interprets task content directly — all
//! topical structure enters through a *similarity metric* over microtasks,
//! which the graph layer turns into the similarity graph.
//!
//! The paper lists three families of metrics, all implemented here:
//!
//! 1. **Textual** — [`JaccardSimilarity`], [`CosineTfIdf`] and the
//!    topic-based [`TopicCosine`] (backed by a from-scratch collapsed-Gibbs
//!    [`lda`] implementation), plus normalized [`EditDistanceSimilarity`].
//! 2. **Feature-vector** — [`EuclideanSimilarity`] over numeric task
//!    features (e.g. POI coordinates).
//! 3. **Classification-based** — [`ClassifierSimilarity`], a perceptron
//!    over pair features trained on labelled similar/dissimilar pairs.
//!
//! All metrics implement the [`TaskSimilarity`] trait and return scores in
//! `[0, 1]`.

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod classify;
pub mod cosine;
pub mod editdist;
pub mod euclid;
pub mod jaccard;
pub mod lda;
pub mod metric;
pub mod tfidf;
pub mod tokenize;

pub use classify::ClassifierSimilarity;
pub use cosine::{CosineTfIdf, TopicCosine};
pub use editdist::EditDistanceSimilarity;
pub use euclid::EuclideanSimilarity;
pub use jaccard::JaccardSimilarity;
pub use lda::{LdaConfig, LdaModel};
pub use metric::TaskSimilarity;
pub use tfidf::TfIdfModel;
pub use tokenize::{Tokenizer, Vocabulary};
