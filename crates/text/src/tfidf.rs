//! Corpus-level tf-idf vectorization.
//!
//! Backs the `Cos(tf-idf)` similarity of Appendix D.1: each microtask is a
//! vector of term weights `tf(t, d) * idf(t)` with
//! `idf(t) = ln((1 + N) / (1 + df(t))) + 1` (smoothed so unseen terms stay
//! finite), L2-normalized so cosine similarity is a plain dot product.

use std::collections::HashMap;

use crate::tokenize::{Tokenizer, Vocabulary};

/// A sparse, L2-normalized tf-idf document vector (term id → weight),
/// stored sorted by term id for merge-style dot products.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// Builds from unsorted `(term, weight)` pairs, merging duplicates.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(t, _)| t);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (t, w) in pairs {
            match entries.last_mut() {
                Some((lt, lw)) if *lt == t => *lw += w,
                _ => entries.push((t, w)),
            }
        }
        Self { entries }
    }

    /// The entries, sorted by term id.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The L2 norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Scales the vector to unit L2 norm (no-op on the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for (_, w) in &mut self.entries {
                *w /= n;
            }
        }
    }

    /// Dot product with another sparse vector (merge join on term ids).
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

/// A fitted tf-idf model: vocabulary, idf weights, per-document vectors.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    vocab: Vocabulary,
    idf: Vec<f64>,
    vectors: Vec<SparseVector>,
}

impl TfIdfModel {
    /// Fits tf-idf on a corpus of texts.
    pub fn fit<'a>(tokenizer: &Tokenizer, texts: impl IntoIterator<Item = &'a str>) -> Self {
        let (docs, vocab) = crate::tokenize::encode_corpus(tokenizer, texts);
        let n_docs = docs.len();
        // Document frequency per term.
        let mut df = vec![0u32; vocab.len()];
        for doc in &docs {
            let mut seen: Vec<u32> = doc.clone();
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                df[t as usize] += 1;
            }
        }
        let idf: Vec<f64> = df
            .iter()
            .map(|&d| ((1.0 + n_docs as f64) / (1.0 + d as f64)).ln() + 1.0)
            .collect();
        let vectors = docs
            .iter()
            .map(|doc| {
                let mut tf: HashMap<u32, f64> = HashMap::new();
                for &t in doc {
                    *tf.entry(t).or_insert(0.0) += 1.0;
                }
                let mut v = SparseVector::from_pairs(
                    tf.into_iter()
                        .map(|(t, f)| (t, f * idf[t as usize]))
                        .collect(),
                );
                v.normalize();
                v
            })
            .collect();
        Self {
            vocab,
            idf,
            vectors,
        }
    }

    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The idf weight of a term id.
    pub fn idf(&self, term: u32) -> Option<f64> {
        self.idf.get(term as usize).copied()
    }

    /// The normalized tf-idf vector of document `i`.
    pub fn vector(&self, i: usize) -> &SparseVector {
        &self.vectors[i]
    }

    /// Number of fitted documents.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the model holds no documents.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Cosine similarity between fitted documents `i` and `j`, clamped to
    /// `[0, 1]` (weights are non-negative so this only guards rounding).
    pub fn cosine(&self, i: usize, j: usize) -> f64 {
        self.vectors[i].dot(&self.vectors[j]).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vector_merges_duplicates_and_sorts() {
        let v = SparseVector::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 1.5)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_product_via_merge_join() {
        let a = SparseVector::from_pairs(vec![(0, 1.0), (2, 2.0)]);
        let b = SparseVector::from_pairs(vec![(2, 3.0), (5, 1.0)]);
        assert_eq!(a.dot(&b), 6.0);
        assert_eq!(b.dot(&a), 6.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = SparseVector::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        // Zero vector stays zero without NaN.
        let mut z = SparseVector::from_pairs(vec![]);
        z.normalize();
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn identical_documents_have_cosine_one() {
        let t = Tokenizer::keeping_stopwords();
        let m = TfIdfModel::fit(&t, ["iphone wifi 32gb", "iphone wifi 32gb"]);
        assert!((m.cosine(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_documents_have_cosine_zero() {
        let t = Tokenizer::keeping_stopwords();
        let m = TfIdfModel::fit(&t, ["iphone wifi", "nba lakers"]);
        assert_eq!(m.cosine(0, 1), 0.0);
    }

    #[test]
    fn rare_terms_outweigh_common_terms() {
        // "shared" appears in every doc; "rare" only in two. Docs 0 and 1
        // share the rare term, docs 0 and 2 only the common one.
        let t = Tokenizer::keeping_stopwords();
        let m = TfIdfModel::fit(
            &t,
            ["shared rare", "shared rare", "shared other", "shared thing"],
        );
        assert!(m.cosine(0, 1) > m.cosine(0, 2));
        let shared = m.vocabulary().get("shared").unwrap();
        let rare = m.vocabulary().get("rare").unwrap();
        assert!(m.idf(rare).unwrap() > m.idf(shared).unwrap());
    }

    #[test]
    fn empty_document_is_harmless() {
        let t = Tokenizer::new();
        let m = TfIdfModel::fit(&t, ["iphone wifi", ""]);
        assert_eq!(m.cosine(0, 1), 0.0);
        assert_eq!(m.vector(1).nnz(), 0);
    }
}
