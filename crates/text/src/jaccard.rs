//! Jaccard similarity over token sets (Section 3.3 case 1).
//!
//! Each microtask is viewed as a *set* of tokens; the similarity of two
//! tasks is `|A ∩ B| / |A ∪ B|`. This is the metric the paper uses for its
//! worked example: the edge between `t2` and `t7` in Figure 3 carries
//! weight 4/7, the Jaccard similarity of their token sets in Table 1.

use icrowd_core::task::{TaskId, TaskSet};

use crate::metric::TaskSimilarity;
use crate::tokenize::Tokenizer;

/// Precomputed token-set Jaccard similarity over a task set.
#[derive(Debug, Clone)]
pub struct JaccardSimilarity {
    /// Sorted, deduplicated token-id sets per task.
    sets: Vec<Vec<u32>>,
}

impl JaccardSimilarity {
    /// Tokenizes every task and stores sorted token-id sets.
    pub fn new(tasks: &TaskSet, tokenizer: &Tokenizer) -> Self {
        let mut vocab = crate::tokenize::Vocabulary::new();
        let sets = tasks
            .iter()
            .map(|t| {
                let mut ids = vocab.encode(tokenizer, &t.text);
                ids.sort_unstable();
                ids.dedup();
                ids
            })
            .collect();
        Self { sets }
    }

    /// The token-set size of `task`.
    pub fn set_size(&self, task: TaskId) -> usize {
        self.sets[task.index()].len()
    }

    /// Intersection size of two sorted, deduplicated id slices.
    fn intersection_size(a: &[u32], b: &[u32]) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

impl TaskSimilarity for JaccardSimilarity {
    fn similarity(&self, a: TaskId, b: TaskId) -> f64 {
        let (sa, sb) = (&self.sets[a.index()], &self.sets[b.index()]);
        if sa.is_empty() && sb.is_empty() {
            // Two empty token sets are conventionally identical.
            return 1.0;
        }
        let inter = Self::intersection_size(sa, sb);
        let union = sa.len() + sb.len() - inter;
        inter as f64 / union as f64
    }

    fn name(&self) -> &str {
        "Jaccard"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::Microtask;

    fn task_set(texts: &[&str]) -> TaskSet {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| Microtask::binary(TaskId(i as u32), *t))
            .collect()
    }

    /// The paper's Table 1 token sets for t2 and t7:
    /// t2 = {ipod touch 32gb wifi headphone}, t7 = {ipod touch 32gb wifi case black}.
    /// Intersection = 4, union = 7 → Figure 3's 4/7 edge weight.
    #[test]
    fn reproduces_figure3_edge_t2_t7() {
        let ts = task_set(&[
            "ipod touch 32GB WiFi headphone",
            "ipod touch 32GB WiFi case black",
        ]);
        let j = JaccardSimilarity::new(&ts, &Tokenizer::keeping_stopwords());
        let s = j.similarity(TaskId(0), TaskId(1));
        assert!((s - 4.0 / 7.0).abs() < 1e-12, "expected 4/7, got {s}");
    }

    #[test]
    fn identical_and_disjoint_tasks() {
        let ts = task_set(&["iphone 4 wifi", "iphone 4 wifi", "samsung galaxy"]);
        let j = JaccardSimilarity::new(&ts, &Tokenizer::keeping_stopwords());
        assert_eq!(j.similarity(TaskId(0), TaskId(1)), 1.0);
        assert_eq!(j.similarity(TaskId(0), TaskId(2)), 0.0);
        assert_eq!(j.similarity(TaskId(0), TaskId(0)), 1.0);
    }

    #[test]
    fn duplicate_tokens_do_not_inflate_similarity() {
        let ts = task_set(&["ipod ipod ipod nano", "ipod nano"]);
        let j = JaccardSimilarity::new(&ts, &Tokenizer::keeping_stopwords());
        assert_eq!(j.similarity(TaskId(0), TaskId(1)), 1.0);
    }

    #[test]
    fn empty_texts_are_identical_by_convention() {
        let ts = task_set(&["", ""]);
        let j = JaccardSimilarity::new(&ts, &Tokenizer::new());
        assert_eq!(j.similarity(TaskId(0), TaskId(1)), 1.0);
        assert_eq!(j.set_size(TaskId(0)), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_text() -> impl Strategy<Value = String> {
            proptest::collection::vec("[a-e]{1,3}", 0..8).prop_map(|v| v.join(" "))
        }

        proptest! {
            #[test]
            fn symmetric_and_bounded(a in arb_text(), b in arb_text()) {
                let ts = task_set(&[a.as_str(), b.as_str()]);
                let j = JaccardSimilarity::new(&ts, &Tokenizer::keeping_stopwords());
                let ab = j.similarity(TaskId(0), TaskId(1));
                let ba = j.similarity(TaskId(1), TaskId(0));
                prop_assert!((ab - ba).abs() < 1e-15);
                prop_assert!((0.0..=1.0).contains(&ab));
            }

            #[test]
            fn self_similarity_is_one(a in arb_text()) {
                let ts = task_set(&[a.as_str()]);
                let j = JaccardSimilarity::new(&ts, &Tokenizer::keeping_stopwords());
                prop_assert_eq!(j.similarity(TaskId(0), TaskId(0)), 1.0);
            }
        }
    }
}
