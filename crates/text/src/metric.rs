//! The [`TaskSimilarity`] trait — the contract between task content and
//! the similarity graph.

use icrowd_core::task::{TaskId, TaskSet};

/// A similarity metric over microtasks.
///
/// Implementations precompute any corpus-level state (idf weights, topic
/// distributions, feature scales) at construction from the full
/// [`TaskSet`]; `similarity` is then a cheap pairwise lookup so the graph
/// builder can evaluate `O(|T|^2)` (or neighbor-capped) pairs.
///
/// Scores must lie in `[0, 1]`, with `1` meaning identical and `0`
/// unrelated. Symmetry (`sim(a, b) == sim(b, a)`) is required; the graph
/// layer debug-asserts it.
pub trait TaskSimilarity {
    /// Similarity between tasks `a` and `b`, in `[0, 1]`.
    fn similarity(&self, a: TaskId, b: TaskId) -> f64;

    /// Short human-readable name used in experiment output
    /// (e.g. `"Jaccard"`, `"Cos(tf-idf)"`, `"Cos(topic)"`).
    fn name(&self) -> &str;
}

/// Blanket impl so `Box<dyn TaskSimilarity>` is itself a metric.
impl TaskSimilarity for Box<dyn TaskSimilarity + Send + Sync> {
    fn similarity(&self, a: TaskId, b: TaskId) -> f64 {
        (**self).similarity(a, b)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// A metric defined by an explicit dense matrix — handy in tests and for
/// wiring the paper's worked example (Figure 3) exactly.
#[derive(Debug, Clone)]
pub struct MatrixSimilarity {
    n: usize,
    /// Row-major `n x n` similarity values.
    values: Vec<f64>,
    name: String,
}

impl MatrixSimilarity {
    /// Builds from a row-major `n x n` matrix.
    ///
    /// # Panics
    /// Panics if `values.len() != n * n`, if any value is outside `[0, 1]`,
    /// or if the matrix is not symmetric.
    pub fn new(n: usize, values: Vec<f64>, name: impl Into<String>) -> Self {
        assert_eq!(values.len(), n * n, "matrix must be n x n");
        for i in 0..n {
            for j in 0..n {
                let v = values[i * n + j];
                assert!((0.0..=1.0).contains(&v), "similarity out of range");
                assert!(
                    (v - values[j * n + i]).abs() < 1e-12,
                    "similarity matrix must be symmetric"
                );
            }
        }
        Self {
            n,
            values,
            name: name.into(),
        }
    }

    /// Builds a matrix metric from a sparse edge list over `tasks`,
    /// defaulting missing pairs to `0` and the diagonal to `1`.
    pub fn from_edges(
        tasks: &TaskSet,
        edges: &[(TaskId, TaskId, f64)],
        name: impl Into<String>,
    ) -> Self {
        let n = tasks.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            values[i * n + i] = 1.0;
        }
        for &(a, b, s) in edges {
            assert!((0.0..=1.0).contains(&s), "similarity out of range");
            values[a.index() * n + b.index()] = s;
            values[b.index() * n + a.index()] = s;
        }
        Self {
            n,
            values,
            name: name.into(),
        }
    }
}

impl TaskSimilarity for MatrixSimilarity {
    fn similarity(&self, a: TaskId, b: TaskId) -> f64 {
        assert!(
            a.index() < self.n && b.index() < self.n,
            "task out of range"
        );
        self.values[a.index() * self.n + b.index()]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::Microtask;

    fn tasks(n: u32) -> TaskSet {
        (0..n)
            .map(|i| Microtask::binary(TaskId(i), format!("t{i}")))
            .collect()
    }

    #[test]
    fn matrix_metric_round_trips() {
        let m = MatrixSimilarity::new(2, vec![1.0, 0.5, 0.5, 1.0], "test");
        assert_eq!(m.similarity(TaskId(0), TaskId(1)), 0.5);
        assert_eq!(m.similarity(TaskId(1), TaskId(0)), 0.5);
        assert_eq!(m.name(), "test");
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        MatrixSimilarity::new(2, vec![1.0, 0.4, 0.5, 1.0], "bad");
    }

    #[test]
    fn from_edges_fills_defaults() {
        let ts = tasks(3);
        let m = MatrixSimilarity::from_edges(&ts, &[(TaskId(0), TaskId(2), 0.7)], "edges");
        assert_eq!(m.similarity(TaskId(0), TaskId(2)), 0.7);
        assert_eq!(m.similarity(TaskId(2), TaskId(0)), 0.7);
        assert_eq!(m.similarity(TaskId(0), TaskId(1)), 0.0);
        assert_eq!(m.similarity(TaskId(1), TaskId(1)), 1.0);
    }

    #[test]
    fn boxed_metric_delegates() {
        let boxed: Box<dyn TaskSimilarity + Send + Sync> =
            Box::new(MatrixSimilarity::new(1, vec![1.0], "inner"));
        assert_eq!(boxed.name(), "inner");
        assert_eq!(boxed.similarity(TaskId(0), TaskId(0)), 1.0);
    }
}
