//! Euclidean feature similarity (Section 3.3 case 2).
//!
//! For microtasks with numeric feature vectors (the paper's example:
//! verifying POI place names, where the feature is the POI coordinate),
//! similarity is `1 - dist(t_i, t_j) / tau_d`, where `tau_d` is the
//! maximum pairwise distance across the task set — exactly the paper's
//! normalization.

use icrowd_core::task::{TaskId, TaskSet};

use crate::metric::TaskSimilarity;

/// Euclidean-distance similarity over task feature vectors.
#[derive(Debug, Clone)]
pub struct EuclideanSimilarity {
    features: Vec<Vec<f64>>,
    /// `tau_d`: the maximum pairwise distance (normalization constant).
    tau: f64,
}

impl EuclideanSimilarity {
    /// Builds the metric, computing `tau_d` over all task pairs.
    ///
    /// # Panics
    /// Panics if any task lacks features or if feature dimensions differ.
    pub fn new(tasks: &TaskSet) -> Self {
        let features: Vec<Vec<f64>> = tasks
            .iter()
            .map(|t| {
                t.features
                    .clone()
                    .unwrap_or_else(|| panic!("task {} has no feature vector", t.id))
            })
            .collect();
        if let Some(first) = features.first() {
            let d = first.len();
            assert!(
                features.iter().all(|f| f.len() == d),
                "all feature vectors must share one dimension"
            );
        }
        let mut tau = 0.0f64;
        for i in 0..features.len() {
            for j in (i + 1)..features.len() {
                tau = tau.max(Self::distance(&features[i], &features[j]));
            }
        }
        Self { features, tau }
    }

    /// The normalization constant `tau_d` (max pairwise distance).
    pub fn tau(&self) -> f64 {
        self.tau
    }

    fn distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

impl TaskSimilarity for EuclideanSimilarity {
    fn similarity(&self, a: TaskId, b: TaskId) -> f64 {
        if self.tau == 0.0 {
            // All tasks coincide: everything is maximally similar.
            return 1.0;
        }
        let d = Self::distance(&self.features[a.index()], &self.features[b.index()]);
        (1.0 - d / self.tau).clamp(0.0, 1.0)
    }

    fn name(&self) -> &str {
        "Euclidean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::Microtask;

    fn poi_tasks(points: &[(f64, f64)]) -> TaskSet {
        points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                Microtask::binary(TaskId(i as u32), format!("poi {i}")).with_features(vec![x, y])
            })
            .collect()
    }

    #[test]
    fn farthest_pair_has_zero_similarity() {
        let ts = poi_tasks(&[(0.0, 0.0), (3.0, 4.0), (1.0, 1.0)]);
        let m = EuclideanSimilarity::new(&ts);
        assert_eq!(m.tau(), 5.0);
        assert_eq!(m.similarity(TaskId(0), TaskId(1)), 0.0);
        assert_eq!(m.similarity(TaskId(0), TaskId(0)), 1.0);
    }

    #[test]
    fn closer_points_are_more_similar() {
        let ts = poi_tasks(&[(0.0, 0.0), (1.0, 0.0), (10.0, 0.0)]);
        let m = EuclideanSimilarity::new(&ts);
        assert!(m.similarity(TaskId(0), TaskId(1)) > m.similarity(TaskId(0), TaskId(2)));
    }

    #[test]
    fn coincident_tasks_are_fully_similar() {
        let ts = poi_tasks(&[(2.0, 2.0), (2.0, 2.0)]);
        let m = EuclideanSimilarity::new(&ts);
        assert_eq!(m.similarity(TaskId(0), TaskId(1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "has no feature vector")]
    fn missing_features_rejected() {
        let ts: TaskSet = [Microtask::binary(TaskId(0), "no features")]
            .into_iter()
            .collect();
        EuclideanSimilarity::new(&ts);
    }

    #[test]
    #[should_panic(expected = "share one dimension")]
    fn mixed_dimensions_rejected() {
        let ts: TaskSet = [
            Microtask::binary(TaskId(0), "a").with_features(vec![1.0]),
            Microtask::binary(TaskId(1), "b").with_features(vec![1.0, 2.0]),
        ]
        .into_iter()
        .collect();
        EuclideanSimilarity::new(&ts);
    }
}
