//! Log-bucketed, mergeable latency histograms (HDR-style).
//!
//! Every p50/p99 the bench gates read comes from one of these — the
//! old bounded reservoir gave noisy tail estimates exactly where the
//! gates live. A [`LogHistogram`] instead buckets each recorded value
//! by `(octave, mantissa-high-bits)`:
//!
//! * values below `2^SUB_BITS` (128 ns) are stored **exactly**, one
//!   bucket per value;
//! * larger values keep their top `SUB_BITS + 1` significant bits, so
//!   each power of two is split into 128 sub-buckets and the bucket
//!   width is at most `value / 128` — reporting the bucket midpoint
//!   bounds the relative quantile error at `1/256 ≈ 0.4%`, comfortably
//!   inside the advertised ≤1%.
//!
//! The structure is **deterministic** (no sampling, no randomness) and
//! **merge is associative and commutative**: bucket counts add, sums
//! add, min/max take extrema. That makes per-thread or per-shard
//! histograms exact to collect and fold in any order, and lets
//! `icrowd obs diff` reconstruct and compare quantiles from the JSONL
//! export of two different runs.
//!
//! Buckets are kept sparse (a `BTreeMap`) so an export line only
//! carries occupied buckets and iteration order is stable.

use std::collections::BTreeMap;

/// Sub-bucket resolution: each power of two is split into
/// `2^SUB_BITS = 128` buckets.
pub const SUB_BITS: u32 = 7;

const SUB_COUNT: u64 = 1 << SUB_BITS;
const SUB_MASK: u64 = SUB_COUNT - 1;

/// Bucket index for a recorded value. Monotonic in `v`, so order
/// statistics over buckets equal order statistics over values (up to
/// ties inside one bucket).
#[inline]
fn bucket_index(v: u64) -> u16 {
    if v < SUB_COUNT {
        return v as u16;
    }
    let e = 63 - v.leading_zeros(); // e >= SUB_BITS
    let seg = e - SUB_BITS + 1;
    let sub = (v >> (e - SUB_BITS)) & SUB_MASK;
    ((u64::from(seg) << SUB_BITS) | sub) as u16
}

/// The smallest value mapping to bucket `idx`.
#[inline]
fn bucket_lower(idx: u16) -> u64 {
    let idx = u64::from(idx);
    let seg = idx >> SUB_BITS;
    if seg == 0 {
        return idx;
    }
    let sub = idx & SUB_MASK;
    (SUB_COUNT | sub) << (seg - 1)
}

/// The largest value mapping to bucket `idx`.
#[inline]
fn bucket_upper(idx: u16) -> u64 {
    let seg = u64::from(idx) >> SUB_BITS;
    if seg == 0 {
        return u64::from(idx);
    }
    bucket_lower(idx) + ((1u64 << (seg - 1)) - 1)
}

/// The representative (midpoint) value reported for bucket `idx`.
#[inline]
fn bucket_mid(idx: u16) -> u64 {
    let lower = bucket_lower(idx);
    lower + (bucket_upper(idx) - lower) / 2
}

/// A deterministic, mergeable, log-bucketed histogram of `u64` samples
/// (nanoseconds, in this workspace). See the module docs for the
/// encoding and error bound.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogHistogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<u16, u64>,
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in one bucket update.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        *self.buckets.entry(bucket_index(v)).or_insert(0) += n;
    }

    /// Folds `other` into `self`. Associative and commutative: merging
    /// per-thread histograms in any order yields identical buckets.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }

    /// Recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Occupied `(bucket index, count)` pairs in ascending index order.
    pub fn buckets(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.buckets.iter().map(|(&i, &n)| (i, n))
    }

    /// Rebuilds a histogram from exported parts — the `icrowd obs`
    /// analyzer's path from a JSONL `hist` line back to quantiles.
    /// `min`/`max` are trusted as recorded; bucket counts drive
    /// `count`, and `sum` is carried verbatim.
    #[must_use]
    pub fn from_parts(
        min: u64,
        max: u64,
        sum: u64,
        buckets: impl IntoIterator<Item = (u16, u64)>,
    ) -> Self {
        let buckets: BTreeMap<u16, u64> = buckets.into_iter().filter(|&(_, n)| n > 0).collect();
        let count = buckets.values().sum();
        Self {
            count,
            sum,
            min,
            max,
            buckets,
        }
    }

    /// The histogram of everything recorded since `baseline` was
    /// cloned from this same series (bucket-wise subtraction — exact
    /// because bucket counts are monotonic). Window `min`/`max` are
    /// reconstructed from the surviving buckets' bounds, so they are
    /// bucket-resolution approximations rather than exact extrema.
    #[must_use]
    pub fn diff(&self, baseline: &LogHistogram) -> LogHistogram {
        let mut buckets = BTreeMap::new();
        for (&idx, &n) in &self.buckets {
            let base = baseline.buckets.get(&idx).copied().unwrap_or(0);
            if n > base {
                buckets.insert(idx, n - base);
            }
        }
        let count: u64 = buckets.values().sum();
        let min = buckets.keys().next().map_or(0, |&i| bucket_lower(i));
        let max = buckets.keys().next_back().map_or(0, |&i| bucket_upper(i));
        LogHistogram {
            count,
            sum: self.sum.saturating_sub(baseline.sum),
            min,
            max,
            buckets,
        }
    }

    /// The quantile-`p` value (`p` in `[0,1]`): the bucket midpoint of
    /// the rank-`⌈p·count⌉` sample, clamped to the exact recorded
    /// `[min, max]`. Within ≤1% relative error of the identically
    /// ranked sample of an exact sort (test-asserted).
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (&idx, &n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_round_trips_bounds() {
        for v in [0u64, 1, 5, 127, 128, 129, 255, 256, 1000, 123_456, u64::MAX] {
            let idx = bucket_index(v);
            assert!(
                bucket_lower(idx) <= v && v <= bucket_upper(idx),
                "v={v} idx={idx} bounds [{}, {}]",
                bucket_lower(idx),
                bucket_upper(idx)
            );
        }
    }

    #[test]
    fn bucket_index_is_monotonic() {
        let mut prev = 0u16;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotonic at v={v}");
            prev = idx;
            v = v * 3 / 2 + 1;
        }
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        let mut v = 1u64;
        while v < 1 << 60 {
            let idx = bucket_index(v);
            let width = bucket_upper(idx) - bucket_lower(idx);
            // Midpoint error is at most half the width.
            assert!(
                (width as f64 / 2.0) <= 0.01 * v as f64 || width == 0,
                "v={v} width={width}"
            );
            v = v * 7 / 4 + 3;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..128u64 {
            h.record(v);
        }
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let q = h.percentile(p);
            let rank = ((p * 128.0).ceil() as u64).clamp(1, 128);
            assert_eq!(q, rank - 1, "p={p}");
        }
    }

    #[test]
    fn merge_equals_bulk_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i + 17;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        // Commutativity.
        let mut flipped = b;
        flipped.merge(&a);
        assert_eq!(flipped, whole);
    }

    #[test]
    fn diff_recovers_the_window() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let baseline = h.clone();
        for v in [1000u64, 2000, 4000] {
            h.record(v);
        }
        let w = h.diff(&baseline);
        assert_eq!(w.count(), 3);
        assert_eq!(w.sum(), 7000);
        assert!(w.percentile(0.5) >= 1980 && w.percentile(0.5) <= 2020);
        assert_eq!(h.diff(&h).count(), 0);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = LogHistogram::new();
        for v in [3u64, 999, 70_000, 70_001, 5_000_000] {
            h.record(v);
        }
        let back = LogHistogram::from_parts(h.min(), h.max(), h.sum(), h.buckets());
        assert_eq!(back, h);
    }
}
