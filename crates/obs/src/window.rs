//! Time-windowed metric snapshots for live scraping.
//!
//! Cumulative totals in the registry never reset; a **window** is the
//! delta between two consecutive [`crate::window_advance`] calls:
//! counter deltas, per-span histograms reconstructed by bucket-wise
//! subtraction (exact — bucket counts are monotonic), and gauges as
//! `{last, min, max}` observed since the previous window mark. Each
//! advance bumps a monotonic sequence number and becomes the new
//! baseline, so a scraper (the `METRICS` protocol verb, or the
//! `icrowd serve --metrics-every` emitter) always reads
//! "what happened since you last looked" without ever losing data to
//! a reset race.

use crate::{write_json_escaped, write_json_f64, SpanSummary};

/// One gauge's windowed view: the last written value plus the extremes
/// observed during the window (a burst's peak queue depth survives
/// even if the last write landed after the burst drained).
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSummary {
    /// Gauge name.
    pub name: String,
    /// Most recently written value.
    pub last: f64,
    /// Smallest value written during the window.
    pub min: f64,
    /// Largest value written during the window.
    pub max: f64,
}

/// Everything that happened between two window marks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowReport {
    /// Monotonic window sequence number (1 = first window).
    pub seq: u64,
    /// Window length, nanoseconds.
    pub dur_ns: u64,
    /// Spans active during the window (count > 0), with quantiles
    /// computed over the window's samples only.
    pub spans: Vec<SpanSummary>,
    /// Counters that moved during the window, as deltas.
    pub counters: Vec<(String, u64)>,
    /// All gauges, with window min/max/last.
    pub gauges: Vec<GaugeSummary>,
}

impl WindowReport {
    /// Serializes the window as one JSON object (no trailing newline):
    /// `{"type":"window","seq":...,"dur_ns":...,"spans":[...],
    /// "counters":[...],"gauges":[...]}`. The same encoder serves the
    /// `--metrics-every` JSONL stream and the `METRICS` verb.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"window\",\"seq\":{},\"dur_ns\":{},\"spans\":[",
            self.seq, self.dur_ns
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_escaped(&mut out, &s.name);
            out.push_str(&format!(
                ",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                s.count, s.total_ns, s.min_ns, s.max_ns, s.p50_ns, s.p99_ns
            ));
        }
        out.push_str("],\"counters\":[");
        for (i, (name, delta)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_escaped(&mut out, name);
            out.push_str(&format!(",\"delta\":{delta}}}"));
        }
        out.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_escaped(&mut out, &g.name);
            out.push_str(",\"last\":");
            write_json_f64(&mut out, g.last);
            out.push_str(",\"min\":");
            write_json_f64(&mut out, g.min);
            out.push_str(",\"max\":");
            write_json_f64(&mut out, g.max);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}
