//! Zero-dependency tracing and metrics for the iCrowd workspace.
//!
//! The paper's evaluation is entirely about *where time and assignments
//! go* — per-phase latency of the offline graph build vs. online
//! assignment (Figure 10), assignment counts per worker, early stops,
//! declined requests. This crate gives every layer a shared, process-wide
//! instrumentation sink so those numbers come from one audited registry
//! instead of ad-hoc `println!` lines:
//!
//! - **Spans** — RAII timers created with [`span!`]; each named span
//!   accumulates count / total / min / max plus a deterministic
//!   log-bucketed [`LogHistogram`] from which every exported quantile
//!   (p50/p99) is computed with ≤1% relative error. Histograms merge
//!   associatively, so per-thread or per-shard series fold exactly.
//! - **Counters** — monotonic `u64` totals ([`counter_add`]): assignments
//!   issued, estimator cache hits, PPR iterations, HIT lifecycle
//!   transitions.
//! - **Gauges** — `f64` values ([`gauge_set`]) tracked as
//!   last/window-min/window-max, so burst peaks survive scrapes.
//! - **Events** — pre-serialized JSON payloads ([`event_json`]) bridging
//!   structured logs (the platform's `EventLog`) into the same sink.
//! - **Traces** — request-scoped span trees ([`trace_begin`],
//!   [`TraceSpan`]): the serving layer opens a root span per traced
//!   protocol request and engine/driver/journal attach causally linked
//!   children, exported as JSONL `trace` records.
//! - **Windows** — [`window_advance`] snapshots everything that
//!   happened since the previous advance (counter deltas, windowed
//!   histograms, gauge extremes) for live scraping (`METRICS` verb,
//!   `icrowd serve --metrics-every`). Totals reset never; windows are
//!   deltas, monotonically sequenced.
//!
//! Telemetry is **off by default** and the disabled path is free: no
//! allocation, no clock read, no lock — a single relaxed atomic load
//! (asserted by the `noop_alloc` integration test, which covers the
//! trace path too). Exports are deterministic: registries are
//! `BTreeMap`s so JSONL lines and the summary table come out in stable
//! order, and quantiles come from deterministic bucketing, not
//! sampling.
//!
//! The crate is `std`-only by design — it must stay usable from every
//! workspace crate without dragging in the vendored serde stack, so JSON
//! is written by hand (names and payloads are escaped per RFC 8259).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

mod hist;
mod trace;
mod window;

pub use hist::{LogHistogram, SUB_BITS};
pub use trace::{trace_begin, TraceEvent, TraceGuard, TraceSpan};
pub use window::{GaugeSummary, WindowReport};

/// Global on/off switch. Relaxed ordering is sufficient: the flag only
/// gates *whether* to record, never synchronizes data (the registry
/// mutex does that).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Hard cap on retained [`event_json`] payloads; overflow is counted,
/// not silently dropped.
const MAX_EVENTS: usize = 100_000;

/// Hard cap on retained [`TraceEvent`]s; overflow is counted.
const MAX_TRACE_EVENTS: usize = 200_000;

fn registry() -> MutexGuard<'static, Inner> {
    static REGISTRY: OnceLock<Mutex<Inner>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Inner::default()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Default)]
struct Inner {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeStat>,
    events: Vec<(String, String)>,
    events_dropped: u64,
    traces: Vec<TraceEvent>,
    traces_dropped: u64,
    /// Window baselines: cumulative state at the previous
    /// [`window_advance`] mark.
    win_spans: BTreeMap<String, LogHistogram>,
    win_counters: BTreeMap<String, u64>,
    win_seq: u64,
    win_mark: Option<Instant>,
}

struct SpanStat {
    total_ns: u64,
    hist: LogHistogram,
}

#[derive(Clone, Copy)]
struct GaugeStat {
    last: f64,
    win_min: f64,
    win_max: f64,
}

impl SpanStat {
    fn new() -> Self {
        Self {
            total_ns: 0,
            hist: LogHistogram::new(),
        }
    }

    fn record(&mut self, ns: u64) {
        self.total_ns = self.total_ns.saturating_add(ns);
        self.hist.record(ns);
    }

    fn summary(&self, name: &str) -> SpanSummary {
        SpanSummary {
            name: name.to_owned(),
            count: self.hist.count(),
            total_ns: self.total_ns,
            min_ns: self.hist.min(),
            max_ns: self.hist.max(),
            p50_ns: self.hist.percentile(0.50),
            p99_ns: self.hist.percentile(0.99),
        }
    }
}

/// Summarizes a windowed histogram the same way a cumulative span is
/// summarized (total from the histogram's sum, since the window has no
/// separate total ledger).
fn hist_summary(name: &str, hist: &LogHistogram) -> SpanSummary {
    SpanSummary {
        name: name.to_owned(),
        count: hist.count(),
        total_ns: hist.sum(),
        min_ns: hist.min(),
        max_ns: hist.max(),
        p50_ns: hist.percentile(0.50),
        p99_ns: hist.percentile(0.99),
    }
}

/// Aggregate statistics for one named span, as exported.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name (e.g. `"ppr.solve"`).
    pub name: String,
    /// Number of recorded executions.
    pub count: u64,
    /// Summed duration over all executions, nanoseconds.
    pub total_ns: u64,
    /// Fastest execution, nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Slowest execution, nanoseconds.
    pub max_ns: u64,
    /// Median execution, nanoseconds (histogram-derived, ≤1% error).
    pub p50_ns: u64,
    /// 99th-percentile execution, nanoseconds (histogram-derived).
    pub p99_ns: u64,
}

/// A point-in-time copy of the whole registry, for tests and exporters.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Per-span aggregates, in name order.
    pub spans: Vec<SpanSummary>,
    /// Counter totals, in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values (last/window-min/window-max), in name order.
    pub gauges: Vec<GaugeSummary>,
    /// Bridged `(kind, json payload)` events, in arrival order.
    pub events: Vec<(String, String)>,
    /// Events discarded after the retention cap was hit.
    pub events_dropped: u64,
    /// Completed trace spans, in completion order.
    pub traces: Vec<TraceEvent>,
    /// Trace spans discarded after the retention cap was hit.
    pub traces_dropped: u64,
}

// ---------------------------------------------------------------------
// Control
// ---------------------------------------------------------------------

/// Turns telemetry collection on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns telemetry collection off. In-flight [`Span`] guards created
/// while enabled still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether telemetry is currently collected. Callers pay only this
/// relaxed load on the disabled path; use it to gate instrumentation
/// that must allocate (e.g. `format!`-built counter names).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every span, counter, gauge, event, trace, and window
/// baseline. The enable flag is untouched.
pub fn reset() {
    *registry() = Inner::default();
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// RAII timer: records the elapsed time under its span name on drop.
/// When telemetry is disabled at creation the guard holds nothing —
/// no clock read, no allocation, and `Drop` is a no-op.
#[must_use = "a span guard times until it is dropped; binding it to _ drops it immediately"]
pub struct Span {
    armed: Option<(&'static str, Instant)>,
}

impl Span {
    /// Starts a span timer named `name` (no-op when disabled).
    pub fn start(name: &'static str) -> Self {
        let armed = is_enabled().then(|| (name, Instant::now()));
        Span { armed }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, started)) = self.armed.take() {
            record_span_ns(name, started.elapsed().as_nanos() as u64);
        }
    }
}

/// Times the enclosing scope: `let _guard = span!("ppr.solve");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::start($name)
    };
}

/// Records one execution of `name` taking `ns` nanoseconds. [`Span`]
/// calls this on drop; exposed for pre-measured durations.
pub fn record_span_ns(name: &str, ns: u64) {
    if !is_enabled() {
        return;
    }
    registry()
        .spans
        .entry(name.to_owned())
        .or_insert_with(SpanStat::new)
        .record(ns);
}

/// A copy of one span's full histogram (`None` if never recorded) —
/// the mergeable source behind its exported quantiles.
pub fn span_histogram(name: &str) -> Option<LogHistogram> {
    registry().spans.get(name).map(|s| s.hist.clone())
}

// ---------------------------------------------------------------------
// Counters, gauges, events, traces
// ---------------------------------------------------------------------

/// Adds `delta` to the monotonic counter `name` (no-op when disabled).
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    *registry().counters.entry(name.to_owned()).or_insert(0) += delta;
}

/// Sets the gauge `name` to `value` (no-op when disabled). The last
/// write wins for the cumulative view; the current window additionally
/// tracks the min/max written since the previous [`window_advance`].
pub fn gauge_set(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry();
    match reg.gauges.get_mut(name) {
        Some(g) => {
            g.last = value;
            g.win_min = g.win_min.min(value);
            g.win_max = g.win_max.max(value);
        }
        None => {
            reg.gauges.insert(
                name.to_owned(),
                GaugeStat {
                    last: value,
                    win_min: value,
                    win_max: value,
                },
            );
        }
    }
}

/// Bridges a pre-serialized JSON object into the sink under `kind`
/// (no-op when disabled). `payload` must be a complete JSON value; it
/// is embedded verbatim in the export as the line's `"data"` field.
/// Retention is capped at `MAX_EVENTS`; overflow increments the
/// `events_dropped` tally instead of growing without bound.
pub fn event_json(kind: &str, payload: &str) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry();
    if reg.events.len() >= MAX_EVENTS {
        reg.events_dropped += 1;
    } else {
        reg.events.push((kind.to_owned(), payload.to_owned()));
    }
}

/// Appends a completed trace span (called by the trace guards' `Drop`).
/// Bounded like events; overflow is tallied.
pub(crate) fn push_trace_event(ev: TraceEvent) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry();
    if reg.traces.len() >= MAX_TRACE_EVENTS {
        reg.traces_dropped += 1;
    } else {
        reg.traces.push(ev);
    }
}

// ---------------------------------------------------------------------
// Windows
// ---------------------------------------------------------------------

/// Closes the current metrics window and opens the next one: returns
/// everything recorded since the previous advance (or since the first
/// record, for window 1) and re-baselines. Counters report deltas,
/// spans report windowed histogram summaries, gauges report
/// last/min/max and have their window extremes reset to the last
/// value. Cumulative totals are untouched — windows "reset" only in
/// the sense that each advance starts a fresh delta, monotonically
/// sequenced.
pub fn window_advance() -> WindowReport {
    let mut reg = registry();
    let now = Instant::now();
    let dur_ns = reg
        .win_mark
        .map_or(0, |mark| now.duration_since(mark).as_nanos() as u64);
    let mut spans = Vec::new();
    let mut new_base_spans = BTreeMap::new();
    for (name, stat) in &reg.spans {
        let base = reg.win_spans.get(name);
        let windowed = match base {
            Some(b) => stat.hist.diff(b),
            None => stat.hist.clone(),
        };
        if !windowed.is_empty() {
            spans.push(hist_summary(name, &windowed));
        }
        new_base_spans.insert(name.clone(), stat.hist.clone());
    }
    let mut counters = Vec::new();
    for (name, &value) in &reg.counters {
        let delta = value - reg.win_counters.get(name).copied().unwrap_or(0);
        if delta > 0 {
            counters.push((name.clone(), delta));
        }
    }
    let mut gauges = Vec::new();
    for (name, g) in &mut reg.gauges {
        gauges.push(GaugeSummary {
            name: name.clone(),
            last: g.last,
            min: g.win_min,
            max: g.win_max,
        });
        g.win_min = g.last;
        g.win_max = g.last;
    }
    reg.win_spans = new_base_spans;
    reg.win_counters = reg.counters.clone();
    reg.win_seq += 1;
    reg.win_mark = Some(now);
    WindowReport {
        seq: reg.win_seq,
        dur_ns,
        spans,
        counters,
        gauges,
    }
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

/// Copies the registry out for inspection.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    Snapshot {
        spans: reg.spans.iter().map(|(n, s)| s.summary(n)).collect(),
        counters: reg.counters.iter().map(|(n, v)| (n.clone(), *v)).collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(n, g)| GaugeSummary {
                name: n.clone(),
                last: g.last,
                min: g.win_min,
                max: g.win_max,
            })
            .collect(),
        events: reg.events.clone(),
        events_dropped: reg.events_dropped,
        traces: reg.traces.clone(),
        traces_dropped: reg.traces_dropped,
    }
}

/// The current value of counter `name` (0 if never touched).
pub fn counter_value(name: &str) -> u64 {
    registry().counters.get(name).copied().unwrap_or(0)
}

pub(crate) fn write_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Serializes the registry as JSON lines, in section order:
///
/// 1. spans — `{"type":"span","name":...,"count":...,"total_ns":...,
///    "min_ns":...,"max_ns":...,"p50_ns":...,"p99_ns":...}`
/// 2. histograms — `{"type":"hist","name":...,"sub_bits":7,
///    "count":...,"sum":...,"min":...,"max":...,
///    "buckets":[[index,count],...]}` — the mergeable source the
///    `icrowd obs report|diff` analyzer reconstructs quantiles from
/// 3. counters, gauges (`value`/`min`/`max`), traces
///    (`{"type":"trace","trace":...,"span":...,"parent":...,
///    "name":...,"start_ns":...,"dur_ns":...}`), bridged events
///
/// Spans/hists/counters/gauges are name-sorted; traces and events are
/// in arrival order. Overflow tallies append as counters.
pub fn export_jsonl() -> String {
    let reg = registry();
    let mut out = String::new();
    for (name, stat) in &reg.spans {
        let s = stat.summary(name);
        out.push_str("{\"type\":\"span\",\"name\":");
        write_json_escaped(&mut out, &s.name);
        out.push_str(&format!(
            ",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}\n",
            s.count, s.total_ns, s.min_ns, s.max_ns, s.p50_ns, s.p99_ns
        ));
    }
    for (name, stat) in &reg.spans {
        if stat.hist.is_empty() {
            continue;
        }
        out.push_str("{\"type\":\"hist\",\"name\":");
        write_json_escaped(&mut out, name);
        out.push_str(&format!(
            ",\"sub_bits\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            SUB_BITS,
            stat.hist.count(),
            stat.hist.sum(),
            stat.hist.min(),
            stat.hist.max()
        ));
        for (i, (idx, n)) in stat.hist.buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{idx},{n}]"));
        }
        out.push_str("]}\n");
    }
    for (name, value) in &reg.counters {
        out.push_str("{\"type\":\"counter\",\"name\":");
        write_json_escaped(&mut out, name);
        out.push_str(&format!(",\"value\":{value}}}\n"));
    }
    for (name, g) in &reg.gauges {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        write_json_escaped(&mut out, name);
        out.push_str(",\"value\":");
        write_json_f64(&mut out, g.last);
        out.push_str(",\"min\":");
        write_json_f64(&mut out, g.win_min);
        out.push_str(",\"max\":");
        write_json_f64(&mut out, g.win_max);
        out.push_str("}\n");
    }
    for t in &reg.traces {
        out.push_str(&format!(
            "{{\"type\":\"trace\",\"trace\":{},\"span\":{},\"parent\":{},\"name\":",
            t.trace_id, t.span_id, t.parent_id
        ));
        write_json_escaped(&mut out, t.name);
        out.push_str(&format!(
            ",\"start_ns\":{},\"dur_ns\":{}}}\n",
            t.start_ns, t.dur_ns
        ));
    }
    for (kind, payload) in &reg.events {
        out.push_str("{\"type\":\"event\",\"name\":");
        write_json_escaped(&mut out, kind);
        out.push_str(",\"data\":");
        out.push_str(payload);
        out.push_str("}\n");
    }
    if reg.events_dropped > 0 {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":\"obs.events_dropped\",\"value\":{}}}\n",
            reg.events_dropped
        ));
    }
    if reg.traces_dropped > 0 {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":\"obs.traces_dropped\",\"value\":{}}}\n",
            reg.traces_dropped
        ));
    }
    out
}

/// Writes [`export_jsonl`] to `path`.
///
/// # Errors
/// Propagates file-creation and write errors.
pub fn write_jsonl(path: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(export_jsonl().as_bytes())?;
    f.flush()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders a fixed-width, human-readable table of every span, counter,
/// and gauge (times in milliseconds).
pub fn summary_table() -> String {
    let snap = snapshot();
    let mut out = String::new();
    out.push_str("== telemetry summary ==\n");
    if !snap.spans.is_empty() {
        out.push_str(&format!(
            "{:<24} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
            "span", "count", "total_ms", "min_ms", "max_ms", "p50_ms", "p99_ms"
        ));
        for s in &snap.spans {
            out.push_str(&format!(
                "{:<24} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
                s.name,
                s.count,
                fmt_ms(s.total_ns),
                fmt_ms(s.min_ns),
                fmt_ms(s.max_ns),
                fmt_ms(s.p50_ns),
                fmt_ms(s.p99_ns),
            ));
        }
    }
    if !snap.counters.is_empty() {
        out.push_str(&format!("{:<24} {:>12}\n", "counter", "value"));
        for (name, value) in &snap.counters {
            out.push_str(&format!("{name:<24} {value:>12}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str(&format!(
            "{:<24} {:>12} {:>12} {:>12}\n",
            "gauge", "last", "win_min", "win_max"
        ));
        for g in &snap.gauges {
            out.push_str(&format!(
                "{:<24} {:>12.3} {:>12.3} {:>12.3}\n",
                g.name, g.last, g.min, g.max
            ));
        }
    }
    if !snap.traces.is_empty() || snap.traces_dropped > 0 {
        out.push_str(&format!(
            "traces: {} spans recorded, {} dropped\n",
            snap.traces.len(),
            snap.traces_dropped
        ));
    }
    if !snap.events.is_empty() || snap.events_dropped > 0 {
        out.push_str(&format!(
            "events: {} recorded, {} dropped\n",
            snap.events.len(),
            snap.events_dropped
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that toggle it serialize
    /// through this lock so `cargo test`'s thread pool can't interleave
    /// enable/reset calls.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        disable();
        reset();
        {
            let _s = span!("never");
        }
        counter_add("never", 3);
        gauge_set("never", 1.0);
        event_json("never", "{}");
        {
            let _t = trace_begin(7, "never");
            let _c = TraceSpan::start("never.child");
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.events.is_empty());
        assert!(snap.traces.is_empty());
    }

    #[test]
    fn span_guard_times_scope() {
        let _g = guard();
        enable();
        reset();
        {
            let _s = span!("unit.work");
            std::hint::black_box(0u64);
        }
        {
            let _s = span!("unit.work");
        }
        disable();
        let snap = snapshot();
        let s = snap.spans.iter().find(|s| s.name == "unit.work").unwrap();
        assert_eq!(s.count, 2);
        assert!(s.min_ns <= s.p50_ns && s.p50_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
    }

    #[test]
    fn counters_accumulate_and_gauges_track_extremes() {
        let _g = guard();
        enable();
        reset();
        counter_add("c", 2);
        counter_add("c", 0); // no-op by contract
        counter_add("c", 5);
        gauge_set("g", 1.0);
        gauge_set("g", 7.5);
        gauge_set("g", 3.0);
        disable();
        assert_eq!(counter_value("c"), 7);
        let snap = snapshot();
        assert_eq!(snap.gauges.len(), 1);
        let g = &snap.gauges[0];
        assert_eq!(
            (g.name.as_str(), g.last, g.min, g.max),
            ("g", 3.0, 1.0, 7.5)
        );
    }

    #[test]
    fn percentiles_within_error_bound_of_known_distribution() {
        let _g = guard();
        enable();
        reset();
        for ns in 1..=100u64 {
            record_span_ns("dist", ns * 1000);
        }
        disable();
        let snap = snapshot();
        let s = snap.spans.iter().find(|s| s.name == "dist").unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min_ns, 1000);
        assert_eq!(s.max_ns, 100_000);
        // rank ⌈0.5·100⌉ = 50 → exact 50_000; ⌈0.99·100⌉ = 99 → 99_000.
        assert!(
            (s.p50_ns as f64 - 50_000.0).abs() <= 0.01 * 50_000.0,
            "{}",
            s.p50_ns
        );
        assert!(
            (s.p99_ns as f64 - 99_000.0).abs() <= 0.01 * 99_000.0,
            "{}",
            s.p99_ns
        );
        assert_eq!(s.total_ns, 5050 * 1000);
    }

    #[test]
    fn quantiles_stay_deterministic_and_bounded_at_scale() {
        let _g = guard();
        enable();
        reset();
        for ns in 0..20_000u64 {
            record_span_ns("big", ns);
        }
        disable();
        let snap = snapshot();
        let s = snap.spans.iter().find(|s| s.name == "big").unwrap();
        assert_eq!(s.count, 20_000);
        // Uniform 0..20_000: p50 within 1% of 9_999.
        assert!(
            (s.p50_ns as f64 - 9_999.0).abs() <= 0.01 * 9_999.0 + 1.0,
            "p50 {} too far from true median",
            s.p50_ns
        );
        assert!(s.p99_ns > s.p50_ns);
        // Re-recording the same series yields identical quantiles.
        let p50 = s.p50_ns;
        reset();
        enable();
        for ns in 0..20_000u64 {
            record_span_ns("big", ns);
        }
        disable();
        let again = snapshot();
        assert_eq!(again.spans[0].p50_ns, p50);
    }

    #[test]
    fn export_jsonl_is_sorted_and_escaped() {
        let _g = guard();
        enable();
        reset();
        record_span_ns("b.span", 10);
        record_span_ns("a.span", 20);
        counter_add("weird \"name\"\n", 1);
        gauge_set("g", 0.5);
        event_json("market", "{\"k\":1}");
        disable();
        let text = export_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        // 2 spans + 2 hists + 1 counter + 1 gauge + 1 event.
        assert_eq!(lines.len(), 7, "{text}");
        assert!(lines[0].contains("\"a.span\""), "spans sorted: {text}");
        assert!(lines[1].contains("\"b.span\""));
        assert!(lines[2].contains("\"type\":\"hist\"") && lines[2].contains("\"a.span\""));
        assert!(
            lines[3].contains("\"type\":\"hist\"") && lines[3].contains("\"buckets\":[[10,1]]")
        );
        assert!(
            lines[4].contains("weird \\\"name\\\"\\n"),
            "escaped: {text}"
        );
        assert!(lines[6].contains("\"data\":{\"k\":1}"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        let table = summary_table();
        assert!(table.contains("a.span") && table.contains("events: 1 recorded"));
    }

    #[test]
    fn event_cap_counts_drops() {
        let _g = guard();
        enable();
        reset();
        // Shrinking MAX_EVENTS for the test isn't possible on a const;
        // exercise the bookkeeping path directly instead.
        {
            let mut reg = registry();
            reg.events = vec![(String::new(), String::new()); MAX_EVENTS];
        }
        event_json("over", "{}");
        disable();
        let snap = snapshot();
        assert_eq!(snap.events.len(), MAX_EVENTS);
        assert_eq!(snap.events_dropped, 1);
        assert!(export_jsonl().contains("obs.events_dropped"));
        reset();
    }

    #[test]
    fn trace_spans_form_a_causal_tree() {
        let _g = guard();
        enable();
        reset();
        {
            let _root = trace_begin(0xABCD, "rpc.request_task");
            let _child = TraceSpan::start("engine.request");
            {
                let _grandchild = TraceSpan::start("driver.poll");
            }
            {
                let _grandchild2 = TraceSpan::start("journal.append");
            }
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.traces.len(), 4);
        let by_name = |n: &str| snap.traces.iter().find(|t| t.name == n).unwrap();
        let root = by_name("rpc.request_task");
        let child = by_name("engine.request");
        let gc1 = by_name("driver.poll");
        let gc2 = by_name("journal.append");
        assert_eq!((root.span_id, root.parent_id), (1, 0));
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(gc1.parent_id, child.span_id);
        assert_eq!(gc2.parent_id, child.span_id);
        assert_ne!(gc1.span_id, gc2.span_id);
        assert!(snap.traces.iter().all(|t| t.trace_id == 0xABCD));
        let text = export_jsonl();
        assert!(text.contains("\"type\":\"trace\""), "{text}");
        assert!(text.contains("\"name\":\"driver.poll\""), "{text}");
    }

    #[test]
    fn child_span_without_active_trace_is_inert() {
        let _g = guard();
        enable();
        reset();
        {
            let _orphan = TraceSpan::start("driver.poll");
        }
        disable();
        assert!(snapshot().traces.is_empty());
    }

    #[test]
    fn windows_report_deltas_and_reseed_gauges() {
        let _g = guard();
        enable();
        reset();
        record_span_ns("w.span", 1000);
        counter_add("w.count", 5);
        gauge_set("w.gauge", 10.0);
        gauge_set("w.gauge", 2.0);
        let w1 = window_advance();
        assert_eq!(w1.seq, 1);
        assert_eq!(w1.spans.len(), 1);
        assert_eq!(w1.spans[0].count, 1);
        assert_eq!(w1.counters, vec![("w.count".to_owned(), 5)]);
        assert_eq!(w1.gauges.len(), 1);
        assert_eq!(
            (w1.gauges[0].last, w1.gauges[0].min, w1.gauges[0].max),
            (2.0, 2.0, 10.0)
        );

        // Second window: only the new activity shows; gauge extremes
        // restarted from the last value.
        record_span_ns("w.span", 9000);
        record_span_ns("w.span", 9000);
        counter_add("w.count", 2);
        let w2 = window_advance();
        assert_eq!(w2.seq, 2);
        assert_eq!(w2.spans[0].count, 2);
        assert!(w2.spans[0].p50_ns >= 8900 && w2.spans[0].p50_ns <= 9100);
        assert_eq!(w2.counters, vec![("w.count".to_owned(), 2)]);
        assert_eq!(
            (w2.gauges[0].last, w2.gauges[0].min, w2.gauges[0].max),
            (2.0, 2.0, 2.0)
        );

        // Idle window: nothing moved.
        let w3 = window_advance();
        assert_eq!(w3.seq, 3);
        assert!(w3.spans.is_empty() && w3.counters.is_empty());
        disable();

        // Cumulative view is untouched by windowing.
        let snap = snapshot();
        let s = snap.spans.iter().find(|s| s.name == "w.span").unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(counter_value("w.count"), 7);

        let json = w2.to_json();
        assert!(
            json.starts_with("{\"type\":\"window\",\"seq\":2,"),
            "{json}"
        );
        assert!(json.contains("\"delta\":2"), "{json}");
    }

    #[test]
    fn reset_clears_everything() {
        let _g = guard();
        enable();
        record_span_ns("x", 1);
        counter_add("y", 1);
        {
            let _t = trace_begin(1, "r");
        }
        let _ = window_advance();
        reset();
        disable();
        let snap = snapshot();
        assert!(snap.spans.is_empty() && snap.counters.is_empty() && snap.traces.is_empty());
        // Window sequence restarts too.
        enable();
        let w = window_advance();
        assert_eq!(w.seq, 1);
        reset();
        disable();
    }
}
