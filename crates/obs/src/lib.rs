//! Zero-dependency tracing and metrics for the iCrowd workspace.
//!
//! The paper's evaluation is entirely about *where time and assignments
//! go* — per-phase latency of the offline graph build vs. online
//! assignment (Figure 10), assignment counts per worker, early stops,
//! declined requests. This crate gives every layer a shared, process-wide
//! instrumentation sink so those numbers come from one audited registry
//! instead of ad-hoc `println!` lines:
//!
//! - **Spans** — RAII timers created with [`span!`]; each named span
//!   accumulates count / total / min / max and keeps a bounded,
//!   deterministically-sampled reservoir for p50/p99.
//! - **Counters** — monotonic `u64` totals ([`counter_add`]): assignments
//!   issued, estimator cache hits, PPR iterations, HIT lifecycle
//!   transitions.
//! - **Gauges** — last-write-wins `f64` values ([`gauge_set`]): thread
//!   counts, index sizes.
//! - **Events** — pre-serialized JSON payloads ([`event_json`]) bridging
//!   structured logs (the platform's `EventLog`) into the same sink.
//!
//! Telemetry is **off by default** and the disabled path is free: no
//! allocation, no clock read, no lock — a single relaxed atomic load
//! (asserted by the `noop_alloc` integration test). Exports are
//! deterministic: registries are `BTreeMap`s so JSONL lines and the
//! summary table come out in stable order, and reservoir sampling uses a
//! fixed-seed LCG rather than ambient randomness.
//!
//! The crate is `std`-only by design — it must stay usable from every
//! workspace crate without dragging in the vendored serde stack, so JSON
//! is written by hand (names and payloads are escaped per RFC 8259).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Global on/off switch. Relaxed ordering is sufficient: the flag only
/// gates *whether* to record, never synchronizes data (the registry
/// mutex does that).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Reservoir size per span: large enough for stable tail quantiles,
/// small enough that a million-span run stays bounded.
const SPAN_RESERVOIR: usize = 4096;

/// Hard cap on retained [`event_json`] payloads; overflow is counted,
/// not silently dropped.
const MAX_EVENTS: usize = 100_000;

fn registry() -> MutexGuard<'static, Inner> {
    static REGISTRY: OnceLock<Mutex<Inner>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Inner::default()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Default)]
struct Inner {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    events: Vec<(String, String)>,
    events_dropped: u64,
}

struct SpanStat {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Reservoir (Vitter's algorithm R) over observed durations, driven
    /// by a per-span LCG so quantiles are reproducible run to run.
    samples: Vec<u64>,
    lcg: u64,
}

impl SpanStat {
    fn new() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            samples: Vec::new(),
            lcg: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        if self.samples.len() < SPAN_RESERVOIR {
            self.samples.push(ns);
        } else {
            // Replace a random slot with probability RESERVOIR/count.
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (self.lcg >> 16) % self.count;
            if (j as usize) < SPAN_RESERVOIR {
                self.samples[j as usize] = ns;
            }
        }
    }

    fn percentile(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    fn summary(&self, name: &str) -> SpanSummary {
        SpanSummary {
            name: name.to_owned(),
            count: self.count,
            total_ns: self.total_ns,
            min_ns: if self.count == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
            p50_ns: self.percentile(0.50),
            p99_ns: self.percentile(0.99),
        }
    }
}

/// Aggregate statistics for one named span, as exported.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name (e.g. `"ppr.solve"`).
    pub name: String,
    /// Number of recorded executions.
    pub count: u64,
    /// Summed duration over all executions, nanoseconds.
    pub total_ns: u64,
    /// Fastest execution, nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Slowest execution, nanoseconds.
    pub max_ns: u64,
    /// Median execution, nanoseconds (reservoir-estimated).
    pub p50_ns: u64,
    /// 99th-percentile execution, nanoseconds (reservoir-estimated).
    pub p99_ns: u64,
}

/// A point-in-time copy of the whole registry, for tests and exporters.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Per-span aggregates, in name order.
    pub spans: Vec<SpanSummary>,
    /// Counter totals, in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, in name order.
    pub gauges: Vec<(String, f64)>,
    /// Bridged `(kind, json payload)` events, in arrival order.
    pub events: Vec<(String, String)>,
    /// Events discarded after the retention cap was hit.
    pub events_dropped: u64,
}

// ---------------------------------------------------------------------
// Control
// ---------------------------------------------------------------------

/// Turns telemetry collection on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns telemetry collection off. In-flight [`Span`] guards created
/// while enabled still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether telemetry is currently collected. Callers pay only this
/// relaxed load on the disabled path; use it to gate instrumentation
/// that must allocate (e.g. `format!`-built counter names).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every span, counter, gauge, and event. The enable flag is
/// untouched.
pub fn reset() {
    *registry() = Inner::default();
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// RAII timer: records the elapsed time under its span name on drop.
/// When telemetry is disabled at creation the guard holds nothing —
/// no clock read, no allocation, and `Drop` is a no-op.
#[must_use = "a span guard times until it is dropped; binding it to _ drops it immediately"]
pub struct Span {
    armed: Option<(&'static str, Instant)>,
}

impl Span {
    /// Starts a span timer named `name` (no-op when disabled).
    pub fn start(name: &'static str) -> Self {
        let armed = is_enabled().then(|| (name, Instant::now()));
        Span { armed }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, started)) = self.armed.take() {
            record_span_ns(name, started.elapsed().as_nanos() as u64);
        }
    }
}

/// Times the enclosing scope: `let _guard = span!("ppr.solve");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::start($name)
    };
}

/// Records one execution of `name` taking `ns` nanoseconds. [`Span`]
/// calls this on drop; exposed for pre-measured durations.
pub fn record_span_ns(name: &str, ns: u64) {
    if !is_enabled() {
        return;
    }
    registry()
        .spans
        .entry(name.to_owned())
        .or_insert_with(SpanStat::new)
        .record(ns);
}

// ---------------------------------------------------------------------
// Counters, gauges, events
// ---------------------------------------------------------------------

/// Adds `delta` to the monotonic counter `name` (no-op when disabled).
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    *registry().counters.entry(name.to_owned()).or_insert(0) += delta;
}

/// Sets the gauge `name` to `value` (last write wins; no-op when
/// disabled).
pub fn gauge_set(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    registry().gauges.insert(name.to_owned(), value);
}

/// Bridges a pre-serialized JSON object into the sink under `kind`
/// (no-op when disabled). `payload` must be a complete JSON value; it
/// is embedded verbatim in the export as the line's `"data"` field.
/// Retention is capped at `MAX_EVENTS`; overflow increments the
/// `events_dropped` tally instead of growing without bound.
pub fn event_json(kind: &str, payload: &str) {
    if !is_enabled() {
        return;
    }
    let mut reg = registry();
    if reg.events.len() >= MAX_EVENTS {
        reg.events_dropped += 1;
    } else {
        reg.events.push((kind.to_owned(), payload.to_owned()));
    }
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

/// Copies the registry out for inspection.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    Snapshot {
        spans: reg.spans.iter().map(|(n, s)| s.summary(n)).collect(),
        counters: reg.counters.iter().map(|(n, v)| (n.clone(), *v)).collect(),
        gauges: reg.gauges.iter().map(|(n, v)| (n.clone(), *v)).collect(),
        events: reg.events.clone(),
        events_dropped: reg.events_dropped,
    }
}

/// The current value of counter `name` (0 if never touched).
pub fn counter_value(name: &str) -> u64 {
    registry().counters.get(name).copied().unwrap_or(0)
}

fn write_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Serializes the registry as JSON lines: one object per span
/// (`{"type":"span","name":...,"count":...,"total_ns":...,"min_ns":...,
/// "max_ns":...,"p50_ns":...,"p99_ns":...}`), counter, gauge, and
/// bridged event, in that section order; spans/counters/gauges are
/// name-sorted so the export is deterministic.
pub fn export_jsonl() -> String {
    let snap = snapshot();
    let mut out = String::new();
    for s in &snap.spans {
        out.push_str("{\"type\":\"span\",\"name\":");
        write_json_escaped(&mut out, &s.name);
        out.push_str(&format!(
            ",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}\n",
            s.count, s.total_ns, s.min_ns, s.max_ns, s.p50_ns, s.p99_ns
        ));
    }
    for (name, value) in &snap.counters {
        out.push_str("{\"type\":\"counter\",\"name\":");
        write_json_escaped(&mut out, name);
        out.push_str(&format!(",\"value\":{value}}}\n"));
    }
    for (name, value) in &snap.gauges {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        write_json_escaped(&mut out, name);
        out.push_str(",\"value\":");
        write_json_f64(&mut out, *value);
        out.push_str("}\n");
    }
    for (kind, payload) in &snap.events {
        out.push_str("{\"type\":\"event\",\"name\":");
        write_json_escaped(&mut out, kind);
        out.push_str(",\"data\":");
        out.push_str(payload);
        out.push_str("}\n");
    }
    if snap.events_dropped > 0 {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":\"obs.events_dropped\",\"value\":{}}}\n",
            snap.events_dropped
        ));
    }
    out
}

/// Writes [`export_jsonl`] to `path`.
///
/// # Errors
/// Propagates file-creation and write errors.
pub fn write_jsonl(path: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(export_jsonl().as_bytes())?;
    f.flush()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders a fixed-width, human-readable table of every span, counter,
/// and gauge (times in milliseconds).
pub fn summary_table() -> String {
    let snap = snapshot();
    let mut out = String::new();
    out.push_str("== telemetry summary ==\n");
    if !snap.spans.is_empty() {
        out.push_str(&format!(
            "{:<24} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
            "span", "count", "total_ms", "min_ms", "max_ms", "p50_ms", "p99_ms"
        ));
        for s in &snap.spans {
            out.push_str(&format!(
                "{:<24} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
                s.name,
                s.count,
                fmt_ms(s.total_ns),
                fmt_ms(s.min_ns),
                fmt_ms(s.max_ns),
                fmt_ms(s.p50_ns),
                fmt_ms(s.p99_ns),
            ));
        }
    }
    if !snap.counters.is_empty() {
        out.push_str(&format!("{:<24} {:>12}\n", "counter", "value"));
        for (name, value) in &snap.counters {
            out.push_str(&format!("{name:<24} {value:>12}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str(&format!("{:<24} {:>12}\n", "gauge", "value"));
        for (name, value) in &snap.gauges {
            out.push_str(&format!("{name:<24} {value:>12.3}\n"));
        }
    }
    if !snap.events.is_empty() || snap.events_dropped > 0 {
        out.push_str(&format!(
            "events: {} recorded, {} dropped\n",
            snap.events.len(),
            snap.events_dropped
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that toggle it serialize
    /// through this lock so `cargo test`'s thread pool can't interleave
    /// enable/reset calls.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        disable();
        reset();
        {
            let _s = span!("never");
        }
        counter_add("never", 3);
        gauge_set("never", 1.0);
        event_json("never", "{}");
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn span_guard_times_scope() {
        let _g = guard();
        enable();
        reset();
        {
            let _s = span!("unit.work");
            std::hint::black_box(0u64);
        }
        {
            let _s = span!("unit.work");
        }
        disable();
        let snap = snapshot();
        let s = snap.spans.iter().find(|s| s.name == "unit.work").unwrap();
        assert_eq!(s.count, 2);
        assert!(s.total_ns >= s.min_ns + s.max_ns - s.total_ns.min(1));
        assert!(s.min_ns <= s.p50_ns && s.p50_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let _g = guard();
        enable();
        reset();
        counter_add("c", 2);
        counter_add("c", 0); // no-op by contract
        counter_add("c", 5);
        gauge_set("g", 1.0);
        gauge_set("g", 7.5);
        disable();
        assert_eq!(counter_value("c"), 7);
        let snap = snapshot();
        assert_eq!(snap.gauges, vec![("g".to_owned(), 7.5)]);
    }

    #[test]
    fn percentiles_from_known_distribution() {
        let _g = guard();
        enable();
        reset();
        for ns in 1..=100u64 {
            record_span_ns("dist", ns * 1000);
        }
        disable();
        let snap = snapshot();
        let s = snap.spans.iter().find(|s| s.name == "dist").unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min_ns, 1000);
        assert_eq!(s.max_ns, 100_000);
        assert_eq!(s.p50_ns, 51_000); // round(0.5 * 99) = 50 -> 51st value
        assert_eq!(s.p99_ns, 99_000);
        assert_eq!(s.total_ns, 5050 * 1000);
    }

    #[test]
    fn reservoir_stays_bounded_and_quantiles_sane() {
        let _g = guard();
        enable();
        reset();
        for ns in 0..20_000u64 {
            record_span_ns("big", ns);
        }
        disable();
        let snap = snapshot();
        let s = snap.spans.iter().find(|s| s.name == "big").unwrap();
        assert_eq!(s.count, 20_000);
        // Uniform 0..20_000: the sampled median must land near 10_000.
        assert!(
            (s.p50_ns as i64 - 10_000).unsigned_abs() < 2_000,
            "p50 {} too far from true median",
            s.p50_ns
        );
        assert!(s.p99_ns > s.p50_ns);
    }

    #[test]
    fn export_jsonl_is_sorted_and_escaped() {
        let _g = guard();
        enable();
        reset();
        record_span_ns("b.span", 10);
        record_span_ns("a.span", 20);
        counter_add("weird \"name\"\n", 1);
        gauge_set("g", 0.5);
        event_json("market", "{\"k\":1}");
        disable();
        let text = export_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"a.span\""), "spans sorted: {text}");
        assert!(lines[1].contains("\"b.span\""));
        assert!(
            lines[2].contains("weird \\\"name\\\"\\n"),
            "escaped: {text}"
        );
        assert!(lines[4].contains("\"data\":{\"k\":1}"));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        let table = summary_table();
        assert!(table.contains("a.span") && table.contains("events: 1 recorded"));
    }

    #[test]
    fn event_cap_counts_drops() {
        let _g = guard();
        enable();
        reset();
        // Shrinking MAX_EVENTS for the test isn't possible on a const;
        // exercise the bookkeeping path directly instead.
        {
            let mut reg = registry();
            reg.events = vec![(String::new(), String::new()); MAX_EVENTS];
        }
        event_json("over", "{}");
        disable();
        let snap = snapshot();
        assert_eq!(snap.events.len(), MAX_EVENTS);
        assert_eq!(snap.events_dropped, 1);
        assert!(export_jsonl().contains("obs.events_dropped"));
        reset();
    }

    #[test]
    fn reset_clears_everything() {
        let _g = guard();
        enable();
        record_span_ns("x", 1);
        counter_add("y", 1);
        reset();
        disable();
        let snap = snapshot();
        assert!(snap.spans.is_empty() && snap.counters.is_empty());
    }
}
