//! Request-scoped tracing: causally linked span trees per protocol
//! request.
//!
//! `icrowd loadgen` stamps a nonzero `u64` trace id on each protocol
//! line; the serving layer opens a **root** trace span for the request
//! ([`trace_begin`]) and every layer underneath — engine, market
//! driver, journal — adds **child** spans ([`TraceSpan::start`])
//! without any signature plumbing: the active trace rides a
//! thread-local, which is correct because one request is handled
//! start-to-finish on one handler thread.
//!
//! Each completed span becomes a [`TraceEvent`] in the global registry
//! and is exported as one JSONL line
//! (`{"type":"trace","trace":...,"span":...,"parent":...,...}`), so a
//! `REQUEST_TASK` yields e.g.
//!
//! ```text
//! serve.rpc.request (span 1, parent 0)
//! └─ engine.request (span 2, parent 1)
//!    ├─ driver.poll  (span 3, parent 2)
//!    └─ journal.append (span 4, parent 2)
//! ```
//!
//! Cost discipline matches the span path: with telemetry disabled,
//! [`trace_begin`] and [`TraceSpan::start`] are a single relaxed
//! atomic load — no clock read, no allocation, no thread-local write
//! (asserted by the `noop_alloc` integration test). With telemetry
//! enabled but no active trace on the thread (e.g. the in-process
//! harness), a child span start is one thread-local read.

use std::cell::Cell;
use std::time::Instant;

use crate::{is_enabled, push_trace_event};

/// One completed trace span, as recorded and exported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The request's trace id (nonzero; stamped by the client).
    pub trace_id: u64,
    /// This span's id, unique within the trace (root = 1).
    pub span_id: u32,
    /// The parent span's id (0 for the root).
    pub parent_id: u32,
    /// Span name (e.g. `"driver.poll"`).
    pub name: &'static str,
    /// Start time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Per-thread active-trace state. `trace_id == 0` means no trace is
/// active; ids/parents are plain counters so the whole context is
/// `Copy` and lives in a `Cell`.
#[derive(Clone, Copy)]
struct Ctx {
    trace_id: u64,
    next_span: u32,
    parent: u32,
}

const IDLE: Ctx = Ctx {
    trace_id: 0,
    next_span: 0,
    parent: 0,
};

thread_local! {
    static CTX: Cell<Ctx> = const { Cell::new(IDLE) };
}

/// Nanoseconds since the process-wide trace epoch (first use).
fn epoch_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Opens the root span of a trace on this thread. No-op (and
/// allocation-free) when telemetry is disabled or `trace_id` is 0; a
/// nested `trace_begin` while a trace is already active is also
/// ignored (the outer trace wins — requests do not nest).
#[must_use = "the trace is active until the guard drops"]
pub fn trace_begin(trace_id: u64, name: &'static str) -> TraceGuard {
    if !is_enabled() || trace_id == 0 || CTX.with(|c| c.get().trace_id != 0) {
        return TraceGuard { armed: None };
    }
    CTX.with(|c| {
        c.set(Ctx {
            trace_id,
            next_span: 2,
            parent: 1,
        });
    });
    TraceGuard {
        armed: Some((trace_id, name, epoch_ns(), Instant::now())),
    }
}

/// RAII root-span guard returned by [`trace_begin`]; emits the root
/// [`TraceEvent`] and deactivates the thread's trace on drop.
pub struct TraceGuard {
    armed: Option<(u64, &'static str, u64, Instant)>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some((trace_id, name, start_ns, started)) = self.armed.take() {
            CTX.with(|c| c.set(IDLE));
            push_trace_event(TraceEvent {
                trace_id,
                span_id: 1,
                parent_id: 0,
                name,
                start_ns,
                dur_ns: started.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// RAII child span: records a [`TraceEvent`] under the thread's active
/// trace on drop, parented to the innermost enclosing span. Inactive
/// (no clock read, no allocation) when telemetry is disabled or no
/// trace is active on this thread.
#[must_use = "a trace span times until it is dropped"]
pub struct TraceSpan {
    armed: Option<(u64, u32, u32, &'static str, u64, Instant)>,
}

impl TraceSpan {
    /// Starts a child span named `name` under the active trace.
    pub fn start(name: &'static str) -> Self {
        if !is_enabled() {
            return TraceSpan { armed: None };
        }
        let ctx = CTX.with(Cell::get);
        if ctx.trace_id == 0 {
            return TraceSpan { armed: None };
        }
        let span_id = ctx.next_span;
        let parent = ctx.parent;
        CTX.with(|c| {
            c.set(Ctx {
                trace_id: ctx.trace_id,
                next_span: span_id + 1,
                parent: span_id,
            });
        });
        TraceSpan {
            armed: Some((
                ctx.trace_id,
                span_id,
                parent,
                name,
                epoch_ns(),
                Instant::now(),
            )),
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((trace_id, span_id, parent_id, name, start_ns, started)) = self.armed.take() {
            // Restore the parent scope (later siblings parent correctly
            // even if the trace ended early — the push is a no-op then).
            CTX.with(|c| {
                let mut ctx = c.get();
                if ctx.trace_id == trace_id {
                    ctx.parent = parent_id;
                    c.set(ctx);
                }
            });
            push_trace_event(TraceEvent {
                trace_id,
                span_id,
                parent_id,
                name,
                start_ns,
                dur_ns: started.elapsed().as_nanos() as u64,
            });
        }
    }
}
