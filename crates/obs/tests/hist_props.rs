//! Property tests for the log-bucketed histogram: merge is associative
//! (bucket-exact, not just approximately), and reported percentiles stay
//! within the advertised 1% relative-error bound of an exact sort across
//! many orders of magnitude.

use icrowd_obs::LogHistogram;
use proptest::{prop_assert, prop_assert_eq, proptest};

fn hist_of(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Samples spanning sub-bucket-resolution values up to multi-second
/// nanosecond latencies: a magnitude in [0, 2^40) shaped by squaring a
/// uniform draw so small and large octaves both get coverage.
fn latency(raw: u64) -> u64 {
    let unit = (raw % (1 << 20)) as f64 / (1u64 << 20) as f64;
    (unit * unit * (1u64 << 40) as f64) as u64
}

/// The exact-order-statistic convention the histogram mirrors:
/// rank = ceil(p * n) clamped into [1, n], 1-indexed.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #[test]
    fn merge_is_associative_and_order_free(
        a in proptest::collection::vec(0u64..u64::MAX, 0..80),
        b in proptest::collection::vec(0u64..u64::MAX, 0..80),
        c in proptest::collection::vec(0u64..u64::MAX, 0..80),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        // a ⊕ (b ⊕ c)
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);

        // One histogram fed every sample directly.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let bulk = hist_of(&all);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &bulk);
        prop_assert_eq!(left.count(), all.len() as u64);
    }

    #[test]
    fn percentiles_track_exact_sort_within_one_percent(
        raw in proptest::collection::vec(0u64..u64::MAX, 1..400),
    ) {
        let samples: Vec<u64> = raw.into_iter().map(latency).collect();
        let h = hist_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        for &p in &[0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_percentile(&sorted, p);
            let got = h.percentile(p);
            // ≤1% relative error, with 1 unit of absolute slack so
            // sub-bucket-resolution integers (exact below 2^7) and a
            // zero exact value cannot manufacture a vacuous failure.
            let tol = (exact as f64 * 0.01).max(1.0);
            let err = got.abs_diff(exact) as f64;
            prop_assert!(
                err <= tol,
                "p{} off by {} (got {}, exact {}, tol {})",
                p, err, got, exact, tol
            );
            // And never outside the observed range.
            prop_assert!(got >= sorted[0] && got <= *sorted.last().unwrap());
        }
    }

    #[test]
    fn diff_then_merge_round_trips_a_window(
        base in proptest::collection::vec(0u64..(1u64 << 40), 0..80),
        extra in proptest::collection::vec(0u64..(1u64 << 40), 0..80),
    ) {
        let baseline = hist_of(&base);
        let mut total = baseline.clone();
        for &v in &extra {
            total.record(v);
        }

        // The window delta must contain exactly the new samples.
        // (`diff` reconstructs min/max at bucket resolution, so the
        // comparison is on buckets/count/sum, not struct equality.)
        let window = total.diff(&baseline);
        let expect = hist_of(&extra);
        prop_assert_eq!(window.count(), expect.count());
        prop_assert_eq!(window.sum(), expect.sum());
        prop_assert_eq!(
            window.buckets().collect::<Vec<_>>(),
            expect.buckets().collect::<Vec<_>>()
        );

        // Recombining it with the baseline restores the total's buckets.
        let mut rebuilt = baseline.clone();
        rebuilt.merge(&window);
        prop_assert_eq!(rebuilt.count(), total.count());
        prop_assert_eq!(
            rebuilt.buckets().collect::<Vec<_>>(),
            total.buckets().collect::<Vec<_>>()
        );
    }
}
