//! The disabled telemetry path must be allocation-free: the assignment
//! hot loop runs `span!` + `counter_add` per request, and a campaign
//! issues hundreds of thousands of requests with telemetry off.
//!
//! This file installs a counting global allocator and must therefore be
//! an integration test (its own process) with exactly one `#[test]`, so
//! no sibling test can allocate concurrently and muddy the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_allocates_nothing_per_span() {
    icrowd_obs::disable();

    // Warm up any lazy statics outside the measured window.
    {
        let _s = icrowd_obs::span!("warmup");
        icrowd_obs::counter_add("warmup", 1);
        icrowd_obs::gauge_set("warmup", 0.0);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..100_000u64 {
        let _s = icrowd_obs::span!("assign.loop");
        icrowd_obs::counter_add("assign.issued", 1);
        icrowd_obs::gauge_set("assign.queue_depth", i as f64);
        icrowd_obs::record_span_ns("assign.loop", i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "disabled span/counter/gauge path allocated {} times over 100k iterations",
        after - before
    );
    assert!(!icrowd_obs::is_enabled());
}
