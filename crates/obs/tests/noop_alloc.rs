//! The disabled telemetry path must be allocation-free: the assignment
//! hot loop runs `span!` + `counter_add` per request, a request handler
//! opens a trace root + child spans, and a campaign issues hundreds of
//! thousands of requests with telemetry off.
//!
//! This file installs a counting global allocator and must therefore be
//! an integration test (its own process) with exactly one `#[test]`.
//! The count is scoped to the test's own thread (a thread-local flag
//! armed around the measured window) so stray allocations from libtest
//! harness threads cannot flake the assertion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Armed only on the test thread, only inside the measured window.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

/// Counts an allocation if the current thread is mid-measurement.
/// `thread_local` access with a const initializer and a non-`Drop`
/// payload is a plain TLS read — safe inside the allocator.
fn tally() {
    if MEASURING.with(Cell::get) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        tally();
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        tally();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_allocates_nothing_per_span() {
    icrowd_obs::disable();

    // Warm up any lazy statics outside the measured window.
    {
        let _s = icrowd_obs::span!("warmup");
        icrowd_obs::counter_add("warmup", 1);
        icrowd_obs::gauge_set("warmup", 0.0);
        let _t = icrowd_obs::trace_begin(1, "warmup");
        let _c = icrowd_obs::TraceSpan::start("warmup.child");
    }

    MEASURING.with(|m| m.set(true));
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..100_000u64 {
        let _s = icrowd_obs::span!("assign.loop");
        icrowd_obs::counter_add("assign.issued", 1);
        icrowd_obs::gauge_set("assign.queue_depth", i as f64);
        icrowd_obs::record_span_ns("assign.loop", i);
        // The trace path must also be inert: a disabled root guard and
        // a child span drop without touching the registry or the heap.
        let _t = icrowd_obs::trace_begin(i + 1, "serve.rpc.request");
        let _c = icrowd_obs::TraceSpan::start("engine.request");
        // The rejection path counts through static names — no format!
        // allocation even with every reason exercised.
        for reason in [
            icrowd_platform::events::RejectReason::NotAssigned,
            icrowd_platform::events::RejectReason::Duplicate,
            icrowd_platform::events::RejectReason::LeaseExpired,
            icrowd_platform::events::RejectReason::TaskCompleted,
        ] {
            icrowd_obs::counter_add(reason.counter_name(), 1);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    MEASURING.with(|m| m.set(false));

    assert_eq!(
        after - before,
        0,
        "disabled span/counter/gauge/trace path allocated {} times over 100k iterations",
        after - before
    );
    assert!(!icrowd_obs::is_enabled());
}
