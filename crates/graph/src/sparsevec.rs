//! Sparse task-indexed vectors.
//!
//! Both the PPR solver and the linearity index manipulate vectors indexed
//! by task id that are overwhelmingly zero on large graphs; this module
//! provides the shared sorted-pairs representation.

use icrowd_core::task::TaskId;

/// A sparse vector over task indices, entries sorted by index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseTaskVector {
    entries: Vec<(u32, f64)>,
}

impl SparseTaskVector {
    /// The empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A unit vector: `1.0` at `task`, zero elsewhere.
    pub fn unit(task: TaskId) -> Self {
        Self {
            entries: vec![(task.0, 1.0)],
        }
    }

    /// Builds from unsorted `(index, value)` pairs, merging duplicates by
    /// addition and dropping exact zeros.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        let mut out = Self::new();
        out.assign_from_pairs(&mut pairs);
        out
    }

    /// Rebuilds `self` from unsorted `(index, value)` pairs — the
    /// allocation-free counterpart of [`Self::from_pairs`]. Sorts `pairs`
    /// in place (it remains usable as a scratch buffer afterwards) and
    /// reuses `self`'s existing capacity; identical merge/drop semantics.
    pub fn assign_from_pairs(&mut self, pairs: &mut [(u32, f64)]) {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        self.entries.clear();
        self.entries.reserve(pairs.len());
        for &(i, v) in pairs.iter() {
            match self.entries.last_mut() {
                Some((li, lv)) if *li == i => *lv += v,
                _ => self.entries.push((i, v)),
            }
        }
        self.entries.retain(|&(_, v)| v != 0.0);
    }

    /// Builds from a dense slice, keeping entries with `|v| > epsilon`.
    pub fn from_dense(dense: &[f64], epsilon: f64) -> Self {
        let entries = dense
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v.abs() > epsilon)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        Self { entries }
    }

    /// Expands to a dense vector of length `n`.
    pub fn to_dense(&self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
        out
    }

    /// The entries, sorted by index.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Allocated capacity in entries (diagnostics; see
    /// [`Self::shrink_to_fit`]).
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value at `task` (zero if absent), via binary search.
    pub fn get(&self, task: TaskId) -> f64 {
        match self.entries.binary_search_by_key(&task.0, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// L1 norm.
    pub fn l1(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v.abs()).sum()
    }

    /// `self += scale * other` (in place, allocation only on growth).
    pub fn add_scaled(&mut self, other: &SparseTaskVector, scale: f64) {
        if scale == 0.0 || other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((b[j].0, scale * b[j].1));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((a[i].0, a[i].1 + scale * b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend(b[j..].iter().map(|&(k, v)| (k, scale * v)));
        self.entries = merged;
    }

    /// Drops entries with `|v| <= epsilon`.
    ///
    /// Note: like `Vec::retain`, this keeps the underlying capacity (the
    /// PPR solver reuses the slack between sweeps); call
    /// [`Self::shrink_to_fit`] before storing a vector long-term.
    pub fn truncate(&mut self, epsilon: f64) {
        self.entries.retain(|&(_, v)| v.abs() > epsilon);
    }

    /// Releases excess capacity. Essential when retaining many vectors
    /// (the linearity index holds one per task; un-shrunk solver slack is
    /// ~100x the live data on capped million-task graphs).
    pub fn shrink_to_fit(&mut self) {
        self.entries.shrink_to_fit();
    }

    /// The support (indices of non-zero entries), sorted.
    pub fn support(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|&(i, _)| i)
    }

    /// Iterates over `(TaskId, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, f64)> + '_ {
        self.entries.iter().map(|&(i, v)| (TaskId(i), v))
    }
}

impl FromIterator<(u32, f64)> for SparseTaskVector {
    fn from_iter<I: IntoIterator<Item = (u32, f64)>>(iter: I) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_merges_and_drops_zeros() {
        let v = SparseTaskVector::from_pairs(vec![(5, 1.0), (2, 0.5), (5, 1.5), (7, 0.0)]);
        assert_eq!(v.entries(), &[(2, 0.5), (5, 2.5)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn assign_from_pairs_reuses_buffers() {
        let mut v = SparseTaskVector::from_pairs(vec![(9, 1.0), (1, 1.0)]);
        let cap_before = v.capacity();
        let mut scratch = vec![(5u32, 1.0), (2, 0.5), (5, 1.5), (7, 0.0)];
        v.assign_from_pairs(&mut scratch);
        assert_eq!(v.entries(), &[(2, 0.5), (5, 2.5)]);
        assert!(v.capacity() >= cap_before, "capacity is retained");
        // The scratch buffer survives (sorted) for the caller to clear
        // and refill on the next sweep.
        assert_eq!(scratch.len(), 4);
    }

    #[test]
    fn dense_round_trip() {
        let dense = vec![0.0, 0.3, 0.0, 0.0001, 0.9];
        let v = SparseTaskVector::from_dense(&dense, 0.001);
        assert_eq!(v.entries(), &[(1, 0.3), (4, 0.9)]);
        let back = v.to_dense(5);
        assert_eq!(back, vec![0.0, 0.3, 0.0, 0.0, 0.9]);
    }

    #[test]
    fn get_uses_binary_search() {
        let v = SparseTaskVector::from_pairs(vec![(1, 0.5), (10, 0.25)]);
        assert_eq!(v.get(TaskId(1)), 0.5);
        assert_eq!(v.get(TaskId(10)), 0.25);
        assert_eq!(v.get(TaskId(5)), 0.0);
    }

    #[test]
    fn add_scaled_merges_correctly() {
        let mut a = SparseTaskVector::from_pairs(vec![(0, 1.0), (2, 1.0)]);
        let b = SparseTaskVector::from_pairs(vec![(1, 2.0), (2, 2.0), (3, 2.0)]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.entries(), &[(0, 1.0), (1, 1.0), (2, 2.0), (3, 1.0)]);
        // Zero scale and empty other are no-ops.
        let snapshot = a.clone();
        a.add_scaled(&b, 0.0);
        a.add_scaled(&SparseTaskVector::new(), 3.0);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn unit_truncate_and_norms() {
        let mut v = SparseTaskVector::unit(TaskId(3));
        assert_eq!(v.get(TaskId(3)), 1.0);
        v.add_scaled(&SparseTaskVector::from_pairs(vec![(4, 1e-9)]), 1.0);
        assert_eq!(v.nnz(), 2);
        v.truncate(1e-6);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.sum(), 1.0);
        assert_eq!(v.l1(), 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn add_scaled_matches_dense_math(
                a in proptest::collection::vec((0u32..20, -2.0f64..2.0), 0..10),
                b in proptest::collection::vec((0u32..20, -2.0f64..2.0), 0..10),
                s in -3.0f64..3.0,
            ) {
                let mut sa = SparseTaskVector::from_pairs(a.clone());
                let sb = SparseTaskVector::from_pairs(b.clone());
                let da = sa.to_dense(20);
                let db = sb.to_dense(20);
                sa.add_scaled(&sb, s);
                let got = sa.to_dense(20);
                for i in 0..20 {
                    let want = da[i] + s * db[i];
                    prop_assert!((got[i] - want).abs() < 1e-12);
                }
            }
        }
    }
}
