//! Deterministic data-parallel helpers for offline graph construction.
//!
//! Offline index construction is embarrassingly parallel — every task's
//! PPR vector (and every row of the pairwise similarity sweep) is an
//! independent computation. These helpers parallelize such loops with
//! scoped threads while keeping the output **bit-identical** to the
//! serial loop for any thread count: work items are claimed from an
//! atomic cursor, each item `i` is computed by exactly one thread from
//! the same inputs the serial loop would use, and results land in a
//! pre-sized slot array read back in index order. Only the *schedule* is
//! nondeterministic; the output never is.
//!
//! No work-stealing or chunking is attempted: items (full PPR solves,
//! `O(|T|)` similarity rows) are large enough that a single shared
//! `fetch_add` per item is negligible and naturally load-balances the
//! skewed per-item costs of power-law graphs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Resolves a thread-count knob: `0` means "use available parallelism",
/// anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Maps `f` over `0..n` on up to `threads` scoped threads (`0` = auto),
/// returning results in index order.
///
/// Bit-identical to `(0..n).map(f).collect()` for any thread count as
/// long as `f(i)` depends only on `i` and shared immutable state. The
/// serial path is taken outright for `threads == 1` or trivially small
/// `n`, so single-threaded callers pay no synchronization cost.
pub fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(n);
    if threads <= 1 {
        let out: Vec<T> = (0..n).map(f).collect();
        if icrowd_obs::is_enabled() && n > 0 {
            icrowd_obs::gauge_set("par_map.threads", 1.0);
            icrowd_obs::counter_add("par_map.thread0.items", n as u64);
        }
        return out;
    }
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (slots, cursor, f) = (&slots, &cursor, &f);
        for t in 0..threads {
            scope.spawn(move || {
                let mut claimed = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let filled = slots[i].set(f(i)).is_ok();
                    debug_assert!(filled, "slot {i} claimed twice");
                    claimed += 1;
                }
                // Per-thread utilization: how evenly the atomic-cursor
                // schedule spread the items (name built only when the
                // telemetry sink is live — `format!` allocates).
                if icrowd_obs::is_enabled() && claimed > 0 {
                    icrowd_obs::counter_add(&format!("par_map.thread{t}.items"), claimed);
                }
            });
        }
    });
    if icrowd_obs::is_enabled() {
        icrowd_obs::gauge_set("par_map.threads", threads as f64);
    }
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_for_every_thread_count() {
        let serial: Vec<u64> = (0..257).map(|i| (i as u64).wrapping_mul(0x9e37)).collect();
        for threads in [0, 1, 2, 3, 4, 8, 300] {
            let par = par_map_indexed(257, threads, |i| (i as u64).wrapping_mul(0x9e37));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_item_ranges() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn resolve_zero_uses_hardware_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn heavy_items_produce_ordered_output() {
        // Items with deliberately skewed cost still land in order.
        let out = par_map_indexed(64, 4, |i| {
            let mut acc = i as u64;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }
}
