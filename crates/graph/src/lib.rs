//! # icrowd-graph
//!
//! The microtask similarity graph and the personalized-PageRank (PPR)
//! estimation engine behind iCrowd's graph-based accuracy model
//! (Section 3 of the paper).
//!
//! * [`csr`] — a compressed-sparse-row weighted undirected graph
//!   ([`SimilarityGraph`]) with the symmetric normalization
//!   `S' = D^(-1/2) S D^(-1/2)` baked in.
//! * [`builder`] — constructing the graph from any
//!   [`icrowd_text::TaskSimilarity`] metric with a similarity threshold,
//!   plus the neighbor-capped and explicit-edge constructors used by the
//!   scalability experiment (Figure 10).
//! * [`ppr`] — Equation (4)'s power iteration and a sparse truncated
//!   variant for large graphs.
//! * [`index`] — the Lemma-3 *linearity index*: precomputed per-task PPR
//!   vectors `p_{t_i}`, making online estimation a sparse weighted sum.
//! * [`sparsevec`] — the sparse task-indexed vectors shared by `ppr` and
//!   `index`.
//! * [`parallel`] — deterministic scoped-thread helpers used to
//!   parallelize offline construction (index build, pairwise similarity
//!   sweep) with bit-identical output for any thread count.

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod builder;
pub mod csr;
pub mod index;
pub mod parallel;
pub mod ppr;
pub mod sparsevec;

pub use builder::GraphBuilder;
pub use csr::SimilarityGraph;
pub use index::{InfluenceScratch, LinearityIndex};
pub use parallel::{par_map_indexed, resolve_threads};
pub use ppr::{power_iteration, sparse_ppr};
pub use sparsevec::SparseTaskVector;
