//! Personalized PageRank — the solver behind Equation (4).
//!
//! The estimation model's closed form (Lemma 1)
//!
//! ```text
//! p* = (alpha / (1 + alpha)) (I - S' / (1 + alpha))^(-1) q
//! ```
//!
//! is computed iteratively (Lemma 2) by repeating
//!
//! ```text
//! p <- (1 / (1 + alpha)) p S' + (alpha / (1 + alpha)) q
//! ```
//!
//! which is personalized PageRank with damping `1 / (1 + alpha)` and
//! restart vector `q`. Two solvers are provided:
//!
//! * [`power_iteration`] — dense, the reference implementation;
//! * [`sparse_ppr`] — keeps the iterate sparse, truncating entries below
//!   an epsilon per sweep; this is what the offline linearity-index build
//!   uses on large graphs (each `p_{t_i}` only touches a small
//!   neighborhood when the graph is neighbor-capped).

use icrowd_core::config::PprConfig;

use crate::csr::SimilarityGraph;
use crate::sparsevec::SparseTaskVector;

/// Dense PPR by power iteration.
///
/// Starts from `p = q` (the paper's initialization) and iterates
/// Equation (4) until the L1 change drops below `config.tolerance` or
/// `config.max_iterations` sweeps elapse. Returns the converged vector.
///
/// # Panics
/// Panics if `q.len() != graph.num_tasks()` or `alpha <= 0`.
pub fn power_iteration(
    graph: &SimilarityGraph,
    q: &[f64],
    alpha: f64,
    config: &PprConfig,
) -> Vec<f64> {
    assert_eq!(q.len(), graph.num_tasks(), "q must have one entry per task");
    assert!(alpha > 0.0, "alpha must be positive");
    let damping = 1.0 / (1.0 + alpha);
    let restart = alpha / (1.0 + alpha);

    let mut p = q.to_vec();
    let mut sp = vec![0.0; q.len()];
    for _ in 0..config.max_iterations {
        graph.mul_normalized(&p, &mut sp);
        let mut delta = 0.0;
        for i in 0..p.len() {
            let next = damping * sp[i] + restart * q[i];
            delta += (next - p[i]).abs();
            p[i] = next;
        }
        if delta < config.tolerance {
            break;
        }
    }
    p
}

/// Sparse PPR: the same fixed-point iteration over a sparse iterate.
///
/// Entries whose magnitude stays below `truncate_eps` after a sweep are
/// dropped, bounding the working set by the (damped) neighborhood of
/// `q`'s support. With `truncate_eps = 0` this is exact up to
/// `config.tolerance` and matches [`power_iteration`].
pub fn sparse_ppr(
    graph: &SimilarityGraph,
    q: &SparseTaskVector,
    alpha: f64,
    truncate_eps: f64,
    config: &PprConfig,
) -> SparseTaskVector {
    assert!(alpha > 0.0, "alpha must be positive");
    let _span = icrowd_obs::span!("ppr.solve");
    let damping = 1.0 / (1.0 + alpha);
    let restart = alpha / (1.0 + alpha);
    // Iterating past the truncation threshold is wasted work: changes
    // smaller than a tenth of what gets truncated cannot survive.
    let tolerance = config.tolerance.max(truncate_eps * 0.1);

    let mut p = q.clone();
    // Scratch buffers reused across sweeps: the index build calls this
    // once per task, and per-sweep allocation of the pair list dominated
    // the solver's allocator traffic.
    let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(p.nnz().saturating_mul(4).max(q.nnz()));
    let mut next = SparseTaskVector::new();
    let mut iterations = 0u64;
    for _ in 0..config.max_iterations {
        iterations += 1;
        // next = damping * (p S') + restart * q, built sparsely.
        pairs.clear();
        for (i, v) in p.iter() {
            let dv = damping * v;
            for (j, w) in graph.normalized_neighbors(i) {
                pairs.push((j.0, dv * w));
            }
        }
        for (i, v) in q.iter() {
            pairs.push((i.0, restart * v));
        }
        next.assign_from_pairs(&mut pairs);
        next.truncate(truncate_eps);

        // L1 distance between iterates (merge walk).
        let delta = l1_distance(&p, &next);
        std::mem::swap(&mut p, &mut next);
        if delta < tolerance {
            break;
        }
    }
    icrowd_obs::counter_add("ppr.solves", 1);
    icrowd_obs::counter_add("ppr.iterations", iterations);
    p
}

/// L1 distance between two sparse vectors.
fn l1_distance(a: &SparseTaskVector, b: &SparseTaskVector) -> f64 {
    let (ea, eb) = (a.entries(), b.entries());
    let (mut i, mut j) = (0, 0);
    let mut d = 0.0;
    while i < ea.len() && j < eb.len() {
        match ea[i].0.cmp(&eb[j].0) {
            std::cmp::Ordering::Less => {
                d += ea[i].1.abs();
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                d += eb[j].1.abs();
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                d += (ea[i].1 - eb[j].1).abs();
                i += 1;
                j += 1;
            }
        }
    }
    d += ea[i..].iter().map(|&(_, v)| v.abs()).sum::<f64>();
    d += eb[j..].iter().map(|&(_, v)| v.abs()).sum::<f64>();
    d
}

/// Solves the closed form of Lemma 1 by Gaussian elimination — an
/// `O(n^3)` oracle used in tests to confirm the iterative solvers reach
/// the analytic optimum `p* = restart * (I - damping * S')^(-1) q`.
pub fn closed_form_oracle(graph: &SimilarityGraph, q: &[f64], alpha: f64) -> Vec<f64> {
    let n = graph.num_tasks();
    assert_eq!(q.len(), n);
    let damping = 1.0 / (1.0 + alpha);
    let restart = alpha / (1.0 + alpha);

    // Build A = I - damping * S' densely.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        a[i * n + i] = 1.0;
        for (j, w) in graph.normalized_neighbors(icrowd_core::task::TaskId(i as u32)) {
            a[i * n + j.index()] -= damping * w;
        }
    }
    let mut b: Vec<f64> = q.iter().map(|&v| restart * v).collect();

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&x, &y| a[x * n + col].abs().total_cmp(&a[y * n + col].abs()))
            .unwrap();
        if a[pivot * n + col].abs() < 1e-14 {
            continue;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        for row in (col + 1)..n {
            let f = a[row * n + col] / a[col * n + col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= f * a[col * n + k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::TaskId;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    fn chain() -> SimilarityGraph {
        SimilarityGraph::from_edges(
            5,
            &[
                (t(0), t(1), 0.9),
                (t(1), t(2), 0.8),
                (t(2), t(3), 0.7),
                (t(3), t(4), 0.6),
            ],
        )
    }

    #[test]
    fn power_iteration_matches_closed_form() {
        let g = chain();
        let q = vec![1.0, 0.0, 0.0, 0.0, 0.5];
        for alpha in [0.5, 1.0, 2.0] {
            let iterative = power_iteration(&g, &q, alpha, &PprConfig::default());
            let exact = closed_form_oracle(&g, &q, alpha);
            for (a, b) in iterative.iter().zip(&exact) {
                assert!((a - b).abs() < 1e-7, "alpha={alpha}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sparse_matches_dense_without_truncation() {
        let g = chain();
        let q_dense = vec![0.0, 1.0, 0.0, 0.0, 0.0];
        let dense = power_iteration(&g, &q_dense, 1.0, &PprConfig::default());
        let sparse = sparse_ppr(
            &g,
            &SparseTaskVector::unit(t(1)),
            1.0,
            0.0,
            &PprConfig::default(),
        );
        for i in 0..5u32 {
            assert!((sparse.get(t(i)) - dense[i as usize]).abs() < 1e-7);
        }
    }

    #[test]
    fn truncated_sparse_is_close_and_smaller() {
        let g = chain();
        let exact = sparse_ppr(
            &g,
            &SparseTaskVector::unit(t(0)),
            1.0,
            0.0,
            &PprConfig::default(),
        );
        let truncated = sparse_ppr(
            &g,
            &SparseTaskVector::unit(t(0)),
            1.0,
            1e-3,
            &PprConfig::default(),
        );
        assert!(truncated.nnz() <= exact.nnz());
        for (i, v) in exact.iter() {
            assert!((truncated.get(i) - v).abs() < 1e-2);
        }
    }

    #[test]
    fn mass_decays_with_distance_from_source() {
        let g = chain();
        let p = power_iteration(&g, &[1.0, 0.0, 0.0, 0.0, 0.0], 1.0, &PprConfig::default());
        assert!(p[0] > p[1], "source dominates");
        assert!(
            p[1] > p[2] && p[2] > p[3] && p[3] > p[4],
            "mass decays: {p:?}"
        );
        assert!(p[4] > 0.0, "everything connected receives some mass");
    }

    #[test]
    fn isolated_node_keeps_only_restart_mass() {
        let g = SimilarityGraph::from_edges(3, &[(t(0), t(1), 0.5)]);
        let p = power_iteration(&g, &[0.0, 0.0, 1.0], 1.0, &PprConfig::default());
        // alpha = 1: restart weight is 0.5; the isolated node converges to
        // exactly restart * q = 0.5 and leaks nothing to others.
        assert!((p[2] - 0.5).abs() < 1e-9);
        assert_eq!(p[0], 0.0);
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn large_alpha_pins_p_to_q() {
        let g = chain();
        let q = vec![0.0, 1.0, 0.0, 0.0, 0.0];
        let p = power_iteration(&g, &q, 100.0, &PprConfig::default());
        // restart weight 100/101: p should be nearly q.
        assert!((p[1] - 100.0 / 101.0).abs() < 1e-2);
        assert!(p[0] < 0.02 && p[2] < 0.02);
    }

    #[test]
    fn linearity_property_holds() {
        // Lemma 3: p*(q) = sum_i q_i * p*(e_i).
        let g = chain();
        let cfg = PprConfig::default();
        let q = vec![0.7, 0.0, 0.3, 0.0, 1.0];
        let direct = power_iteration(&g, &q, 1.0, &cfg);
        let mut combined = vec![0.0; 5];
        for (i, &qi) in q.iter().enumerate() {
            if qi == 0.0 {
                continue;
            }
            let mut e = vec![0.0; 5];
            e[i] = 1.0;
            let p_i = power_iteration(&g, &e, 1.0, &cfg);
            for (c, v) in combined.iter_mut().zip(&p_i) {
                *c += qi * v;
            }
        }
        for (a, b) in direct.iter().zip(&combined) {
            assert!((a - b).abs() < 1e-7, "linearity violated: {a} vs {b}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = SimilarityGraph> {
            proptest::collection::vec((0u32..8, 0u32..8, 0.05f64..=1.0), 0..20).prop_map(|v| {
                let edges: Vec<_> = v
                    .into_iter()
                    .filter(|(a, b, _)| a != b)
                    .map(|(a, b, s)| (TaskId(a), TaskId(b), s))
                    .collect();
                SimilarityGraph::from_edges(8, &edges)
            })
        }

        proptest! {
            #[test]
            fn converges_to_closed_form(
                g in arb_graph(),
                q in proptest::collection::vec(0.0f64..=1.0, 8),
                alpha in 0.2f64..5.0,
            ) {
                let p = power_iteration(&g, &q, alpha, &PprConfig::default());
                let exact = closed_form_oracle(&g, &q, alpha);
                for (a, b) in p.iter().zip(&exact) {
                    prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
                }
            }

            #[test]
            fn output_is_nonnegative_and_bounded(
                g in arb_graph(),
                q in proptest::collection::vec(0.0f64..=1.0, 8),
            ) {
                // Symmetric normalization does NOT keep estimates within
                // [0, 1] (a star center can exceed 1 — the estimator layer
                // clamps); but mass is non-negative, finite, and bounded by
                // the Neumann series in L2: ||p||_2 <= ||q||_2 since the
                // spectral radius of damping * S' is <= damping < 1 and
                // restart + damping = 1.
                let p = power_iteration(&g, &q, 1.0, &PprConfig::default());
                let nq: f64 = q.iter().map(|x| x * x).sum::<f64>().sqrt();
                let np: f64 = p.iter().map(|x| x * x).sum::<f64>().sqrt();
                for &v in &p {
                    prop_assert!(v >= -1e-12);
                    prop_assert!(v.is_finite());
                }
                prop_assert!(np <= nq + 1e-9, "||p||={np} escapes ||q||={nq}");
            }
        }
    }
}
