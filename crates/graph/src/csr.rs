//! The microtask similarity graph in compressed-sparse-row form.
//!
//! A similarity graph (Section 3) is a weighted undirected graph
//! `G = (T, E)` whose edge weights are task similarities `s_ij`. The
//! estimation model works on the symmetrically normalized matrix
//! `S' = D^(-1/2) S D^(-1/2)` with `D_ii = Σ_j s_ij`; this module stores
//! both the raw weights and the normalized weights so the PPR solver can
//! multiply by `S'` in one pass.

use icrowd_core::task::TaskId;

/// A weighted undirected similarity graph in CSR layout.
///
/// Self-loops are rejected (a task's similarity to itself carries no
/// information for the estimation model) and edges are deduplicated at
/// construction.
#[derive(Debug, Clone)]
pub struct SimilarityGraph {
    n: usize,
    row_ptr: Vec<usize>,
    col: Vec<u32>,
    /// Raw similarity `s_ij` per CSR slot.
    weight: Vec<f64>,
    /// Normalized weight `s_ij / sqrt(D_ii * D_jj)` per CSR slot.
    norm_weight: Vec<f64>,
    /// `D_ii = Σ_j s_ij` (zero for isolated tasks).
    degree: Vec<f64>,
}

impl SimilarityGraph {
    /// Builds a graph over `n` tasks from an undirected edge list.
    ///
    /// Each `(a, b, s)` is inserted once in both directions. Duplicate
    /// pairs keep the **maximum** similarity (metrics may emit a pair from
    /// both sides).
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or similarities
    /// outside `(0, 1]` (zero-weight edges must simply be omitted).
    pub fn from_edges(n: usize, edges: &[(TaskId, TaskId, f64)]) -> Self {
        for &(a, b, s) in edges {
            assert!(a != b, "self-loop on {a} rejected");
            assert!(
                a.index() < n && b.index() < n,
                "edge ({a}, {b}) out of range for n = {n}"
            );
            assert!(
                s > 0.0 && s <= 1.0,
                "similarity {s} for ({a}, {b}) must lie in (0, 1]"
            );
        }

        // Counting-sort CSR construction: two flat arrays instead of `n`
        // nested vectors — this halves peak memory on million-task graphs
        // (the Figure-10 regime) and avoids `2n` allocator round-trips.
        let mut counts = vec![0usize; n + 1];
        for &(a, b, _) in edges {
            counts[a.index() + 1] += 1;
            counts[b.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_start = counts.clone();
        let mut col = vec![0u32; edges.len() * 2];
        let mut weight = vec![0.0f64; edges.len() * 2];
        let mut cursor = row_start.clone();
        for &(a, b, s) in edges {
            let slot = cursor[a.index()];
            col[slot] = b.0;
            weight[slot] = s;
            cursor[a.index()] += 1;
            let slot = cursor[b.index()];
            col[slot] = a.0;
            weight[slot] = s;
            cursor[b.index()] += 1;
        }

        // Per-row sort + in-place dedup (keep max similarity per pair).
        let mut row_ptr = vec![0usize; n + 1];
        let mut write = 0usize;
        for i in 0..n {
            let (lo, hi) = (row_start[i], row_start[i + 1]);
            // Sort the row slice by (neighbor, -similarity).
            let mut row: Vec<(u32, f64)> = col[lo..hi]
                .iter()
                .zip(&weight[lo..hi])
                .map(|(&j, &s)| (j, s))
                .collect();
            row.sort_unstable_by(|x, y| x.0.cmp(&y.0).then(y.1.total_cmp(&x.1)));
            row.dedup_by_key(|e| e.0);
            for (j, s) in row {
                col[write] = j;
                weight[write] = s;
                write += 1;
            }
            row_ptr[i + 1] = write;
        }
        col.truncate(write);
        col.shrink_to_fit();
        weight.truncate(write);
        weight.shrink_to_fit();

        let mut degree = vec![0.0; n];
        for i in 0..n {
            degree[i] = weight[row_ptr[i]..row_ptr[i + 1]].iter().sum();
        }
        let mut norm_weight = vec![0.0f64; col.len()];
        for i in 0..n {
            let di = degree[i];
            for slot in row_ptr[i]..row_ptr[i + 1] {
                let dj = degree[col[slot] as usize];
                norm_weight[slot] = weight[slot] / (di * dj).sqrt();
            }
        }

        Self {
            n,
            row_ptr,
            col,
            weight,
            norm_weight,
            degree,
        }
    }

    /// Number of tasks (nodes).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col.len() / 2
    }

    /// The degree `D_ii` (sum of incident similarities) of `task`.
    #[inline]
    pub fn degree(&self, task: TaskId) -> f64 {
        self.degree[task.index()]
    }

    /// Number of neighbors of `task`.
    #[inline]
    pub fn neighbor_count(&self, task: TaskId) -> usize {
        let i = task.index();
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Neighbors of `task` with raw similarities.
    pub fn neighbors(&self, task: TaskId) -> impl Iterator<Item = (TaskId, f64)> + '_ {
        let i = task.index();
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col[lo..hi]
            .iter()
            .zip(&self.weight[lo..hi])
            .map(|(&j, &s)| (TaskId(j), s))
    }

    /// Neighbors of `task` with normalized weights (`S'` row).
    pub fn normalized_neighbors(&self, task: TaskId) -> impl Iterator<Item = (TaskId, f64)> + '_ {
        let i = task.index();
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col[lo..hi]
            .iter()
            .zip(&self.norm_weight[lo..hi])
            .map(|(&j, &s)| (TaskId(j), s))
    }

    /// The raw similarity of `(a, b)` (zero if not adjacent).
    pub fn similarity(&self, a: TaskId, b: TaskId) -> f64 {
        let i = a.index();
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        match self.col[lo..hi].binary_search(&b.0) {
            Ok(pos) => self.weight[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Dense multiply `out = v * S'` (i.e. `out_j = Σ_i v_i s'_ij`;
    /// `S'` is symmetric so this equals `S' v`).
    ///
    /// `out` must have length `n` and is fully overwritten.
    pub fn mul_normalized(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.n);
        assert_eq!(out.len(), self.n);
        out.fill(0.0);
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            for (&j, &w) in self.col[lo..hi].iter().zip(&self.norm_weight[lo..hi]) {
                out[j as usize] += vi * w;
            }
        }
    }

    /// All undirected edges `(a, b, s)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (TaskId, TaskId, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            self.col[lo..hi]
                .iter()
                .zip(&self.weight[lo..hi])
                .filter(move |(&j, _)| (j as usize) > i)
                .map(move |(&j, &s)| (TaskId(i as u32), TaskId(j), s))
        })
    }

    /// Ids of isolated tasks (no similar neighbor above threshold).
    pub fn isolated_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.n)
            .filter(|&i| self.row_ptr[i + 1] == self.row_ptr[i])
            .map(|i| TaskId(i as u32))
    }

    /// Connected components, as a vector of sorted task-id vectors
    /// (iterative DFS; used by tests and qualification-selection
    /// diagnostics).
    pub fn components(&self) -> Vec<Vec<TaskId>> {
        let mut seen = vec![false; self.n];
        let mut out = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(u) = stack.pop() {
                comp.push(TaskId(u as u32));
                let (lo, hi) = (self.row_ptr[u], self.row_ptr[u + 1]);
                for &v in &self.col[lo..hi] {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v as usize);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    fn triangle() -> SimilarityGraph {
        SimilarityGraph::from_edges(
            4,
            &[(t(0), t(1), 0.5), (t(1), t(2), 0.8), (t(0), t(2), 0.2)],
        )
    }

    #[test]
    fn basic_shape_and_degrees() {
        let g = triangle();
        assert_eq!(g.num_tasks(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!((g.degree(t(0)) - 0.7).abs() < 1e-12);
        assert!((g.degree(t(1)) - 1.3).abs() < 1e-12);
        assert!((g.degree(t(2)) - 1.0).abs() < 1e-12);
        assert_eq!(g.degree(t(3)), 0.0);
        assert_eq!(g.neighbor_count(t(1)), 2);
        assert_eq!(g.isolated_tasks().collect::<Vec<_>>(), vec![t(3)]);
    }

    #[test]
    fn similarity_lookup_and_symmetry() {
        let g = triangle();
        assert_eq!(g.similarity(t(0), t(1)), 0.5);
        assert_eq!(g.similarity(t(1), t(0)), 0.5);
        assert_eq!(g.similarity(t(0), t(3)), 0.0);
    }

    #[test]
    fn normalization_matches_formula() {
        let g = triangle();
        // s'_01 = 0.5 / sqrt(0.7 * 1.3)
        let want = 0.5 / (0.7f64 * 1.3).sqrt();
        let got = g
            .normalized_neighbors(t(0))
            .find(|&(j, _)| j == t(1))
            .unwrap()
            .1;
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn duplicate_edges_keep_max() {
        let g = SimilarityGraph::from_edges(2, &[(t(0), t(1), 0.3), (t(1), t(0), 0.6)]);
        assert_eq!(g.similarity(t(0), t(1)), 0.6);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        SimilarityGraph::from_edges(2, &[(t(0), t(0), 0.5)]);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn zero_weight_edges_rejected() {
        SimilarityGraph::from_edges(2, &[(t(0), t(1), 0.0)]);
    }

    #[test]
    fn mul_normalized_matches_manual_expansion() {
        let g = triangle();
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let mut out = vec![0.0; 4];
        g.mul_normalized(&v, &mut out);
        // Manually: out_j = sum_i v_i * s'_ij.
        let mut want = vec![0.0; 4];
        for (i, &vi) in v.iter().enumerate() {
            for (j, w) in g.normalized_neighbors(t(i as u32)) {
                want[j.index()] += vi * w;
            }
        }
        for (a, b) in out.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(out[3], 0.0, "isolated node receives nothing");
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_by_key(|a| (a.0, a.1));
        assert_eq!(
            edges,
            vec![(t(0), t(1), 0.5), (t(0), t(2), 0.2), (t(1), t(2), 0.8)]
        );
    }

    #[test]
    fn components_found() {
        let g = SimilarityGraph::from_edges(5, &[(t(0), t(1), 0.5), (t(2), t(3), 0.5)]);
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![t(0), t(1)]));
        assert!(comps.contains(&vec![t(2), t(3)]));
        assert!(comps.contains(&vec![t(4)]));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = SimilarityGraph::from_edges(3, &[]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.isolated_tasks().count(), 3);
        let mut out = vec![1.0; 3];
        g.mul_normalized(&[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, vec![0.0, 0.0, 0.0]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_edges() -> impl Strategy<Value = Vec<(TaskId, TaskId, f64)>> {
            proptest::collection::vec((0u32..10, 0u32..10, 0.01f64..=1.0), 0..30).prop_map(|v| {
                v.into_iter()
                    .filter(|(a, b, _)| a != b)
                    .map(|(a, b, s)| (TaskId(a), TaskId(b), s))
                    .collect()
            })
        }

        proptest! {
            #[test]
            fn degree_is_sum_of_incident_weights(edges in arb_edges()) {
                let g = SimilarityGraph::from_edges(10, &edges);
                for i in 0..10u32 {
                    let sum: f64 = g.neighbors(TaskId(i)).map(|(_, s)| s).sum();
                    prop_assert!((g.degree(TaskId(i)) - sum).abs() < 1e-9);
                }
            }

            #[test]
            fn graph_stays_symmetric(edges in arb_edges()) {
                let g = SimilarityGraph::from_edges(10, &edges);
                for i in 0..10u32 {
                    for (j, s) in g.neighbors(TaskId(i)) {
                        prop_assert!((g.similarity(j, TaskId(i)) - s).abs() < 1e-12);
                    }
                }
            }

            #[test]
            fn spectral_radius_bounded_by_one(edges in arb_edges()) {
                // Power iteration on |S'| must not blow up: after 30
                // multiplies of the all-ones vector, the max entry stays
                // bounded (S' has spectral radius <= 1).
                let g = SimilarityGraph::from_edges(10, &edges);
                let mut v = vec![1.0; 10];
                let mut out = vec![0.0; 10];
                for _ in 0..30 {
                    g.mul_normalized(&v, &mut out);
                    std::mem::swap(&mut v, &mut out);
                }
                let max = v.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
                prop_assert!(max <= 10.0 + 1e-6, "max entry {max}");
            }
        }
    }
}
