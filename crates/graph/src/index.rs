//! The linearity index — Lemma 3 and Algorithm 1's offline component.
//!
//! PPR is linear in its restart vector: writing `p_{t_i}` for the
//! converged solution with `q = e_i` (the unit vector at task `t_i`),
//!
//! ```text
//! p*(q) = Σ_i q_i · p_{t_i}
//! ```
//!
//! iCrowd therefore precomputes `p_{t_i}` for every task **offline** and
//! answers online estimation requests with a sparse weighted sum over the
//! worker's observed accuracies — `O(|q| · nnz)` instead of a fresh PPR
//! solve per worker. Vectors are sparsified at `index_epsilon`, bounding
//! memory on large graphs (this is the "effective index structure" behind
//! the paper's Figure 10 scalability claims).

use icrowd_core::config::PprConfig;
use icrowd_core::task::TaskId;

use crate::csr::SimilarityGraph;
use crate::parallel::par_map_indexed;
use crate::ppr::sparse_ppr;
use crate::sparsevec::SparseTaskVector;

/// Precomputed per-task PPR vectors enabling O(|q|)-vector online
/// estimation and influence computation.
#[derive(Debug, Clone)]
pub struct LinearityIndex {
    alpha: f64,
    vectors: Vec<SparseTaskVector>,
}

impl LinearityIndex {
    /// Builds the index by running sparse PPR from every task.
    ///
    /// `config.index_epsilon` controls sparsification of the stored
    /// vectors (0 keeps everything the solver produced).
    ///
    /// The per-task solves are independent, so the build fans out over
    /// `config.threads` scoped threads (`0` = hardware parallelism, `1` =
    /// serial). The result is bit-identical for every thread count: each
    /// vector is solved from the same immutable graph and stored at its
    /// task's slot regardless of which thread claimed it.
    pub fn build(graph: &SimilarityGraph, alpha: f64, config: &PprConfig) -> Self {
        let _span = icrowd_obs::span!("index.build");
        let vectors = par_map_indexed(graph.num_tasks(), config.threads, |i| {
            let q = SparseTaskVector::unit(TaskId(i as u32));
            let mut p = sparse_ppr(graph, &q, alpha, config.index_epsilon, config);
            p.truncate(config.index_epsilon);
            // The solver's working buffers carry ~degree^2 capacity
            // slack; keeping it across |T| stored vectors multiplies
            // index memory ~100x on capped large graphs.
            p.shrink_to_fit();
            p
        });
        let built = Self { alpha, vectors };
        if icrowd_obs::is_enabled() {
            icrowd_obs::gauge_set("index.tasks", built.num_tasks() as f64);
            icrowd_obs::gauge_set("index.total_nnz", built.total_nnz() as f64);
        }
        built
    }

    /// The `alpha` the index was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of indexed tasks.
    pub fn num_tasks(&self) -> usize {
        self.vectors.len()
    }

    /// The precomputed vector `p_{t_i}`.
    pub fn vector(&self, task: TaskId) -> &SparseTaskVector {
        &self.vectors[task.index()]
    }

    /// Total stored entries across all vectors (index size).
    pub fn total_nnz(&self) -> usize {
        self.vectors.iter().map(SparseTaskVector::nnz).sum()
    }

    /// Online estimation (Algorithm 1, line 6): `p = Σ q_i · p_{t_i}`
    /// over the sparse observed-accuracy vector `q`, returned densely.
    ///
    /// Values are **not** clamped here; the estimator layer decides how to
    /// map raw mass to probabilities.
    pub fn estimate_dense(&self, q: &SparseTaskVector) -> Vec<f64> {
        let mut out = vec![0.0; self.vectors.len()];
        for (i, qi) in q.iter() {
            for (j, v) in self.vectors[i.index()].iter() {
                out[j.index()] += qi * v;
            }
        }
        out
    }

    /// Sparse variant of [`Self::estimate_dense`].
    pub fn estimate_sparse(&self, q: &SparseTaskVector) -> SparseTaskVector {
        let mut acc = SparseTaskVector::new();
        for (i, qi) in q.iter() {
            acc.add_scaled(&self.vectors[i.index()], qi);
        }
        acc
    }

    /// The influence support of a qualification set `T^q` (Section 5):
    /// the set of tasks receiving non-zero mass from `Σ_{t in T^q} p_t`,
    /// as a sorted id vector.
    pub fn influence_support(&self, tasks: &[TaskId]) -> Vec<u32> {
        let mut scratch = InfluenceScratch::new();
        let mut ids = self.influence_support_with(tasks, &mut scratch).to_vec();
        ids.sort_unstable();
        ids
    }

    /// Scratch-reusing variant of [`Self::influence_support`]: marks
    /// reached tasks in a visited bitmap instead of collecting, sorting
    /// and deduplicating, so repeated calls (the per-request candidate
    /// pool, influence sweeps over many sets) allocate nothing after the
    /// first. Returns the distinct reached ids in **discovery order**,
    /// not sorted; callers needing sorted output use
    /// [`Self::influence_support`].
    pub fn influence_support_with<'s>(
        &self,
        tasks: &[TaskId],
        scratch: &'s mut InfluenceScratch,
    ) -> &'s [u32] {
        scratch.touched.clear();
        if scratch.visited.len() < self.vectors.len() {
            scratch.visited.resize(self.vectors.len(), false);
        }
        for t in tasks {
            for id in self.vectors[t.index()].support() {
                let seen = &mut scratch.visited[id as usize];
                if !*seen {
                    *seen = true;
                    scratch.touched.push(id);
                }
            }
        }
        // Un-mark via the touched list so clearing costs O(|support|),
        // not O(|T|), keeping the scratch ready for the next call.
        for &id in &scratch.touched {
            scratch.visited[id as usize] = false;
        }
        &scratch.touched
    }

    /// Bounded variant of [`Self::influence_support_with`]: the walk
    /// stops as soon as `cap` distinct tasks have been discovered, so a
    /// caller assembling a capacity-capped candidate pool never pays for
    /// support beyond the cap. The result is a prefix of what the
    /// unbounded walk would discover (same seed order, same discovery
    /// order); when the cap binds it holds exactly `cap` ids.
    pub fn influence_support_bounded<'s>(
        &self,
        tasks: &[TaskId],
        scratch: &'s mut InfluenceScratch,
        cap: usize,
    ) -> &'s [u32] {
        scratch.touched.clear();
        if scratch.visited.len() < self.vectors.len() {
            scratch.visited.resize(self.vectors.len(), false);
        }
        'walk: for t in tasks {
            if scratch.touched.len() >= cap {
                break;
            }
            for id in self.vectors[t.index()].support() {
                let seen = &mut scratch.visited[id as usize];
                if !*seen {
                    *seen = true;
                    scratch.touched.push(id);
                    if scratch.touched.len() >= cap {
                        break 'walk;
                    }
                }
            }
        }
        for &id in &scratch.touched {
            scratch.visited[id as usize] = false;
        }
        &scratch.touched
    }

    /// `INF(T^q)`: the size of the influence support (Definition 5).
    pub fn influence(&self, tasks: &[TaskId]) -> usize {
        let mut scratch = InfluenceScratch::new();
        self.influence_with(tasks, &mut scratch)
    }

    /// Scratch-reusing variant of [`Self::influence`] for hot loops.
    pub fn influence_with(&self, tasks: &[TaskId], scratch: &mut InfluenceScratch) -> usize {
        self.influence_support_with(tasks, scratch).len()
    }
}

/// Reusable working memory for influence queries
/// ([`LinearityIndex::influence_support_with`]): a visited bitmap plus
/// the list of marked ids used to clear it cheaply between calls.
#[derive(Debug, Clone, Default)]
pub struct InfluenceScratch {
    visited: Vec<bool>,
    touched: Vec<u32>,
}

impl InfluenceScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppr::power_iteration;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    /// Two 3-cliques joined by nothing: clear block structure.
    fn two_cliques() -> SimilarityGraph {
        SimilarityGraph::from_edges(
            6,
            &[
                (t(0), t(1), 0.9),
                (t(1), t(2), 0.9),
                (t(0), t(2), 0.9),
                (t(3), t(4), 0.9),
                (t(4), t(5), 0.9),
                (t(3), t(5), 0.9),
            ],
        )
    }

    #[test]
    fn index_estimation_matches_direct_ppr() {
        let g = two_cliques();
        let cfg = PprConfig {
            index_epsilon: 0.0,
            ..Default::default()
        };
        let idx = LinearityIndex::build(&g, 1.0, &cfg);
        let q_sparse = SparseTaskVector::from_pairs(vec![(0, 1.0), (3, 0.5)]);
        let q_dense = q_sparse.to_dense(6);
        let direct = power_iteration(&g, &q_dense, 1.0, &cfg);
        let via_index = idx.estimate_dense(&q_sparse);
        for (a, b) in via_index.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        // Sparse variant agrees with dense variant.
        let sparse = idx.estimate_sparse(&q_sparse);
        for i in 0..6u32 {
            assert!((sparse.get(t(i)) - via_index[i as usize]).abs() < 1e-12);
        }
    }

    #[test]
    fn influence_counts_reached_tasks() {
        let g = two_cliques();
        let idx = LinearityIndex::build(&g, 1.0, &PprConfig::default());
        // One task reaches its whole clique (3 tasks) and nothing else.
        assert_eq!(idx.influence(&[t(0)]), 3);
        // One from each clique reaches everything.
        assert_eq!(idx.influence(&[t(0), t(3)]), 6);
        // Two from the same clique add no new coverage.
        assert_eq!(idx.influence(&[t(0), t(1)]), 3);
        assert_eq!(idx.influence(&[]), 0);
    }

    #[test]
    fn epsilon_shrinks_the_index() {
        let g = two_cliques();
        let exact = LinearityIndex::build(
            &g,
            1.0,
            &PprConfig {
                index_epsilon: 0.0,
                ..Default::default()
            },
        );
        let pruned = LinearityIndex::build(
            &g,
            1.0,
            &PprConfig {
                index_epsilon: 0.05,
                ..Default::default()
            },
        );
        assert!(pruned.total_nnz() <= exact.total_nnz());
        // Estimates stay close despite pruning.
        let q = SparseTaskVector::unit(t(0));
        let a = exact.estimate_dense(&q);
        let b = pruned.estimate_dense(&q);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.1);
        }
    }

    #[test]
    fn index_vectors_carry_no_solver_capacity_slack() {
        // Regression: sparse_ppr's working buffers have ~degree^2
        // capacity; storing them unshrunk once blew index memory ~100x
        // (10+ GB on the Figure-10 workload). Build a dense-ish graph and
        // assert stored capacity tracks live entries.
        let mut edges = Vec::new();
        for i in 0..40u32 {
            for j in (i + 1)..40u32 {
                edges.push((t(i), t(j), 0.9));
            }
        }
        let g = SimilarityGraph::from_edges(40, &edges);
        let idx = LinearityIndex::build(
            &g,
            1.0,
            &PprConfig {
                index_epsilon: 1e-3,
                ..Default::default()
            },
        );
        for i in 0..40u32 {
            let v = idx.vector(t(i));
            assert!(v.nnz() <= 40, "vector {i} has {} entries", v.nnz());
            assert_eq!(
                v.capacity(),
                v.nnz(),
                "vector {i} retains solver slack ({} cap for {} entries)",
                v.capacity(),
                v.nnz()
            );
        }
        // Total index size stays linear in edges, not quadratic.
        assert!(idx.total_nnz() <= 40 * 40);
    }

    #[test]
    fn isolated_task_influences_only_itself() {
        let g = SimilarityGraph::from_edges(3, &[(t(0), t(1), 0.8)]);
        let idx = LinearityIndex::build(&g, 1.0, &PprConfig::default());
        assert_eq!(idx.influence(&[t(2)]), 1);
        let est = idx.estimate_dense(&SparseTaskVector::unit(t(2)));
        assert!((est[2] - 0.5).abs() < 1e-9, "alpha=1 restart mass");
        assert_eq!(est[0], 0.0);
    }

    #[test]
    fn empty_q_estimates_zero() {
        let g = two_cliques();
        let idx = LinearityIndex::build(&g, 1.0, &PprConfig::default());
        let est = idx.estimate_dense(&SparseTaskVector::new());
        assert!(est.iter().all(|&v| v == 0.0));
    }

    /// A messier graph than the clique fixtures: ring + chords + hubs, so
    /// per-task PPR solves have varied cost and support.
    fn lumpy_graph(n: u32) -> SimilarityGraph {
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((t(i), t((i + 1) % n), 0.5 + 0.4 * f64::from(i % 5) / 5.0));
            if i % 3 == 0 {
                edges.push((t(i), t((i + 7) % n), 0.6));
            }
            if i % 11 == 0 {
                // Hubs: connect to a spread of nodes.
                for k in 1..6 {
                    edges.push((t(i), t((i + k * 13) % n), 0.3 + 0.1 * f64::from(k)));
                }
            }
        }
        edges.retain(|(a, b, _)| a != b);
        SimilarityGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let g = lumpy_graph(120);
        let base = PprConfig {
            index_epsilon: 1e-4,
            ..Default::default()
        };
        let serial = LinearityIndex::build(&g, 1.0, &PprConfig { threads: 1, ..base });
        for threads in [0usize, 2, 3, 4, 8] {
            let parallel = LinearityIndex::build(&g, 1.0, &PprConfig { threads, ..base });
            assert_eq!(parallel.num_tasks(), serial.num_tasks());
            for i in 0..serial.num_tasks() as u32 {
                let (a, b) = (serial.vector(t(i)), parallel.vector(t(i)));
                assert_eq!(a.nnz(), b.nnz(), "task {i}, threads={threads}");
                for ((ia, va), (ib, vb)) in a.iter().zip(b.iter()) {
                    assert_eq!(ia, ib, "task {i}, threads={threads}");
                    assert_eq!(
                        va.to_bits(),
                        vb.to_bits(),
                        "task {i}, threads={threads}: {va} vs {vb}"
                    );
                }
                // The capacity regression guarantee holds on the parallel
                // path too.
                assert_eq!(b.capacity(), b.nnz());
            }
        }
    }

    #[test]
    fn scratch_influence_matches_allocating_path() {
        let g = lumpy_graph(60);
        let idx = LinearityIndex::build(
            &g,
            1.0,
            &PprConfig {
                index_epsilon: 1e-3,
                ..Default::default()
            },
        );
        let mut scratch = InfluenceScratch::new();
        let sets: Vec<Vec<TaskId>> = vec![
            vec![],
            vec![t(0)],
            vec![t(0), t(1), t(2)],
            vec![t(5), t(33), t(59)],
            (0..60).map(t).collect(),
        ];
        for set in &sets {
            let sorted = idx.influence_support(set);
            let mut via_scratch = idx.influence_support_with(set, &mut scratch).to_vec();
            via_scratch.sort_unstable();
            assert_eq!(sorted, via_scratch);
            assert_eq!(idx.influence(set), idx.influence_with(set, &mut scratch));
        }
        // Scratch state fully resets between calls: re-running the first
        // non-empty set gives identical results after a large query.
        let first = idx.influence_support_with(&[t(0)], &mut scratch).to_vec();
        let _ = idx.influence_support_with(&sets[4], &mut scratch);
        let again = idx.influence_support_with(&[t(0)], &mut scratch).to_vec();
        assert_eq!(first, again);
    }

    #[test]
    fn bounded_walk_is_a_prefix_of_the_unbounded_walk() {
        let g = lumpy_graph(60);
        let idx = LinearityIndex::build(
            &g,
            1.0,
            &PprConfig {
                index_epsilon: 1e-3,
                ..Default::default()
            },
        );
        let mut scratch = InfluenceScratch::new();
        let seeds: Vec<TaskId> = vec![t(0), t(11), t(33), t(59)];
        let full = idx.influence_support_with(&seeds, &mut scratch).to_vec();
        for cap in [0, 1, 2, full.len() - 1, full.len(), full.len() + 10] {
            let bounded = idx
                .influence_support_bounded(&seeds, &mut scratch, cap)
                .to_vec();
            assert_eq!(bounded.len(), cap.min(full.len()), "cap={cap}");
            assert_eq!(bounded, full[..bounded.len()], "cap={cap}");
        }
        // The scratch bitmap is fully unmarked after an early exit: an
        // unbounded walk right after a tightly-capped one sees everything.
        let _ = idx.influence_support_bounded(&seeds, &mut scratch, 2);
        let again = idx.influence_support_with(&seeds, &mut scratch).to_vec();
        assert_eq!(again, full);
    }
}
