//! Constructing similarity graphs from similarity metrics.
//!
//! The default path evaluates all `O(|T|^2)` task pairs against a
//! [`TaskSimilarity`] metric and keeps edges at or above the similarity
//! threshold (Section 3.3; the paper's example uses Jaccard with threshold
//! 0.5, the experiments use `Cos(topic)` with 0.8). An optional
//! *neighbor cap* keeps only the strongest `m` neighbors per task — the
//! "maximal number of neighbors" knob of the scalability experiment
//! (Figure 10) that bounds index size on large task sets.

use icrowd_core::task::{TaskId, TaskSet};
use icrowd_text::TaskSimilarity;

use crate::csr::SimilarityGraph;
use crate::parallel::par_map_indexed;

/// Builder for [`SimilarityGraph`]s.
///
/// ```
/// use icrowd_core::{Microtask, TaskId, TaskSet};
/// use icrowd_graph::GraphBuilder;
/// use icrowd_text::{JaccardSimilarity, Tokenizer};
///
/// let tasks: TaskSet = ["iphone 4 wifi", "iphone 4 case", "nba lakers"]
///     .iter()
///     .enumerate()
///     .map(|(i, t)| Microtask::binary(TaskId(i as u32), *t))
///     .collect();
/// let metric = JaccardSimilarity::new(&tasks, &Tokenizer::keeping_stopwords());
/// let graph = GraphBuilder::new(0.4).build(&tasks, &metric);
/// assert_eq!(graph.num_edges(), 1, "only the two iPhone tasks connect");
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    threshold: f64,
    max_neighbors: Option<usize>,
    threads: usize,
}

impl GraphBuilder {
    /// A builder keeping edges with similarity `>= threshold`.
    ///
    /// # Panics
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn new(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must lie in [0, 1]"
        );
        Self {
            threshold,
            max_neighbors: None,
            threads: 0,
        }
    }

    /// Caps each task at its `m` most similar neighbors (edges kept if
    /// either endpoint retains them, preserving symmetry).
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn with_max_neighbors(mut self, m: usize) -> Self {
        assert!(m > 0, "max_neighbors must be positive");
        self.max_neighbors = Some(m);
        self
    }

    /// Sets the worker-thread count for the pairwise sweep in
    /// [`Self::build`]: `0` (the default) uses available hardware
    /// parallelism, `1` forces the serial path. The produced graph is
    /// identical for every value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured similarity threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Builds the similarity graph by evaluating every task pair.
    ///
    /// Pairs with similarity `< max(threshold, epsilon)` are dropped
    /// (zero-similarity pairs are never edges even at threshold 0).
    ///
    /// The `O(|T|^2)` sweep is parallelized row-wise (row `i` evaluates
    /// pairs `(i, j)` for `j > i`) into per-row edge buffers that are
    /// concatenated in row order, so the edge list — and therefore the
    /// graph — is identical to the serial sweep for any thread count
    /// (see [`Self::with_threads`]). Metrics must be `Sync`; every
    /// implementation precomputes immutable corpus state, so shared reads
    /// are free.
    pub fn build<M: TaskSimilarity + Sync + ?Sized>(
        &self,
        tasks: &TaskSet,
        metric: &M,
    ) -> SimilarityGraph {
        let n = tasks.len();
        let rows = par_map_indexed(n, self.threads, |i| {
            let mut row: Vec<(TaskId, TaskId, f64)> = Vec::new();
            for j in (i + 1)..n {
                let (a, b) = (TaskId(i as u32), TaskId(j as u32));
                let s = metric.similarity(a, b);
                debug_assert!(
                    (s - metric.similarity(b, a)).abs() < 1e-9,
                    "metric {} must be symmetric",
                    metric.name()
                );
                debug_assert!((0.0..=1.0 + 1e-12).contains(&s), "similarity out of range");
                if s >= self.threshold && s > 0.0 {
                    row.push((a, b, s.min(1.0)));
                }
            }
            row
        });
        let mut edges: Vec<(TaskId, TaskId, f64)> =
            Vec::with_capacity(rows.iter().map(Vec::len).sum());
        for row in rows {
            edges.extend(row);
        }
        if let Some(m) = self.max_neighbors {
            edges = cap_neighbors(n, edges, m);
        }
        SimilarityGraph::from_edges(n, &edges)
    }

    /// Builds from an explicit edge list (used by the scalability workload
    /// generator, which never materializes a metric), applying the
    /// threshold and optional neighbor cap.
    pub fn build_from_edges(
        &self,
        n: usize,
        edges: impl IntoIterator<Item = (TaskId, TaskId, f64)>,
    ) -> SimilarityGraph {
        let mut kept: Vec<_> = edges
            .into_iter()
            .filter(|&(_, _, s)| s >= self.threshold && s > 0.0)
            .collect();
        if let Some(m) = self.max_neighbors {
            kept = cap_neighbors(n, kept, m);
        }
        SimilarityGraph::from_edges(n, &kept)
    }
}

/// Keeps, per node, its `m` strongest incident edges; an edge survives if
/// either endpoint keeps it.
fn cap_neighbors(
    n: usize,
    edges: Vec<(TaskId, TaskId, f64)>,
    m: usize,
) -> Vec<(TaskId, TaskId, f64)> {
    let mut incident: Vec<Vec<(f64, usize)>> = vec![Vec::new(); n];
    for (idx, &(a, b, s)) in edges.iter().enumerate() {
        incident[a.index()].push((s, idx));
        incident[b.index()].push((s, idx));
    }
    let mut keep = vec![false; edges.len()];
    for list in &mut incident {
        // Strongest first; deterministic tie-break on edge index.
        list.sort_unstable_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
        for &(_, idx) in list.iter().take(m) {
            keep[idx] = true;
        }
    }
    edges
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| keep[i])
        .map(|(_, e)| e)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::Microtask;
    use icrowd_text::jaccard::JaccardSimilarity;
    use icrowd_text::tokenize::Tokenizer;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    /// The twelve Table-1 microtasks with their token columns.
    fn table1_tasks() -> TaskSet {
        [
            "iphone 4 WiFi 32GB four 3G black",
            "ipod touch 32GB WiFi headphone",
            "ipad 3 WiFi 32GB black new cover white",
            "iphone four WiFi 16GB 3G",
            "iphone 4 case black WiFi 32GB",
            "iphone 4 WiFi 32GB four",
            "ipod touch 32GB WiFi case black",
            "ipod touch nano headphone",
            "ipod touch WiFi nano headphone",
            "ipad 3 WiFi 32GB black iphone 4 cover white",
            "ipad 4 WiFi 16GB retina display",
            "ipad 3 cover white new",
        ]
        .iter()
        .enumerate()
        .map(|(i, text)| Microtask::binary(TaskId(i as u32), *text))
        .collect()
    }

    #[test]
    fn figure3_jaccard_graph_has_expected_edges() {
        // Paper, Section 3.3: Jaccard over Table 1 token sets with
        // threshold 0.5 produces Figure 3, including the 4/7 edge (t2, t7).
        let tasks = table1_tasks();
        let metric = JaccardSimilarity::new(&tasks, &Tokenizer::keeping_stopwords());
        let g = GraphBuilder::new(0.5).build(&tasks, &metric);
        let s27 = g.similarity(t(1), t(6)); // t2, t7 in paper numbering
        assert!(
            (s27 - 4.0 / 7.0).abs() < 1e-12,
            "t2-t7 edge is 4/7, got {s27}"
        );
        // iPhone tasks t1 and t6 are connected; iPhone t1 and iPod t8 are not.
        assert!(g.similarity(t(0), t(5)) >= 0.5);
        assert_eq!(g.similarity(t(0), t(7)), 0.0);
        // Only t11 ("ipad 4 ... retina display") lacks a >= 0.5 Jaccard
        // neighbor: its best overlap (with t10) is 3/12.
        assert_eq!(g.isolated_tasks().collect::<Vec<_>>(), vec![t(10)]);
    }

    #[test]
    fn threshold_prunes_edges() {
        let tasks = table1_tasks();
        let metric = JaccardSimilarity::new(&tasks, &Tokenizer::keeping_stopwords());
        let loose = GraphBuilder::new(0.1).build(&tasks, &metric);
        let tight = GraphBuilder::new(0.9).build(&tasks, &metric);
        assert!(loose.num_edges() > tight.num_edges());
    }

    #[test]
    fn neighbor_cap_limits_strongest_edges() {
        // Star: node 0 connected to 1..=4 with rising weights.
        let edges: Vec<_> = (1..5u32).map(|i| (t(0), t(i), 0.2 * i as f64)).collect();
        let g = GraphBuilder::new(0.0)
            .with_max_neighbors(2)
            .build_from_edges(5, edges);
        // Node 0 keeps its two strongest (to 3 and 4); but 1 and 2 each keep
        // their only edge, so the union retains all four edges... each leaf
        // keeps its single incident edge. Union semantics: all survive.
        assert_eq!(g.num_edges(), 4);

        // A clique where capping bites: 4 nodes, all 6 edges weight graded.
        let clique = vec![
            (t(0), t(1), 0.9),
            (t(0), t(2), 0.8),
            (t(0), t(3), 0.1),
            (t(1), t(2), 0.7),
            (t(1), t(3), 0.2),
            (t(2), t(3), 0.3),
        ];
        let g = GraphBuilder::new(0.0)
            .with_max_neighbors(2)
            .build_from_edges(4, clique);
        // Node 3's strongest two are (2,3) and (1,3); edge (0,3) is kept by
        // neither endpoint and must vanish.
        assert_eq!(g.similarity(t(0), t(3)), 0.0);
        assert!(g.similarity(t(2), t(3)) > 0.0);
    }

    #[test]
    fn build_from_edges_applies_threshold() {
        let g =
            GraphBuilder::new(0.5).build_from_edges(3, vec![(t(0), t(1), 0.4), (t(1), t(2), 0.6)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.similarity(t(1), t(2)), 0.6);
    }

    #[test]
    fn parallel_pairwise_sweep_matches_serial() {
        let tasks = table1_tasks();
        let metric = JaccardSimilarity::new(&tasks, &Tokenizer::keeping_stopwords());
        let serial = GraphBuilder::new(0.3)
            .with_threads(1)
            .build(&tasks, &metric);
        for threads in [0usize, 2, 3, 8] {
            let parallel = GraphBuilder::new(0.3)
                .with_threads(threads)
                .build(&tasks, &metric);
            assert_eq!(
                parallel.num_edges(),
                serial.num_edges(),
                "threads={threads}"
            );
            for i in 0..tasks.len() as u32 {
                for j in 0..tasks.len() as u32 {
                    assert_eq!(
                        parallel.similarity(t(i), t(j)).to_bits(),
                        serial.similarity(t(i), t(j)).to_bits(),
                        "edge ({i},{j}) differs at threads={threads}"
                    );
                }
            }
        }
        // The neighbor cap composes with the parallel sweep: tie-breaks
        // key on edge index, which row-ordered concatenation preserves.
        let capped_serial = GraphBuilder::new(0.1)
            .with_max_neighbors(2)
            .with_threads(1)
            .build(&tasks, &metric);
        let capped_parallel = GraphBuilder::new(0.1)
            .with_max_neighbors(2)
            .with_threads(4)
            .build(&tasks, &metric);
        assert_eq!(capped_parallel.num_edges(), capped_serial.num_edges());
    }

    #[test]
    #[should_panic(expected = "threshold must lie in [0, 1]")]
    fn bad_threshold_rejected() {
        GraphBuilder::new(1.5);
    }

    #[test]
    #[should_panic(expected = "max_neighbors must be positive")]
    fn zero_cap_rejected() {
        GraphBuilder::new(0.5).with_max_neighbors(0);
    }
}
