//! Torn-tail property tests for the campaign journal: truncating or
//! corrupting the file at *any* byte offset must never panic the
//! reader, and what survives must be exactly the longest valid prefix
//! of the records that were written.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use icrowd_platform::journal::{fingerprint, JOURNAL_VERSION};
use icrowd_platform::{
    read_journal, JournalHeader, JournalOp, JournalRecord, JournalWriter, PollTag,
};
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "icrowd_journal_torn_{}_{}.bin",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn header() -> JournalHeader {
    JournalHeader {
        version: JOURNAL_VERSION,
        dataset: "table1".into(),
        approach: "RandomMV".into(),
        seed: 42,
        config_fp: fingerprint("torn-test"),
    }
}

/// Decodes one generated tuple into an op (selector picks the variant).
fn build_op((kind, wi, task, answer): (u8, u32, u32, u8)) -> JournalOp {
    let worker = format!("W{}", wi + 1);
    match kind {
        0 => JournalOp::Poll {
            worker,
            tag: PollTag::Assigned(task),
        },
        1 => JournalOp::Poll {
            worker,
            tag: PollTag::DeclinedRetry,
        },
        2 => JournalOp::Submit {
            worker,
            task,
            answer,
            verdict: if answer == 0 {
                "accepted".to_owned()
            } else {
                "rejected:duplicate".to_owned()
            },
        },
        _ => JournalOp::Pump,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncation at any offset keeps a clean prefix: the reader never
    /// panics, every surviving op equals the op originally written at
    /// that position, and valid + truncated bytes cover the whole file.
    #[test]
    fn truncation_at_any_offset_keeps_the_longest_valid_prefix(
        raw in proptest::collection::vec((0u8..4, 0u32..16, 0u32..64, 0u8..4), 1..40),
        cut in 0usize..4096,
    ) {
        let ops: Vec<JournalOp> = raw.into_iter().map(build_op).collect();
        let path = tmp_path();
        let mut w = JournalWriter::create(&path, 0).unwrap();
        w.append(&JournalRecord::Header(header())).unwrap();
        for op in &ops {
            w.append(&JournalRecord::Op(op.clone())).unwrap();
        }
        drop(w);

        let full = std::fs::read(&path).unwrap();
        let cut = cut % (full.len() + 1);
        std::fs::write(&path, &full[..cut]).unwrap();

        let r = read_journal(&path).unwrap();
        prop_assert!(r.ops.len() <= ops.len());
        prop_assert_eq!(&r.ops[..], &ops[..r.ops.len()], "prefix must be exact");
        prop_assert_eq!(r.valid_bytes + r.truncated_bytes, cut as u64);
        if cut == full.len() {
            prop_assert_eq!(r.header.as_ref(), Some(&header()));
            prop_assert_eq!(r.ops.len(), ops.len());
            prop_assert_eq!(r.truncated_bytes, 0);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any byte anywhere in the file never panics the reader,
    /// and the ops that survive are still an exact positional prefix —
    /// the CRC catches the damage at or before the flipped record.
    #[test]
    fn corruption_at_any_offset_never_panics_and_keeps_a_prefix(
        raw in proptest::collection::vec((0u8..4, 0u32..16, 0u32..64, 0u8..4), 1..40),
        at in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let ops: Vec<JournalOp> = raw.into_iter().map(build_op).collect();
        let path = tmp_path();
        let mut w = JournalWriter::create(&path, 0).unwrap();
        w.append(&JournalRecord::Header(header())).unwrap();
        for op in &ops {
            w.append(&JournalRecord::Op(op.clone())).unwrap();
        }
        drop(w);

        let mut bytes = std::fs::read(&path).unwrap();
        let at = at % bytes.len();
        bytes[at] ^= flip;
        std::fs::write(&path, &bytes).unwrap();

        let r = read_journal(&path).unwrap();
        prop_assert!(r.ops.len() <= ops.len());
        prop_assert_eq!(&r.ops[..], &ops[..r.ops.len()], "prefix must be exact");
        prop_assert!(r.valid_bytes + r.truncated_bytes == bytes.len() as u64);
        std::fs::remove_file(&path).ok();
    }
}
