//! # icrowd-platform
//!
//! A simulated Amazon Mechanical Turk marketplace — the substitute for
//! the live platform of the paper's Appendix A.
//!
//! The paper's deployment wraps microtasks in HITs carrying only an
//! *ExternalQuestion* URL: when a worker accepts a HIT and asks for work,
//! AMT calls iCrowd's web server, which decides the actual assignment;
//! answers flow back the same way and iCrowd triggers payment through the
//! AMT API. Everything iCrowd can observe of AMT is therefore the
//! request → assign → answer → pay loop, and that loop is exactly what
//! this crate simulates:
//!
//! * [`hit`] — HIT batches (10 microtasks per HIT, $0.10 per assignment
//!   in the paper's setup) with bounded assignments per HIT.
//! * [`session`] — per-worker HIT sessions (accept, work, submit,
//!   abandon).
//! * [`market`] — the deterministic event-driven marketplace loop
//!   driving pluggable worker behaviours against a pluggable
//!   [`ExternalQuestionServer`] (the role iCrowd or any baseline plays).
//! * [`driver`] — the same loop as a suspendable state machine
//!   ([`MarketDriver`]), split at the answer point so a TCP serving
//!   layer can host the identical deterministic schedule.
//! * [`payment`] — the payment ledger.
//! * [`events`] — a structured, serializable event log for replay and
//!   debugging.
//! * [`faults`] — seedable fault injection (dropped, duplicated, and
//!   late answers; stalls; churn spikes) for chaos-testing the loop.
//! * [`journal`] — a crash-consistent write-ahead journal of driver
//!   mutations (CRC32-framed records, batched fsync, snapshots with
//!   compaction) that a serving layer replays to recover a campaign.
//! * [`concurrent`] — a crossbeam-channel deployment of the same loop
//!   with workers on real threads, used to demonstrate that assignment is
//!   instant under concurrent request load.

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod concurrent;
pub mod driver;
pub mod events;
pub mod faults;
pub mod hit;
pub mod journal;
pub mod market;
pub mod payment;
pub mod session;

pub use driver::{MarketDriver, PendingAssignment, PollOutcome, SubmitReport, TurnOutcome};
pub use events::{EventLog, MarketEvent, RejectReason};
pub use faults::{ChurnSpike, FaultConfig, FaultPlan, FaultStats};
pub use hit::{HitId, HitPool};
pub use journal::{
    read_journal, JournalHeader, JournalOp, JournalReadout, JournalRecord, JournalSnapshot,
    JournalWriter, PollTag,
};
pub use market::{
    ExternalQuestionServer, MarketAccounting, MarketConfig, MarketOutcome, Marketplace,
    SubmitOutcome, WorkerScript,
};
pub use payment::PaymentLedger;
pub use session::{SessionState, WorkerSession};
