//! Seedable fault injection for the simulated marketplace.
//!
//! The paper's adaptive assigner exists precisely because AMT is
//! unreliable: workers vanish mid-HIT, submissions get lost or arrive
//! late, and answer streams contain duplicates. A [`FaultPlan`] injects
//! exactly those failure modes into [`crate::market::Marketplace`] runs —
//! deterministically under a seed, so every chaos run is reproducible and
//! regressions bisect cleanly:
//!
//! * **drop** — the worker answers but the submission is lost in
//!   transit; the server never sees it and the assignment lease must
//!   expire before the task is reassignable.
//! * **duplicate** — an accepted submission is delivered a second time;
//!   the server must reject the copy so each answer is recorded and paid
//!   at most once.
//! * **late** — the answer arrives a bounded number of ticks after the
//!   assignment, possibly after the lease expired or the task reached
//!   consensus; the server must reject stale deliveries.
//! * **stall** — the worker holds her assignment forever and never
//!   returns (a no-show); only lease reclamation frees the capacity.
//! * **churn spikes** — a fraction of the crowd departs at a given tick,
//!   modelling mass abandonment.
//!
//! Decisions come from a counter-seeded splitmix64 stream, *not* a shared
//! mutable RNG: given the same event sequence (the marketplace loop is
//! deterministic) every decision is identical run to run, and a plan with
//! all rates at zero takes exactly the no-fault code paths, keeping
//! fault-free runs bit-identical to a run without any plan at all.

/// A crowd-departure spike: at tick `at`, each not-yet-departed worker
/// leaves with probability `fraction`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpike {
    /// The tick at (or after) which the spike applies.
    pub at: u64,
    /// The probability that a worker departs, in `[0, 1]`.
    pub fraction: f64,
}

/// Configuration of the fault injector. All rates are per-event
/// probabilities in `[0, 1]`; the default injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Probability that a submitted answer is lost in transit.
    pub drop_rate: f64,
    /// Probability that an accepted answer is delivered a second time.
    pub dup_rate: f64,
    /// Probability that an answer is delayed rather than delivered
    /// immediately.
    pub late_rate: f64,
    /// Maximum delay of a late answer, in ticks (delays are drawn
    /// uniformly from `1..=late_max_ticks`).
    pub late_max_ticks: u64,
    /// Probability that a worker stalls on an assignment (holds it
    /// forever and never returns).
    pub stall_rate: f64,
    /// Departure spikes, evaluated per worker at her first turn at or
    /// after each spike's tick.
    pub churn: Vec<ChurnSpike>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            late_rate: 0.0,
            late_max_ticks: 8,
            stall_rate: 0.0,
            churn: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// Whether this plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.drop_rate == 0.0
            && self.dup_rate == 0.0
            && self.late_rate == 0.0
            && self.stall_rate == 0.0
            && self.churn.iter().all(|c| c.fraction == 0.0)
    }

    /// Validates rate ranges.
    ///
    /// # Errors
    /// Returns a human-readable message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let unit = |name: &str, v: f64| -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must lie in [0, 1], got {v}"))
            }
        };
        unit("drop rate", self.drop_rate)?;
        unit("dup rate", self.dup_rate)?;
        unit("late rate", self.late_rate)?;
        unit("stall rate", self.stall_rate)?;
        for c in &self.churn {
            unit("churn fraction", c.fraction)?;
        }
        if self.late_max_ticks == 0 {
            return Err("late_max_ticks must be at least 1".into());
        }
        Ok(())
    }

    /// Parses a compact fault specification, the format accepted by
    /// `icrowd campaign --faults <spec>` and the `chaos` bench bin:
    ///
    /// ```text
    /// drop=0.2,stall=0.05,dup=0.1,late=0.1:12,churn=50:0.3,seed=7
    /// ```
    ///
    /// `late` takes an optional `:maxticks` suffix; `churn=TICK:FRACTION`
    /// may repeat. Unknown keys and out-of-range rates are errors.
    ///
    /// # Errors
    /// Returns a human-readable message describing the malformed field.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut config = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{part}` is not key=value"))?;
            let bad = |what: &str| format!("invalid {what} in fault spec entry `{part}`");
            match key.trim() {
                "seed" => config.seed = value.parse().map_err(|_| bad("seed"))?,
                "drop" => config.drop_rate = value.parse().map_err(|_| bad("rate"))?,
                "dup" => config.dup_rate = value.parse().map_err(|_| bad("rate"))?,
                "stall" => config.stall_rate = value.parse().map_err(|_| bad("rate"))?,
                "late" => match value.split_once(':') {
                    Some((rate, max)) => {
                        config.late_rate = rate.parse().map_err(|_| bad("rate"))?;
                        config.late_max_ticks = max.parse().map_err(|_| bad("max ticks"))?;
                    }
                    None => config.late_rate = value.parse().map_err(|_| bad("rate"))?,
                },
                "churn" => {
                    let (at, fraction) = value
                        .split_once(':')
                        .ok_or_else(|| bad("churn spike (want TICK:FRACTION)"))?;
                    config.churn.push(ChurnSpike {
                        at: at.parse().map_err(|_| bad("churn tick"))?,
                        fraction: fraction.parse().map_err(|_| bad("churn fraction"))?,
                    });
                }
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        config.churn.sort_by_key(|c| c.at);
        config.validate()?;
        Ok(config)
    }
}

/// Tally of faults actually injected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Answers lost in transit.
    pub drops: u64,
    /// Duplicate deliveries injected.
    pub dups: u64,
    /// Answers delivered late.
    pub lates: u64,
    /// Workers stalled on an assignment.
    pub stalls: u64,
    /// Workers departed in churn spikes.
    pub churned: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.drops + self.dups + self.lates + self.stalls + self.churned
    }
}

/// The per-run fault injector: a [`FaultConfig`] plus a deterministic
/// decision counter and the injection tally.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    counter: u64,
    stats: FaultStats,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// Builds the injector for one run.
    pub fn new(config: FaultConfig) -> Self {
        Self {
            config,
            counter: 0,
            stats: FaultStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Next raw 64-bit draw of the decision stream.
    fn next_u64(&mut self) -> u64 {
        self.counter += 1;
        splitmix64(self.config.seed.wrapping_mul(0xA24B_AED4_963E_E407) ^ self.counter)
    }

    /// Next draw mapped to `[0, 1)`.
    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should this answer stall (never be submitted)?
    pub fn stall(&mut self) -> bool {
        let hit = self.next_unit() < self.config.stall_rate;
        if hit {
            self.stats.stalls += 1;
        }
        hit
    }

    /// Should this submission be lost in transit?
    pub fn drop_answer(&mut self) -> bool {
        let hit = self.next_unit() < self.config.drop_rate;
        if hit {
            self.stats.drops += 1;
        }
        hit
    }

    /// Delay for a late delivery, if this answer is late.
    pub fn late_delay(&mut self) -> Option<u64> {
        if self.next_unit() < self.config.late_rate {
            self.stats.lates += 1;
            Some(1 + self.next_u64() % self.config.late_max_ticks)
        } else {
            None
        }
    }

    /// Should this accepted answer be delivered a second time?
    pub fn duplicate(&mut self) -> bool {
        let hit = self.next_unit() < self.config.dup_rate;
        if hit {
            self.stats.dups += 1;
        }
        hit
    }

    /// Number of churn spikes configured.
    pub fn num_spikes(&self) -> usize {
        self.config.churn.len()
    }

    /// Evaluates spike `spike` for one worker: does she depart?
    pub fn churn_hits(&mut self, spike: usize) -> bool {
        let hit = self.next_unit() < self.config.churn[spike].fraction;
        if hit {
            self.stats.churned += 1;
        }
        hit
    }

    /// The tick of spike `spike`.
    pub fn spike_at(&self, spike: usize) -> u64 {
        self.config.churn[spike].at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let c = FaultConfig::parse("drop=0.2,stall=0.05,dup=0.1,late=0.1:12,churn=50:0.3,seed=7")
            .unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.drop_rate, 0.2);
        assert_eq!(c.stall_rate, 0.05);
        assert_eq!(c.dup_rate, 0.1);
        assert_eq!(c.late_rate, 0.1);
        assert_eq!(c.late_max_ticks, 12);
        assert_eq!(
            c.churn,
            vec![ChurnSpike {
                at: 50,
                fraction: 0.3
            }]
        );
        assert!(!c.is_noop());
    }

    #[test]
    fn parse_defaults_and_noop() {
        let c = FaultConfig::parse("").unwrap();
        assert!(c.is_noop());
        assert_eq!(c, FaultConfig::default());
        let c = FaultConfig::parse("late=0.5").unwrap();
        assert_eq!(c.late_max_ticks, 8, "default max delay");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultConfig::parse("drop").is_err());
        assert!(FaultConfig::parse("drop=banana").is_err());
        assert!(FaultConfig::parse("drop=1.5").is_err());
        assert!(FaultConfig::parse("warp=0.1").is_err());
        assert!(FaultConfig::parse("churn=50").is_err());
        assert!(FaultConfig::parse("late=0.1:0").is_err());
    }

    #[test]
    fn churn_spikes_sort_by_tick() {
        let c = FaultConfig::parse("churn=90:0.1,churn=10:0.2").unwrap();
        assert_eq!(c.churn[0].at, 10);
        assert_eq!(c.churn[1].at, 90);
    }

    #[test]
    fn decision_stream_is_deterministic() {
        let config = FaultConfig {
            seed: 99,
            drop_rate: 0.3,
            late_rate: 0.3,
            ..Default::default()
        };
        let mut a = FaultPlan::new(config.clone());
        let mut b = FaultPlan::new(config);
        let da: Vec<_> = (0..64).map(|_| (a.drop_answer(), a.late_delay())).collect();
        let db: Vec<_> = (0..64).map(|_| (b.drop_answer(), b.late_delay())).collect();
        assert_eq!(da, db);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().drops > 0, "30% of 64 draws should hit");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = FaultPlan::new(FaultConfig {
            seed: 1,
            drop_rate: 0.5,
            ..Default::default()
        });
        let mut b = FaultPlan::new(FaultConfig {
            seed: 2,
            drop_rate: 0.5,
            ..Default::default()
        });
        let da: Vec<_> = (0..64).map(|_| a.drop_answer()).collect();
        let db: Vec<_> = (0..64).map(|_| b.drop_answer()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn zero_rates_never_fire() {
        let mut p = FaultPlan::new(FaultConfig::default());
        for _ in 0..100 {
            assert!(!p.stall());
            assert!(!p.drop_answer());
            assert!(p.late_delay().is_none());
            assert!(!p.duplicate());
        }
        assert_eq!(p.stats().total(), 0);
    }

    #[test]
    fn rates_are_roughly_honored() {
        let mut p = FaultPlan::new(FaultConfig {
            seed: 42,
            drop_rate: 0.25,
            ..Default::default()
        });
        let hits = (0..4000).filter(|_| p.drop_answer()).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "empirical drop rate {rate}");
    }
}
