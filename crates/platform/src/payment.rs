//! The payment ledger.
//!
//! AMT pays the posted reward when a worker submits a completed HIT; the
//! requester's spend is the number of paid assignments times the reward.
//! The ledger records per-worker earnings and exposes the accounting
//! invariants the integration tests check (total spend = Σ earnings).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::hit::HitId;

/// Per-worker earnings and requester spend, in cents.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PaymentLedger {
    /// Earnings per external worker id.
    earnings: BTreeMap<String, u64>,
    /// Paid `(worker, hit)` submissions, for audit.
    payments: Vec<(String, HitId, u32)>,
}

impl PaymentLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pays `reward_cents` to `worker` for submitting `hit`.
    pub fn pay(&mut self, worker: &str, hit: HitId, reward_cents: u32) {
        *self.earnings.entry(worker.to_owned()).or_insert(0) += u64::from(reward_cents);
        self.payments.push((worker.to_owned(), hit, reward_cents));
    }

    /// Total earnings of `worker`, in cents.
    pub fn earnings(&self, worker: &str) -> u64 {
        self.earnings.get(worker).copied().unwrap_or(0)
    }

    /// Total requester spend, in cents.
    pub fn total_spend(&self) -> u64 {
        self.payments.iter().map(|&(_, _, c)| u64::from(c)).sum()
    }

    /// Number of paid submissions.
    pub fn num_payments(&self) -> usize {
        self.payments.len()
    }

    /// Iterates over `(worker, earnings_cents)` pairs, workers sorted.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.earnings.iter().map(|(w, &c)| (w.as_str(), c))
    }

    /// The audit trail of individual payments.
    pub fn payments(&self) -> &[(String, HitId, u32)] {
        &self.payments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payments_accumulate_per_worker() {
        let mut ledger = PaymentLedger::new();
        ledger.pay("A", HitId(0), 10);
        ledger.pay("B", HitId(0), 10);
        ledger.pay("A", HitId(1), 10);
        assert_eq!(ledger.earnings("A"), 20);
        assert_eq!(ledger.earnings("B"), 10);
        assert_eq!(ledger.earnings("C"), 0);
        assert_eq!(ledger.total_spend(), 30);
        assert_eq!(ledger.num_payments(), 3);
    }

    #[test]
    fn spend_equals_sum_of_earnings() {
        let mut ledger = PaymentLedger::new();
        for i in 0..20u32 {
            ledger.pay(&format!("W{}", i % 7), HitId(i), 10);
        }
        let sum: u64 = ledger.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, ledger.total_spend());
    }
}
