//! Worker sessions — a worker's interaction with one HIT.
//!
//! A session walks the Appendix-A flow: accept a HIT, repeatedly request
//! a microtask and submit an answer ("when the worker finishes the
//! microtask and clicks the Next link, we assign the next microtask"),
//! and finally submit the HIT for payment — or abandon it partway.

use serde::{Deserialize, Serialize};

use icrowd_core::task::TaskId;
use icrowd_core::worker::Tick;

use crate::hit::HitId;

/// Where a session stands in the HIT lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionState {
    /// Holding a HIT, ready to request the next microtask.
    Ready,
    /// A microtask has been assigned and awaits the worker's answer.
    Working(TaskId),
    /// The HIT was submitted (paid) or abandoned; the session is closed.
    Closed,
}

/// One worker's session on one HIT.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerSession {
    /// The platform-side worker identifier (AMT's opaque worker id).
    pub external_id: String,
    /// The HIT this session holds.
    pub hit: HitId,
    /// Microtasks answered so far within this HIT.
    pub answered: usize,
    /// Current state.
    pub state: SessionState,
    /// When the session started.
    pub started: Tick,
}

impl WorkerSession {
    /// Opens a session on `hit`.
    pub fn open(external_id: impl Into<String>, hit: HitId, now: Tick) -> Self {
        Self {
            external_id: external_id.into(),
            hit,
            answered: 0,
            state: SessionState::Ready,
            started: now,
        }
    }

    /// Marks a microtask as assigned.
    ///
    /// # Panics
    /// Panics unless the session is `Ready`.
    pub fn assign(&mut self, task: TaskId) {
        assert_eq!(
            self.state,
            SessionState::Ready,
            "can only assign to a ready session"
        );
        self.state = SessionState::Working(task);
    }

    /// Records the answer to the in-flight microtask, returning it.
    ///
    /// # Panics
    /// Panics unless the session is `Working`.
    pub fn complete_task(&mut self) -> TaskId {
        let SessionState::Working(task) = self.state else {
            panic!("no microtask in flight");
        };
        self.answered += 1;
        self.state = SessionState::Ready;
        task
    }

    /// Abandons the in-flight microtask without credit, returning it.
    /// Used when a submission is lost in transit or rejected: the worker
    /// goes back to `Ready` but her answer count is unchanged.
    ///
    /// # Panics
    /// Panics unless the session is `Working`.
    pub fn abort_task(&mut self) -> TaskId {
        let SessionState::Working(task) = self.state else {
            panic!("no microtask in flight");
        };
        self.state = SessionState::Ready;
        task
    }

    /// Whether the worker has answered the full HIT quota.
    pub fn hit_finished(&self, tasks_per_hit: usize) -> bool {
        self.answered >= tasks_per_hit
    }

    /// Closes the session (submission or abandonment).
    pub fn close(&mut self) {
        self.state = SessionState::Closed;
    }

    /// The task in flight, if any.
    pub fn in_flight(&self) -> Option<TaskId> {
        match self.state {
            SessionState::Working(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_walkthrough() {
        let mut s = WorkerSession::open("AMT-X", HitId(0), Tick(5));
        assert_eq!(s.state, SessionState::Ready);
        assert_eq!(s.in_flight(), None);

        s.assign(TaskId(3));
        assert_eq!(s.in_flight(), Some(TaskId(3)));
        assert_eq!(s.complete_task(), TaskId(3));
        assert_eq!(s.answered, 1);
        assert!(!s.hit_finished(10));
        assert!(s.hit_finished(1));

        s.close();
        assert_eq!(s.state, SessionState::Closed);
    }

    #[test]
    fn abort_returns_task_without_credit() {
        let mut s = WorkerSession::open("A", HitId(0), Tick(0));
        s.assign(TaskId(4));
        assert_eq!(s.abort_task(), TaskId(4));
        assert_eq!(s.answered, 0);
        assert_eq!(s.state, SessionState::Ready);
    }

    #[test]
    #[should_panic(expected = "ready session")]
    fn double_assignment_rejected() {
        let mut s = WorkerSession::open("A", HitId(0), Tick(0));
        s.assign(TaskId(0));
        s.assign(TaskId(1));
    }

    #[test]
    #[should_panic(expected = "no microtask in flight")]
    fn completing_without_assignment_rejected() {
        let mut s = WorkerSession::open("A", HitId(0), Tick(0));
        s.complete_task();
    }
}
