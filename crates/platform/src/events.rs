//! Structured marketplace event log.
//!
//! Every observable interaction on the simulated platform is recorded as
//! a [`MarketEvent`]; the log serializes to JSON lines for replay and
//! debugging, and the integration tests assert accounting invariants over
//! it (e.g. every payment is preceded by enough submissions).

use serde::{Deserialize, Serialize};

use icrowd_core::answer::Answer;
use icrowd_core::task::TaskId;
use icrowd_core::worker::Tick;

use crate::hit::HitId;

/// One marketplace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MarketEvent {
    /// A worker arrived and accepted a HIT.
    HitAccepted {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The accepted HIT.
        hit: HitId,
    },
    /// The server assigned a microtask to a requesting worker.
    TaskAssigned {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The assigned microtask.
        task: TaskId,
    },
    /// A worker requested work but the server had nothing for her.
    RequestDeclined {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
    },
    /// A worker submitted an answer.
    AnswerSubmitted {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The answered microtask.
        task: TaskId,
        /// The answer.
        answer: Answer,
    },
    /// A worker submitted a completed HIT and was paid.
    HitSubmitted {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The submitted HIT.
        hit: HitId,
        /// The payment, in cents.
        reward_cents: u32,
    },
    /// A worker abandoned her HIT (left before finishing).
    HitAbandoned {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The abandoned HIT.
        hit: HitId,
    },
}

impl MarketEvent {
    /// A stable kebab-ish name for the variant, used as the telemetry
    /// counter / event key (`market.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            MarketEvent::HitAccepted { .. } => "hit_accepted",
            MarketEvent::TaskAssigned { .. } => "task_assigned",
            MarketEvent::RequestDeclined { .. } => "request_declined",
            MarketEvent::AnswerSubmitted { .. } => "answer_submitted",
            MarketEvent::HitSubmitted { .. } => "hit_submitted",
            MarketEvent::HitAbandoned { .. } => "hit_abandoned",
        }
    }

    /// The event timestamp.
    pub fn at(&self) -> Tick {
        match self {
            MarketEvent::HitAccepted { at, .. }
            | MarketEvent::TaskAssigned { at, .. }
            | MarketEvent::RequestDeclined { at, .. }
            | MarketEvent::AnswerSubmitted { at, .. }
            | MarketEvent::HitSubmitted { at, .. }
            | MarketEvent::HitAbandoned { at, .. } => *at,
        }
    }

    /// The worker the event concerns.
    pub fn worker(&self) -> &str {
        match self {
            MarketEvent::HitAccepted { worker, .. }
            | MarketEvent::TaskAssigned { worker, .. }
            | MarketEvent::RequestDeclined { worker, .. }
            | MarketEvent::AnswerSubmitted { worker, .. }
            | MarketEvent::HitSubmitted { worker, .. }
            | MarketEvent::HitAbandoned { worker, .. } => worker,
        }
    }
}

/// An append-only event log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<MarketEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event, tallying the HIT-lifecycle transition in the
    /// telemetry sink (no-op when telemetry is disabled).
    pub fn push(&mut self, event: MarketEvent) {
        debug_assert!(
            self.events
                .last()
                .is_none_or(|last| last.at() <= event.at()),
            "events must arrive in tick order"
        );
        if icrowd_obs::is_enabled() {
            icrowd_obs::counter_add(&format!("market.{}", event.kind()), 1);
        }
        self.events.push(event);
    }

    /// All events, in arrival order.
    pub fn events(&self) -> &[MarketEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the log as JSON lines.
    pub fn to_json_lines(&self) -> String {
        self.events
            .iter()
            .map(|e| serde_json::to_string(e).expect("events serialize"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parses a log from JSON lines.
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json_lines(s: &str) -> Result<Self, serde_json::Error> {
        let events = s
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { events })
    }

    /// Bridges every logged event into the `icrowd-obs` sink as a typed
    /// JSON event (no-op when telemetry is disabled), so marketplace
    /// history lands in the same JSONL export as spans and counters.
    pub fn export_to_obs(&self) {
        if !icrowd_obs::is_enabled() {
            return;
        }
        for e in &self.events {
            let payload = serde_json::to_string(e).expect("events serialize");
            icrowd_obs::event_json(&format!("market.{}", e.kind()), &payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let events = [
            MarketEvent::HitAccepted {
                at: Tick(1),
                worker: "A".into(),
                hit: HitId(0),
            },
            MarketEvent::TaskAssigned {
                at: Tick(2),
                worker: "A".into(),
                task: TaskId(0),
            },
            MarketEvent::RequestDeclined {
                at: Tick(3),
                worker: "B".into(),
            },
            MarketEvent::AnswerSubmitted {
                at: Tick(4),
                worker: "A".into(),
                task: TaskId(0),
                answer: Answer::YES,
            },
            MarketEvent::HitSubmitted {
                at: Tick(5),
                worker: "A".into(),
                hit: HitId(0),
                reward_cents: 10,
            },
            MarketEvent::HitAbandoned {
                at: Tick(6),
                worker: "B".into(),
                hit: HitId(1),
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.at(), Tick(i as u64 + 1));
        }
        assert_eq!(events[2].worker(), "B");
    }

    #[test]
    fn json_round_trip() {
        let mut log = EventLog::new();
        log.push(MarketEvent::HitAccepted {
            at: Tick(0),
            worker: "A".into(),
            hit: HitId(0),
        });
        log.push(MarketEvent::AnswerSubmitted {
            at: Tick(1),
            worker: "A".into(),
            task: TaskId(7),
            answer: Answer::NO,
        });
        let text = log.to_json_lines();
        let parsed = EventLog::from_json_lines(&text).unwrap();
        assert_eq!(parsed.events(), log.events());
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(EventLog::from_json_lines("not json").is_err());
    }

    #[test]
    fn kind_names_are_distinct() {
        let kinds = [
            MarketEvent::HitAccepted {
                at: Tick(0),
                worker: String::new(),
                hit: HitId(0),
            }
            .kind(),
            MarketEvent::TaskAssigned {
                at: Tick(0),
                worker: String::new(),
                task: TaskId(0),
            }
            .kind(),
            MarketEvent::RequestDeclined {
                at: Tick(0),
                worker: String::new(),
            }
            .kind(),
            MarketEvent::AnswerSubmitted {
                at: Tick(0),
                worker: String::new(),
                task: TaskId(0),
                answer: Answer::YES,
            }
            .kind(),
            MarketEvent::HitSubmitted {
                at: Tick(0),
                worker: String::new(),
                hit: HitId(0),
                reward_cents: 0,
            }
            .kind(),
            MarketEvent::HitAbandoned {
                at: Tick(0),
                worker: String::new(),
                hit: HitId(0),
            }
            .kind(),
        ];
        let distinct: std::collections::BTreeSet<&str> = kinds.iter().copied().collect();
        assert_eq!(distinct.len(), kinds.len());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Worker ids exercising the serializer's escaping: quotes,
        /// backslashes, control characters, and non-ASCII.
        fn arb_worker() -> impl Strategy<Value = String> {
            "[a-zA-Z0-9 _.\"\\\n\té漢-]{0,12}"
        }

        /// One arbitrary event of any variant. Extreme ticks included:
        /// `Tick` is `u64` and must survive JSON untruncated.
        fn arb_event() -> impl Strategy<Value = MarketEvent> {
            (
                (0u8..6, 0u64..=u64::MAX),
                (arb_worker(), 0u32..=u32::MAX),
                (0u32..=u32::MAX, 0u8..=255),
            )
                .prop_map(|((sel, at), (worker, id), (reward, ans))| {
                    let at = Tick(at);
                    match sel {
                        0 => MarketEvent::HitAccepted {
                            at,
                            worker,
                            hit: HitId(id),
                        },
                        1 => MarketEvent::TaskAssigned {
                            at,
                            worker,
                            task: TaskId(id),
                        },
                        2 => MarketEvent::RequestDeclined { at, worker },
                        3 => MarketEvent::AnswerSubmitted {
                            at,
                            worker,
                            task: TaskId(id),
                            answer: Answer(ans),
                        },
                        4 => MarketEvent::HitSubmitted {
                            at,
                            worker,
                            hit: HitId(id),
                            reward_cents: reward,
                        },
                        _ => MarketEvent::HitAbandoned {
                            at,
                            worker,
                            hit: HitId(id),
                        },
                    }
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Every `MarketEvent` variant — with hostile worker ids and
            /// extreme numeric fields — survives the JSON-lines round
            /// trip bit-for-bit.
            #[test]
            fn json_lines_round_trip_all_variants(
                mut events in proptest::collection::vec(arb_event(), 0..24),
            ) {
                // `push` asserts tick monotonicity; order like a real run.
                events.sort_by_key(MarketEvent::at);
                let mut log = EventLog::new();
                for e in events {
                    log.push(e);
                }
                let text = log.to_json_lines();
                let parsed = EventLog::from_json_lines(&text).unwrap();
                prop_assert_eq!(parsed.events(), log.events());
            }
        }
    }
}
