//! Structured marketplace event log.
//!
//! Every observable interaction on the simulated platform is recorded as
//! a [`MarketEvent`]; the log serializes to JSON lines for replay and
//! debugging, and the integration tests assert accounting invariants over
//! it (e.g. every payment is preceded by enough submissions).

use serde::{Deserialize, Serialize};

use icrowd_core::answer::Answer;
use icrowd_core::task::TaskId;
use icrowd_core::worker::Tick;

use crate::hit::HitId;

/// Why the server refused to record a submitted answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The worker holds no assignment for this task.
    NotAssigned,
    /// The worker already answered this task; the copy is discarded.
    Duplicate,
    /// The assignment's lease expired before the answer arrived.
    LeaseExpired,
    /// The task already reached consensus; the late answer is moot.
    TaskCompleted,
}

impl RejectReason {
    /// A stable lowercase name, used as the telemetry counter suffix.
    pub fn name(&self) -> &'static str {
        match self {
            RejectReason::NotAssigned => "not_assigned",
            RejectReason::Duplicate => "duplicate",
            RejectReason::LeaseExpired => "lease_expired",
            RejectReason::TaskCompleted => "task_completed",
        }
    }

    /// The full telemetry counter name for this rejection, as a static
    /// string so the disabled-telemetry path never allocates (the obs
    /// crate's `noop_alloc` test covers every one of these).
    pub fn counter_name(&self) -> &'static str {
        match self {
            RejectReason::NotAssigned => "answer.rejected.not_assigned",
            RejectReason::Duplicate => "answer.rejected.duplicate",
            RejectReason::LeaseExpired => "answer.rejected.lease_expired",
            RejectReason::TaskCompleted => "answer.rejected.task_completed",
        }
    }
}

/// One marketplace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MarketEvent {
    /// A worker arrived and accepted a HIT.
    HitAccepted {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The accepted HIT.
        hit: HitId,
    },
    /// The server assigned a microtask to a requesting worker.
    TaskAssigned {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The assigned microtask.
        task: TaskId,
    },
    /// A worker requested work but the server had nothing for her.
    RequestDeclined {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
    },
    /// A worker submitted an answer.
    AnswerSubmitted {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The answered microtask.
        task: TaskId,
        /// The answer.
        answer: Answer,
    },
    /// A worker submitted a completed HIT and was paid.
    HitSubmitted {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The submitted HIT.
        hit: HitId,
        /// The payment, in cents.
        reward_cents: u32,
    },
    /// A worker abandoned her HIT (left before finishing).
    HitAbandoned {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The abandoned HIT.
        hit: HitId,
        /// Answers credited to the HIT before abandonment.
        answered: usize,
    },
    /// The server refused to record a submitted answer.
    AnswerRejected {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The task the rejected answer was for.
        task: TaskId,
        /// Why it was refused.
        reason: RejectReason,
    },
    /// An injected fault lost a submission in transit; the server never
    /// saw it.
    AnswerDropped {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The task whose answer was lost.
        task: TaskId,
    },
    /// An injected fault made the worker hold her assignment forever.
    WorkerStalled {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
        /// The task she is sitting on.
        task: TaskId,
    },
    /// An injected churn spike made the worker depart.
    WorkerChurned {
        /// When it happened.
        at: Tick,
        /// The worker's external id.
        worker: String,
    },
}

impl MarketEvent {
    /// A stable kebab-ish name for the variant, used as the telemetry
    /// counter / event key (`market.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            MarketEvent::HitAccepted { .. } => "hit_accepted",
            MarketEvent::TaskAssigned { .. } => "task_assigned",
            MarketEvent::RequestDeclined { .. } => "request_declined",
            MarketEvent::AnswerSubmitted { .. } => "answer_submitted",
            MarketEvent::HitSubmitted { .. } => "hit_submitted",
            MarketEvent::HitAbandoned { .. } => "hit_abandoned",
            MarketEvent::AnswerRejected { .. } => "answer_rejected",
            MarketEvent::AnswerDropped { .. } => "answer_dropped",
            MarketEvent::WorkerStalled { .. } => "worker_stalled",
            MarketEvent::WorkerChurned { .. } => "worker_churned",
        }
    }

    /// The event timestamp.
    pub fn at(&self) -> Tick {
        match self {
            MarketEvent::HitAccepted { at, .. }
            | MarketEvent::TaskAssigned { at, .. }
            | MarketEvent::RequestDeclined { at, .. }
            | MarketEvent::AnswerSubmitted { at, .. }
            | MarketEvent::HitSubmitted { at, .. }
            | MarketEvent::HitAbandoned { at, .. }
            | MarketEvent::AnswerRejected { at, .. }
            | MarketEvent::AnswerDropped { at, .. }
            | MarketEvent::WorkerStalled { at, .. }
            | MarketEvent::WorkerChurned { at, .. } => *at,
        }
    }

    /// The worker the event concerns.
    pub fn worker(&self) -> &str {
        match self {
            MarketEvent::HitAccepted { worker, .. }
            | MarketEvent::TaskAssigned { worker, .. }
            | MarketEvent::RequestDeclined { worker, .. }
            | MarketEvent::AnswerSubmitted { worker, .. }
            | MarketEvent::HitSubmitted { worker, .. }
            | MarketEvent::HitAbandoned { worker, .. }
            | MarketEvent::AnswerRejected { worker, .. }
            | MarketEvent::AnswerDropped { worker, .. }
            | MarketEvent::WorkerStalled { worker, .. }
            | MarketEvent::WorkerChurned { worker, .. } => worker,
        }
    }
}

/// An append-only event log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<MarketEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event, tallying the HIT-lifecycle transition in the
    /// telemetry sink (no-op when telemetry is disabled).
    pub fn push(&mut self, event: MarketEvent) {
        debug_assert!(
            self.events
                .last()
                .is_none_or(|last| last.at() <= event.at()),
            "events must arrive in tick order"
        );
        if icrowd_obs::is_enabled() {
            icrowd_obs::counter_add(&format!("market.{}", event.kind()), 1);
        }
        self.events.push(event);
    }

    /// All events, in arrival order.
    pub fn events(&self) -> &[MarketEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the log as JSON lines.
    pub fn to_json_lines(&self) -> String {
        self.events
            .iter()
            .map(|e| serde_json::to_string(e).expect("events serialize"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parses a log from JSON lines.
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json_lines(s: &str) -> Result<Self, serde_json::Error> {
        let events = s
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { events })
    }

    /// Bridges every logged event into the `icrowd-obs` sink as a typed
    /// JSON event (no-op when telemetry is disabled), so marketplace
    /// history lands in the same JSONL export as spans and counters.
    pub fn export_to_obs(&self) {
        if !icrowd_obs::is_enabled() {
            return;
        }
        for e in &self.events {
            let payload = serde_json::to_string(e).expect("events serialize");
            icrowd_obs::event_json(&format!("market.{}", e.kind()), &payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let events = [
            MarketEvent::HitAccepted {
                at: Tick(1),
                worker: "A".into(),
                hit: HitId(0),
            },
            MarketEvent::TaskAssigned {
                at: Tick(2),
                worker: "A".into(),
                task: TaskId(0),
            },
            MarketEvent::RequestDeclined {
                at: Tick(3),
                worker: "B".into(),
            },
            MarketEvent::AnswerSubmitted {
                at: Tick(4),
                worker: "A".into(),
                task: TaskId(0),
                answer: Answer::YES,
            },
            MarketEvent::HitSubmitted {
                at: Tick(5),
                worker: "A".into(),
                hit: HitId(0),
                reward_cents: 10,
            },
            MarketEvent::HitAbandoned {
                at: Tick(6),
                worker: "B".into(),
                hit: HitId(1),
                answered: 3,
            },
            MarketEvent::AnswerRejected {
                at: Tick(7),
                worker: "A".into(),
                task: TaskId(0),
                reason: RejectReason::Duplicate,
            },
            MarketEvent::AnswerDropped {
                at: Tick(8),
                worker: "A".into(),
                task: TaskId(0),
            },
            MarketEvent::WorkerStalled {
                at: Tick(9),
                worker: "B".into(),
                task: TaskId(1),
            },
            MarketEvent::WorkerChurned {
                at: Tick(10),
                worker: "B".into(),
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.at(), Tick(i as u64 + 1));
        }
        assert_eq!(events[2].worker(), "B");
        assert_eq!(events[9].worker(), "B");
    }

    #[test]
    fn json_round_trip() {
        let mut log = EventLog::new();
        log.push(MarketEvent::HitAccepted {
            at: Tick(0),
            worker: "A".into(),
            hit: HitId(0),
        });
        log.push(MarketEvent::AnswerSubmitted {
            at: Tick(1),
            worker: "A".into(),
            task: TaskId(7),
            answer: Answer::NO,
        });
        let text = log.to_json_lines();
        let parsed = EventLog::from_json_lines(&text).unwrap();
        assert_eq!(parsed.events(), log.events());
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn reject_counter_names_match_the_dynamic_scheme() {
        for r in [
            RejectReason::NotAssigned,
            RejectReason::Duplicate,
            RejectReason::LeaseExpired,
            RejectReason::TaskCompleted,
        ] {
            assert_eq!(r.counter_name(), format!("answer.rejected.{}", r.name()));
        }
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(EventLog::from_json_lines("not json").is_err());
    }

    #[test]
    fn kind_names_are_distinct() {
        let kinds = [
            MarketEvent::HitAccepted {
                at: Tick(0),
                worker: String::new(),
                hit: HitId(0),
            }
            .kind(),
            MarketEvent::TaskAssigned {
                at: Tick(0),
                worker: String::new(),
                task: TaskId(0),
            }
            .kind(),
            MarketEvent::RequestDeclined {
                at: Tick(0),
                worker: String::new(),
            }
            .kind(),
            MarketEvent::AnswerSubmitted {
                at: Tick(0),
                worker: String::new(),
                task: TaskId(0),
                answer: Answer::YES,
            }
            .kind(),
            MarketEvent::HitSubmitted {
                at: Tick(0),
                worker: String::new(),
                hit: HitId(0),
                reward_cents: 0,
            }
            .kind(),
            MarketEvent::HitAbandoned {
                at: Tick(0),
                worker: String::new(),
                hit: HitId(0),
                answered: 0,
            }
            .kind(),
            MarketEvent::AnswerRejected {
                at: Tick(0),
                worker: String::new(),
                task: TaskId(0),
                reason: RejectReason::NotAssigned,
            }
            .kind(),
            MarketEvent::AnswerDropped {
                at: Tick(0),
                worker: String::new(),
                task: TaskId(0),
            }
            .kind(),
            MarketEvent::WorkerStalled {
                at: Tick(0),
                worker: String::new(),
                task: TaskId(0),
            }
            .kind(),
            MarketEvent::WorkerChurned {
                at: Tick(0),
                worker: String::new(),
            }
            .kind(),
        ];
        let distinct: std::collections::BTreeSet<&str> = kinds.iter().copied().collect();
        assert_eq!(distinct.len(), kinds.len());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Worker ids exercising the serializer's escaping: quotes,
        /// backslashes, control characters, and non-ASCII.
        fn arb_worker() -> impl Strategy<Value = String> {
            "[a-zA-Z0-9 _.\"\\\n\té漢-]{0,12}"
        }

        /// One arbitrary event of any variant. Extreme ticks included:
        /// `Tick` is `u64` and must survive JSON untruncated.
        fn arb_event() -> impl Strategy<Value = MarketEvent> {
            (
                (0u8..10, 0u64..=u64::MAX),
                (arb_worker(), 0u32..=u32::MAX),
                (0u32..=u32::MAX, 0u8..=255),
            )
                .prop_map(|((sel, at), (worker, id), (reward, ans))| {
                    let at = Tick(at);
                    match sel {
                        0 => MarketEvent::HitAccepted {
                            at,
                            worker,
                            hit: HitId(id),
                        },
                        1 => MarketEvent::TaskAssigned {
                            at,
                            worker,
                            task: TaskId(id),
                        },
                        2 => MarketEvent::RequestDeclined { at, worker },
                        3 => MarketEvent::AnswerSubmitted {
                            at,
                            worker,
                            task: TaskId(id),
                            answer: Answer(ans),
                        },
                        4 => MarketEvent::HitSubmitted {
                            at,
                            worker,
                            hit: HitId(id),
                            reward_cents: reward,
                        },
                        5 => MarketEvent::HitAbandoned {
                            at,
                            worker,
                            hit: HitId(id),
                            answered: reward as usize % 11,
                        },
                        6 => MarketEvent::AnswerRejected {
                            at,
                            worker,
                            task: TaskId(id),
                            reason: match ans % 4 {
                                0 => RejectReason::NotAssigned,
                                1 => RejectReason::Duplicate,
                                2 => RejectReason::LeaseExpired,
                                _ => RejectReason::TaskCompleted,
                            },
                        },
                        7 => MarketEvent::AnswerDropped {
                            at,
                            worker,
                            task: TaskId(id),
                        },
                        8 => MarketEvent::WorkerStalled {
                            at,
                            worker,
                            task: TaskId(id),
                        },
                        _ => MarketEvent::WorkerChurned { at, worker },
                    }
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Every `MarketEvent` variant — with hostile worker ids and
            /// extreme numeric fields — survives the JSON-lines round
            /// trip bit-for-bit.
            #[test]
            fn json_lines_round_trip_all_variants(
                mut events in proptest::collection::vec(arb_event(), 0..24),
            ) {
                // `push` asserts tick monotonicity; order like a real run.
                events.sort_by_key(MarketEvent::at);
                let mut log = EventLog::new();
                for e in events {
                    log.push(e);
                }
                let text = log.to_json_lines();
                let parsed = EventLog::from_json_lines(&text).unwrap();
                prop_assert_eq!(parsed.events(), log.events());
            }
        }
    }
}
