//! HITs — Human Intelligence Tasks, AMT's unit of publication.
//!
//! The paper publishes microtasks in batches of 10 per HIT at $0.10 per
//! assignment, and sets "Number of Assignments per HIT" to bound how many
//! distinct workers may take each HIT. With the ExternalQuestion
//! mechanism a HIT does not pin *which* microtasks a worker sees — the
//! server decides at request time — so a HIT here is simply a claim
//! ticket: accepting one entitles a worker to request up to
//! `tasks_per_hit` microtasks and be paid on submission.

use serde::{Deserialize, Serialize};

/// Identifier of a HIT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HitId(pub u32);

impl std::fmt::Display for HitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HIT-{}", self.0)
    }
}

/// A published HIT type with remaining assignment slots.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Hit {
    id: HitId,
    remaining_assignments: u32,
}

/// The pool of published HITs.
///
/// Workers accept the first HIT with free assignment slots; the pool
/// tracks remaining capacity. This mirrors the paper's setup of
/// publishing enough assignment capacity ("a large number, 10 in our
/// experiments") to collect answers from the whole worker population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HitPool {
    hits: Vec<Hit>,
    tasks_per_hit: usize,
    reward_cents: u32,
}

impl HitPool {
    /// Publishes `num_hits` HITs, each allowing `assignments_per_hit`
    /// workers, `tasks_per_hit` microtasks per assignment, paying
    /// `reward_cents` per completed assignment.
    ///
    /// # Panics
    /// Panics if any count is zero.
    pub fn publish(
        num_hits: usize,
        assignments_per_hit: u32,
        tasks_per_hit: usize,
        reward_cents: u32,
    ) -> Self {
        assert!(num_hits > 0, "publish at least one HIT");
        assert!(assignments_per_hit > 0, "each HIT needs assignment slots");
        assert!(tasks_per_hit > 0, "each HIT needs tasks");
        Self {
            hits: (0..num_hits as u32)
                .map(|i| Hit {
                    id: HitId(i),
                    remaining_assignments: assignments_per_hit,
                })
                .collect(),
            tasks_per_hit,
            reward_cents,
        }
    }

    /// Microtasks per HIT assignment.
    pub fn tasks_per_hit(&self) -> usize {
        self.tasks_per_hit
    }

    /// Reward per completed assignment, in cents.
    pub fn reward_cents(&self) -> u32 {
        self.reward_cents
    }

    /// Accepts the first HIT with a free slot, consuming one assignment.
    pub fn accept_any(&mut self) -> Option<HitId> {
        let hit = self.hits.iter_mut().find(|h| h.remaining_assignments > 0)?;
        hit.remaining_assignments -= 1;
        Some(hit.id)
    }

    /// Returns an abandoned assignment slot to the pool (AMT re-publishes
    /// returned HITs).
    pub fn release(&mut self, hit: HitId) {
        if let Some(h) = self.hits.iter_mut().find(|h| h.id == hit) {
            h.remaining_assignments += 1;
        }
    }

    /// Remaining assignment slots across all HITs.
    pub fn remaining_assignments(&self) -> u32 {
        self.hits.iter().map(|h| h.remaining_assignments).sum()
    }

    /// Number of published HITs.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_consumes_slots_in_order() {
        let mut pool = HitPool::publish(2, 2, 10, 10);
        assert_eq!(pool.remaining_assignments(), 4);
        assert_eq!(pool.accept_any(), Some(HitId(0)));
        assert_eq!(pool.accept_any(), Some(HitId(0)));
        assert_eq!(pool.accept_any(), Some(HitId(1)), "first HIT exhausted");
        assert_eq!(pool.remaining_assignments(), 1);
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let mut pool = HitPool::publish(1, 1, 10, 10);
        assert!(pool.accept_any().is_some());
        assert_eq!(pool.accept_any(), None);
    }

    #[test]
    fn release_restores_capacity() {
        let mut pool = HitPool::publish(1, 1, 10, 10);
        let hit = pool.accept_any().unwrap();
        pool.release(hit);
        assert_eq!(pool.remaining_assignments(), 1);
        assert_eq!(pool.accept_any(), Some(hit));
    }

    #[test]
    fn metadata_accessors() {
        let pool = HitPool::publish(3, 10, 10, 10);
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
        assert_eq!(pool.tasks_per_hit(), 10);
        assert_eq!(pool.reward_cents(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one HIT")]
    fn zero_hits_rejected() {
        HitPool::publish(0, 1, 1, 1);
    }
}
