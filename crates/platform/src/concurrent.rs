//! Concurrent deployment of the ExternalQuestion loop.
//!
//! The sequential [`crate::market`] loop interleaves workers on a logical
//! clock; this module instead puts every worker on a real thread talking
//! to the server over channels — the shape of the actual AMT deployment,
//! where requests arrive concurrently and the assigner must answer each
//! one instantly. The server remains single-threaded (iCrowd's Appendix-A
//! web server is one process serializing requests); crossbeam channels
//! provide the mailbox.
//!
//! Runs are not bit-deterministic (thread scheduling orders requests),
//! so tests assert aggregate invariants: every answer is recorded once,
//! counts match, and sequential and concurrent modes collect the same
//! number of answers.

use std::sync::Arc;

use crossbeam_channel::{unbounded, Sender};
use parking_lot::Mutex;

use icrowd_core::answer::Answer;
use icrowd_core::task::{Microtask, TaskId, TaskSet};
use icrowd_core::worker::Tick;

use crate::market::{ExternalQuestionServer, SubmitOutcome, WorkerBehavior};

/// What a concurrent run produced.
#[derive(Debug)]
pub struct ConcurrentOutcome {
    /// Total answers collected.
    pub answers: usize,
    /// Answers per worker, in input order.
    pub per_worker: Vec<usize>,
}

enum Msg {
    Request {
        worker: usize,
        reply: Sender<Option<Microtask>>,
    },
    Submit {
        worker: usize,
        task: TaskId,
        answer: Answer,
    },
    Done,
}

/// Drives `behaviors` on worker threads against `server` until the
/// campaign completes or every worker gives up.
///
/// Each worker requests, answers, and submits in a loop, leaving when the
/// server declines her or she reaches `max_answers_per_worker`. External
/// ids are `"W1"`, `"W2"`, ... matching the sequential runner.
pub fn run_concurrent(
    tasks: &TaskSet,
    server: &mut dyn ExternalQuestionServer,
    behaviors: Vec<Box<dyn WorkerBehavior + Send>>,
    max_answers_per_worker: usize,
) -> ConcurrentOutcome {
    let num_workers = behaviors.len();
    let tasks = Arc::new(tasks.clone());
    let (tx, rx) = unbounded::<Msg>();
    let per_worker = Arc::new(Mutex::new(vec![0usize; num_workers]));

    std::thread::scope(|scope| {
        for (wi, mut behavior) in behaviors.into_iter().enumerate() {
            let tx = tx.clone();
            let per_worker = Arc::clone(&per_worker);
            scope.spawn(move || {
                let (reply_tx, reply_rx) = unbounded::<Option<Microtask>>();
                let mut answered = 0usize;
                while answered < max_answers_per_worker {
                    if tx
                        .send(Msg::Request {
                            worker: wi,
                            reply: reply_tx.clone(),
                        })
                        .is_err()
                    {
                        break; // server hung up: campaign over
                    }
                    match reply_rx.recv() {
                        Ok(Some(task)) => {
                            let answer = behavior.answer(&task);
                            answered += 1;
                            if tx
                                .send(Msg::Submit {
                                    worker: wi,
                                    task: task.id,
                                    answer,
                                })
                                .is_err()
                            {
                                break;
                            }
                        }
                        _ => break, // declined or channel closed
                    }
                }
                per_worker.lock()[wi] += answered;
                let _ = tx.send(Msg::Done);
            });
        }
        drop(tx); // server loop ends when all workers hang up

        // The single-threaded server loop: a logical tick per message.
        let mut clock = 0u64;
        let mut active = num_workers;
        let mut answers = 0usize;
        while active > 0 {
            let Ok(msg) = rx.recv() else { break };
            clock += 1;
            let now = Tick(clock);
            match msg {
                Msg::Request { worker, reply } => {
                    let external = format!("W{}", worker + 1);
                    let assigned = if server.is_complete() {
                        None
                    } else {
                        server.request_task(&external, now)
                    };
                    let _ = reply.send(assigned.map(|t| tasks[t].clone()));
                }
                Msg::Submit {
                    worker,
                    task,
                    answer,
                } => {
                    let external = format!("W{}", worker + 1);
                    if server.submit_answer(&external, task, answer, now) == SubmitOutcome::Accepted
                    {
                        answers += 1;
                    }
                }
                Msg::Done => active -= 1,
            }
        }

        let per_worker = per_worker.lock().clone();
        ConcurrentOutcome {
            answers,
            per_worker,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Server assigning each task to `k` distinct workers.
    struct CountServer {
        k: usize,
        counts: Vec<usize>,
        answered_by: Vec<Vec<String>>,
    }

    impl CountServer {
        fn new(n: usize, k: usize) -> Self {
            Self {
                k,
                counts: vec![0; n],
                answered_by: vec![Vec::new(); n],
            }
        }
    }

    impl ExternalQuestionServer for CountServer {
        fn request_task(&mut self, worker: &str, _now: Tick) -> Option<TaskId> {
            // Count in-flight assignments too, so concurrent workers don't
            // oversubscribe a task: track by provisional increment.
            let i = (0..self.counts.len()).find(|&i| {
                self.counts[i] < self.k && !self.answered_by[i].iter().any(|w| w == worker)
            })?;
            self.counts[i] += 1;
            self.answered_by[i].push(worker.to_owned());
            Some(TaskId(i as u32))
        }

        fn submit_answer(
            &mut self,
            _worker: &str,
            _task: TaskId,
            _answer: Answer,
            _now: Tick,
        ) -> SubmitOutcome {
            SubmitOutcome::Accepted
        }

        fn is_complete(&self) -> bool {
            self.counts.iter().all(|&c| c >= self.k)
        }
    }

    struct YesBehavior;
    impl WorkerBehavior for YesBehavior {
        fn answer(&mut self, _task: &Microtask) -> Answer {
            Answer::YES
        }
    }

    fn tasks(n: u32) -> TaskSet {
        (0..n)
            .map(|i| Microtask::binary(TaskId(i), format!("task {i}")))
            .collect()
    }

    #[test]
    fn concurrent_campaign_completes_with_exact_counts() {
        let ts = tasks(8);
        let mut server = CountServer::new(8, 3);
        let behaviors: Vec<Box<dyn WorkerBehavior + Send>> =
            (0..4).map(|_| Box::new(YesBehavior) as _).collect();
        let outcome = run_concurrent(&ts, &mut server, behaviors, usize::MAX);
        assert!(server.is_complete());
        assert_eq!(outcome.answers, 24, "8 tasks x 3 assignments");
        assert_eq!(outcome.per_worker.iter().sum::<usize>(), 24);
        for by in &server.answered_by {
            let mut sorted = by.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), by.len(), "no worker repeats a task");
        }
    }

    #[test]
    fn per_worker_budget_is_respected() {
        let ts = tasks(10);
        let mut server = CountServer::new(10, 1);
        let behaviors: Vec<Box<dyn WorkerBehavior + Send>> =
            (0..2).map(|_| Box::new(YesBehavior) as _).collect();
        let outcome = run_concurrent(&ts, &mut server, behaviors, 3);
        for &c in &outcome.per_worker {
            assert!(c <= 3);
        }
        assert!(outcome.answers <= 6);
    }

    #[test]
    fn empty_worker_pool_is_a_noop() {
        let ts = tasks(3);
        let mut server = CountServer::new(3, 1);
        let outcome = run_concurrent(&ts, &mut server, Vec::new(), 10);
        assert_eq!(outcome.answers, 0);
        assert!(outcome.per_worker.is_empty());
    }
}
