//! The crash-consistent campaign journal: a write-ahead log of every
//! accepted driver mutation.
//!
//! The marketplace driver is fully deterministic given its construction
//! inputs, so durability does not require serializing its state — it is
//! enough to record the ordered stream of *mutating inputs* (polls that
//! moved the schedule, every submission, deferred-delivery pumps) and
//! replay them through a freshly built driver. Each record is framed as
//!
//! ```text
//! [u32 payload_len LE][u32 crc32 LE][payload bytes]
//! ```
//!
//! with the CRC taken over the payload (a compact JSON object). A torn
//! or corrupt tail — a partial frame, a CRC mismatch, unparseable
//! payload — terminates the read at the longest valid prefix; the
//! recovery layer truncates the file there and resumes appending.
//!
//! Snapshot records are *verification checkpoints*, not state dumps:
//! they pin the accounting, accepted-answer count, logical clock and
//! mutation epoch at a known op index so replay can detect divergence
//! early. Compaction rewrites the file (tmp + rename + fsync) with all
//! ops collapsed into large batch frames and only the latest snapshot
//! retained — ops can never be dropped, because the op log *is* the
//! state.
//!
//! Fsync policy: `fsync_every = 1` syncs after every record (full
//! durability), `N` batches syncs every `N` records, `0` never syncs
//! (the OS flushes at its leisure). Losing an un-synced tail is safe:
//! clients idempotently re-poll and re-submit, and the server's
//! duplicate rejection keeps accepted answers exactly-once.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use serde_json::{json, Value};

use crate::market::MarketAccounting;

/// Journal format version (bumped on incompatible frame/payload changes).
pub const JOURNAL_VERSION: u32 = 1;

/// Frames larger than this are treated as corruption, not allocation
/// requests.
const MAX_FRAME: u32 = 16 * 1024 * 1024;

// -- CRC32 (IEEE 802.3), table generated at compile time ---------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) over `data` — the per-frame integrity check.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A stable fingerprint of an arbitrary configuration rendering, stored
/// in the header so recovery refuses to replay a journal against a
/// different campaign configuration (FNV-1a 64).
pub fn fingerprint(text: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// -- record model ------------------------------------------------------

/// The journal's first record: identifies the campaign the ops belong to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Frame/payload format version.
    pub version: u32,
    /// Dataset key (`icrowd_sim::datasets::by_name`).
    pub dataset: String,
    /// Approach display name.
    pub approach: String,
    /// Campaign seed.
    pub seed: u64,
    /// Fingerprint of the full campaign configuration.
    pub config_fp: u64,
}

/// What a journaled poll returned (replay verifies the tag matches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollTag {
    /// The worker was assigned this task id.
    Assigned(u32),
    /// Not her turn, but the poll pumped deferred deliveries (a poll
    /// that mutated nothing is never journaled).
    Wait,
    /// Declined with a retry turn queued.
    DeclinedRetry,
    /// Declined terminally; the worker left.
    DeclinedLeft,
    /// The worker left the marketplace.
    Left,
}

impl PollTag {
    /// Stable wire/diagnostic name for this outcome.
    pub fn name(self) -> &'static str {
        match self {
            PollTag::Assigned(_) => "assigned",
            PollTag::Wait => "wait",
            PollTag::DeclinedRetry => "declined_retry",
            PollTag::DeclinedLeft => "declined_left",
            PollTag::Left => "left",
        }
    }
}

/// One mutating driver input, in apply order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    /// A poll that moved the schedule.
    Poll {
        /// External worker id.
        worker: String,
        /// The outcome the live run produced.
        tag: PollTag,
    },
    /// A submission (scheduled or stray) and its verdict, e.g.
    /// `accepted`, `rejected:duplicate`, `dropped`, `stalled`,
    /// `deferred`.
    Submit {
        /// External worker id.
        worker: String,
        /// Task id.
        task: u32,
        /// Answer choice.
        answer: u8,
        /// The live run's verdict tag.
        verdict: String,
    },
    /// A `STATUS`/`RESULTS` pump that moved the schedule (deferred
    /// deliveries landed, or the final sweep ran).
    Pump,
}

/// A verification checkpoint: state the replay must reproduce once
/// `ops` records have been applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalSnapshot {
    /// Number of ops preceding this checkpoint.
    pub ops: u64,
    /// Accepted answers at the checkpoint.
    pub answers: u64,
    /// Accounting at the checkpoint.
    pub accounting: MarketAccounting,
    /// Latest logical tick reached.
    pub end_tick: u64,
    /// Driver mutation epoch.
    pub epoch: u64,
}

/// One framed record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Campaign identity; always the first record.
    Header(JournalHeader),
    /// A single mutating input.
    Op(JournalOp),
    /// Many ops in one frame (compaction output).
    Batch(Vec<JournalOp>),
    /// A verification checkpoint.
    Snapshot(JournalSnapshot),
}

fn op_to_value(op: &JournalOp) -> Value {
    match op {
        JournalOp::Poll { worker, tag } => {
            let mut v = json!({"t": "poll", "w": worker, "o": tag.name()});
            if let (PollTag::Assigned(task), Value::Object(o)) = (tag, &mut v) {
                o.push(("task".into(), json!(*task)));
            }
            v
        }
        JournalOp::Submit {
            worker,
            task,
            answer,
            verdict,
        } => json!({"t": "submit", "w": worker, "task": task, "a": answer, "v": verdict}),
        JournalOp::Pump => json!({"t": "pump"}),
    }
}

fn accounting_to_value(a: &MarketAccounting) -> Value {
    json!({
        "submitted": a.answers_submitted,
        "accepted": a.answers_accepted,
        "rejected": a.answers_rejected,
        "dropped": a.answers_dropped,
        "paid": a.answers_paid,
        "abandoned": a.answers_abandoned,
        "stalled": a.stalled,
        "churned": a.churned,
    })
}

fn record_to_value(rec: &JournalRecord) -> Value {
    match rec {
        JournalRecord::Header(h) => json!({
            "t": "header",
            "version": h.version,
            "dataset": h.dataset,
            "approach": h.approach,
            "seed": h.seed,
            "fp": h.config_fp,
        }),
        JournalRecord::Op(op) => op_to_value(op),
        JournalRecord::Batch(ops) => {
            let ops: Vec<Value> = ops.iter().map(op_to_value).collect();
            json!({"t": "batch", "ops": ops})
        }
        JournalRecord::Snapshot(s) => json!({
            "t": "snapshot",
            "ops": s.ops,
            "answers": s.answers,
            "end": s.end_tick,
            "epoch": s.epoch,
            "acct": accounting_to_value(&s.accounting),
        }),
    }
}

fn u64_field(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(Value::as_u64)
}

fn str_field<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    v.get(key).and_then(Value::as_str)
}

fn op_from_value(v: &Value) -> Option<JournalOp> {
    match str_field(v, "t")? {
        "poll" => {
            let worker = str_field(v, "w")?.to_owned();
            let tag = match str_field(v, "o")? {
                "assigned" => PollTag::Assigned(u32::try_from(u64_field(v, "task")?).ok()?),
                "wait" => PollTag::Wait,
                "declined_retry" => PollTag::DeclinedRetry,
                "declined_left" => PollTag::DeclinedLeft,
                "left" => PollTag::Left,
                _ => return None,
            };
            Some(JournalOp::Poll { worker, tag })
        }
        "submit" => Some(JournalOp::Submit {
            worker: str_field(v, "w")?.to_owned(),
            task: u32::try_from(u64_field(v, "task")?).ok()?,
            answer: u8::try_from(u64_field(v, "a")?).ok()?,
            verdict: str_field(v, "v")?.to_owned(),
        }),
        "pump" => Some(JournalOp::Pump),
        _ => None,
    }
}

fn accounting_from_value(v: &Value) -> Option<MarketAccounting> {
    Some(MarketAccounting {
        answers_submitted: u64_field(v, "submitted")?,
        answers_accepted: u64_field(v, "accepted")?,
        answers_rejected: u64_field(v, "rejected")?,
        answers_dropped: u64_field(v, "dropped")?,
        answers_paid: u64_field(v, "paid")?,
        answers_abandoned: u64_field(v, "abandoned")?,
        stalled: u64_field(v, "stalled")?,
        churned: u64_field(v, "churned")?,
    })
}

fn record_from_value(v: &Value) -> Option<JournalRecord> {
    match str_field(v, "t")? {
        "header" => Some(JournalRecord::Header(JournalHeader {
            version: u32::try_from(u64_field(v, "version")?).ok()?,
            dataset: str_field(v, "dataset")?.to_owned(),
            approach: str_field(v, "approach")?.to_owned(),
            seed: u64_field(v, "seed")?,
            config_fp: u64_field(v, "fp")?,
        })),
        "batch" => {
            let ops = v.get("ops")?.as_array()?;
            let ops: Option<Vec<JournalOp>> = ops.iter().map(op_from_value).collect();
            Some(JournalRecord::Batch(ops?))
        }
        "snapshot" => Some(JournalRecord::Snapshot(JournalSnapshot {
            ops: u64_field(v, "ops")?,
            answers: u64_field(v, "answers")?,
            end_tick: u64_field(v, "end")?,
            epoch: u64_field(v, "epoch")?,
            accounting: accounting_from_value(v.get("acct")?)?,
        })),
        _ => op_from_value(v).map(JournalRecord::Op),
    }
}

/// Encodes one record into its framed wire bytes.
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let payload = serde_json::to_string(&record_to_value(rec)).unwrap_or_default();
    let payload = payload.as_bytes();
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

// -- writer ------------------------------------------------------------

/// An append-only journal writer with batched fsync and compaction.
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    /// Sync after this many records (`1` = every record, `0` = never).
    fsync_every: usize,
    unsynced: usize,
}

impl JournalWriter {
    /// Creates (truncating) a fresh journal at `path`.
    ///
    /// # Errors
    /// Propagates file-creation failures.
    pub fn create(path: &Path, fsync_every: usize) -> io::Result<JournalWriter> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            fsync_every,
            unsynced: 0,
        })
    }

    /// Opens an existing journal for appending — the recovery path,
    /// after the file has been truncated to its valid prefix.
    ///
    /// # Errors
    /// Propagates open failures.
    pub fn append_to(path: &Path, fsync_every: usize) -> io::Result<JournalWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            fsync_every,
            unsynced: 0,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one framed record, syncing per the fsync policy.
    ///
    /// # Errors
    /// Propagates write/sync failures; the caller decides whether to
    /// stop journaling.
    pub fn append(&mut self, rec: &JournalRecord) -> io::Result<()> {
        let frame = encode_record(rec);
        self.file.write_all(&frame)?;
        if icrowd_obs::is_enabled() {
            icrowd_obs::counter_add("journal.records", 1);
            icrowd_obs::counter_add("journal.bytes", frame.len() as u64);
        }
        self.unsynced += 1;
        if self.fsync_every > 0 && self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces pending records to stable storage.
    ///
    /// # Errors
    /// Propagates `fsync` failures.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        self.file.flush()?;
        self.file.sync_data()?;
        self.unsynced = 0;
        if icrowd_obs::is_enabled() {
            icrowd_obs::counter_add("journal.fsync", 1);
        }
        Ok(())
    }

    /// Compacts the journal in place: rewrites it as header + one batch
    /// frame of every op + the latest snapshot, via tmp-file + rename +
    /// fsync, then reopens for appending. Ops are never dropped — the
    /// log *is* the state — so compaction only collapses framing
    /// overhead and sheds superseded snapshots.
    ///
    /// # Errors
    /// Propagates read/write/rename failures; on error the original
    /// file is left untouched (the tmp file may linger).
    pub fn compact(&mut self) -> io::Result<()> {
        self.sync()?;
        let readout = read_journal(&self.path)?;
        let Some(header) = readout.header else {
            return Ok(()); // nothing worth compacting
        };
        let tmp = self.path.with_extension("tmp");
        {
            let mut out = File::create(&tmp)?;
            out.write_all(&encode_record(&JournalRecord::Header(header)))?;
            if !readout.ops.is_empty() {
                out.write_all(&encode_record(&JournalRecord::Batch(readout.ops)))?;
            }
            if let Some(snap) = readout.snapshots.last() {
                out.write_all(&encode_record(&JournalRecord::Snapshot(*snap)))?;
            }
            out.flush()?;
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Ok(dir) = File::open(self.path.parent().unwrap_or_else(|| Path::new("."))) {
            let _ = dir.sync_all();
        }
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.unsynced = 0;
        if icrowd_obs::is_enabled() {
            icrowd_obs::counter_add("journal.compact", 1);
        }
        Ok(())
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

// -- reader ------------------------------------------------------------

/// What a prefix-tolerant read produced.
#[derive(Debug)]
pub struct JournalReadout {
    /// The campaign header, when the first valid record is one.
    pub header: Option<JournalHeader>,
    /// Every op in apply order (batch frames flattened).
    pub ops: Vec<JournalOp>,
    /// Verification checkpoints, in op order.
    pub snapshots: Vec<JournalSnapshot>,
    /// Bytes covered by valid frames (the recovery truncation point).
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (torn tail, corruption, garbage).
    pub truncated_bytes: u64,
}

/// Reads the longest valid record prefix of the journal at `path`. A
/// partial frame, oversized length, CRC mismatch or unparseable payload
/// ends the read — never panics, never errors on tail damage.
///
/// # Errors
/// Only on failing to open/read the file itself.
pub fn read_journal(path: &Path) -> io::Result<JournalReadout> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut header = None;
    let mut ops = Vec::new();
    let mut snapshots = Vec::new();
    let mut off = 0usize;
    let mut first = true;
    while bytes.len() - off >= 8 {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap_or_default());
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap_or_default());
        if len > MAX_FRAME {
            break;
        }
        let len = len as usize;
        let Some(payload) = bytes.get(off + 8..off + 8 + len) else {
            break; // torn tail: frame extends past EOF
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok(value) = serde_json::from_str::<Value>(&String::from_utf8_lossy(payload)) else {
            break;
        };
        let Some(record) = record_from_value(&value) else {
            break;
        };
        match record {
            JournalRecord::Header(h) => {
                if first {
                    header = Some(h);
                } else {
                    break; // a header mid-stream is corruption
                }
            }
            JournalRecord::Op(op) => ops.push(op),
            JournalRecord::Batch(batch) => ops.extend(batch),
            JournalRecord::Snapshot(s) => snapshots.push(s),
        }
        first = false;
        off += 8 + len;
    }
    Ok(JournalReadout {
        header,
        ops,
        snapshots,
        valid_bytes: off as u64,
        truncated_bytes: (bytes.len() - off) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("icrowd_journal_{}_{tag}.bin", std::process::id()))
    }

    fn sample_header() -> JournalHeader {
        JournalHeader {
            version: JOURNAL_VERSION,
            dataset: "table1".into(),
            approach: "RandomMV".into(),
            seed: 42,
            config_fp: fingerprint("config"),
        }
    }

    fn sample_ops() -> Vec<JournalOp> {
        vec![
            JournalOp::Poll {
                worker: "W1".into(),
                tag: PollTag::Assigned(7),
            },
            JournalOp::Submit {
                worker: "W1".into(),
                task: 7,
                answer: 1,
                verdict: "accepted".into(),
            },
            JournalOp::Poll {
                worker: "W2".into(),
                tag: PollTag::DeclinedRetry,
            },
            JournalOp::Pump,
            JournalOp::Poll {
                worker: "W2".into(),
                tag: PollTag::Left,
            },
            JournalOp::Submit {
                worker: "W3".into(),
                task: 2,
                answer: 0,
                verdict: "rejected:duplicate".into(),
            },
        ]
    }

    fn write_all(path: &Path, fsync_every: usize) -> JournalSnapshot {
        let snap = JournalSnapshot {
            ops: 6,
            answers: 1,
            accounting: MarketAccounting {
                answers_submitted: 2,
                answers_accepted: 1,
                answers_rejected: 1,
                ..Default::default()
            },
            end_tick: 12,
            epoch: 9,
        };
        let mut w = JournalWriter::create(path, fsync_every).unwrap();
        w.append(&JournalRecord::Header(sample_header())).unwrap();
        for op in sample_ops() {
            w.append(&JournalRecord::Op(op)).unwrap();
        }
        w.append(&JournalRecord::Snapshot(snap)).unwrap();
        w.sync().unwrap();
        snap
    }

    #[test]
    fn records_round_trip_through_the_frame_codec() {
        let path = tmp_path("roundtrip");
        let snap = write_all(&path, 1);
        let r = read_journal(&path).unwrap();
        assert_eq!(r.header, Some(sample_header()));
        assert_eq!(r.ops, sample_ops());
        assert_eq!(r.snapshots, vec![snap]);
        assert_eq!(r.truncated_bytes, 0);
        assert_eq!(
            r.valid_bytes,
            std::fs::metadata(&path).unwrap().len(),
            "every byte accounted for"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batched_and_unsynced_fsync_policies_write_identical_bytes() {
        let p1 = tmp_path("fsync1");
        let p2 = tmp_path("fsync0");
        write_all(&p1, 1);
        write_all(&p2, 0);
        assert_eq!(
            std::fs::read(&p1).unwrap(),
            std::fs::read(&p2).unwrap(),
            "fsync policy must not change the byte stream"
        );
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn torn_tail_keeps_the_longest_valid_prefix() {
        let path = tmp_path("torn");
        write_all(&path, 1);
        let full = std::fs::read(&path).unwrap();
        // Cut mid-way through the final frame.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let r = read_journal(&path).unwrap();
        assert_eq!(r.ops, sample_ops(), "ops before the tear survive");
        assert!(r.snapshots.is_empty(), "the torn snapshot is dropped");
        assert!(r.truncated_bytes > 0);
        assert_eq!(r.valid_bytes + r.truncated_bytes, full.len() as u64 - 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_stops_at_the_preceding_record() {
        let path = tmp_path("corrupt");
        write_all(&path, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let r = read_journal(&path).unwrap();
        assert!(r.ops.len() < sample_ops().len(), "flip lands mid-ops");
        assert_eq!(r.ops, sample_ops()[..r.ops.len()], "prefix is exact");
        assert!(r.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_preserves_the_logical_readout() {
        let path = tmp_path("compact");
        let snap = write_all(&path, 1);
        let before = std::fs::metadata(&path).unwrap().len();
        let mut w = JournalWriter::append_to(&path, 1).unwrap();
        w.compact().unwrap();
        let r = read_journal(&path).unwrap();
        assert_eq!(r.header, Some(sample_header()));
        assert_eq!(r.ops, sample_ops());
        assert_eq!(r.snapshots, vec![snap]);
        assert_eq!(r.truncated_bytes, 0);
        assert!(
            std::fs::metadata(&path).unwrap().len() < before,
            "batch framing sheds per-record overhead"
        );
        // Appending after compaction keeps working.
        w.append(&JournalRecord::Op(JournalOp::Pump)).unwrap();
        drop(w);
        let r = read_journal(&path).unwrap();
        assert_eq!(r.ops.len(), sample_ops().len() + 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
