//! The marketplace event loop.
//!
//! [`Marketplace::run_sequential`] drives a population of scripted
//! workers against an [`ExternalQuestionServer`] — the role iCrowd (or a
//! baseline) plays — reproducing the Appendix-A interaction: a worker
//! accepts a HIT, repeatedly requests a microtask and submits an answer,
//! and is paid when the HIT completes. The loop is event-driven over a
//! logical [`Tick`] clock and fully deterministic: events are ordered by
//! `(tick, sequence-number)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use icrowd_core::answer::Answer;
use icrowd_core::task::{Microtask, TaskId, TaskSet};
use icrowd_core::worker::Tick;

use crate::events::{EventLog, MarketEvent};
use crate::hit::HitPool;
use crate::payment::PaymentLedger;
use crate::session::WorkerSession;

/// The server side of the ExternalQuestion loop — implemented by iCrowd's
/// adaptive assigner and by every baseline strategy.
pub trait ExternalQuestionServer {
    /// A worker identified by `worker` (AMT external id) requests a
    /// microtask at `now`. Returns the assigned task, or `None` when the
    /// server has nothing for this worker (rejected worker, no eligible
    /// task, or campaign complete).
    fn request_task(&mut self, worker: &str, now: Tick) -> Option<TaskId>;

    /// The worker submits her answer to a previously assigned task.
    fn submit_answer(&mut self, worker: &str, task: TaskId, answer: Answer, now: Tick);

    /// Whether the campaign is finished (all microtasks globally
    /// completed); the marketplace stops issuing requests once true.
    fn is_complete(&self) -> bool;
}

/// How a simulated worker answers microtasks (implemented in
/// `icrowd-sim`; behaviour is deliberately opaque to the platform).
pub trait WorkerBehavior: Send {
    /// Answers the given microtask.
    fn answer(&mut self, task: &Microtask) -> Answer;
}

/// A worker's marketplace script: when she shows up and how she paces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerScript {
    /// When the worker first arrives.
    pub arrival: Tick,
    /// Total microtasks she is willing to answer before leaving.
    pub max_answers: usize,
    /// Ticks taken per answered microtask.
    pub ticks_per_answer: u64,
}

impl Default for WorkerScript {
    fn default() -> Self {
        Self {
            arrival: Tick::ZERO,
            max_answers: usize::MAX,
            ticks_per_answer: 1,
        }
    }
}

/// Marketplace parameters (defaults mirror Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarketConfig {
    /// Published HITs.
    pub num_hits: usize,
    /// "Number of Assignments per HIT" (the paper used 10).
    pub assignments_per_hit: u32,
    /// Microtasks per HIT (the paper used 10).
    pub tasks_per_hit: usize,
    /// Reward per completed assignment, in cents (the paper used 10¢).
    pub reward_cents: u32,
    /// Backoff before a declined worker retries.
    pub retry_backoff: u64,
    /// Declines tolerated before a worker gives up and leaves.
    pub max_retries: u32,
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self {
            num_hits: 64,
            assignments_per_hit: 10,
            tasks_per_hit: 10,
            reward_cents: 10,
            retry_backoff: 5,
            max_retries: 2,
        }
    }
}

/// What a marketplace run produced.
#[derive(Debug)]
pub struct MarketOutcome {
    /// Payments made.
    pub ledger: PaymentLedger,
    /// The full event log.
    pub events: EventLog,
    /// When the last event happened.
    pub end: Tick,
    /// Total answers collected.
    pub answers: usize,
}

/// The simulated marketplace.
pub struct Marketplace {
    tasks: TaskSet,
    config: MarketConfig,
}

struct WorkerState<'a> {
    external_id: String,
    script: WorkerScript,
    behavior: Box<dyn WorkerBehavior + 'a>,
    session: Option<WorkerSession>,
    answered_total: usize,
    declines: u32,
}

impl Marketplace {
    /// Creates a marketplace publishing HITs over `tasks`.
    pub fn new(tasks: TaskSet, config: MarketConfig) -> Self {
        Self { tasks, config }
    }

    /// The task set on offer.
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// Runs the event loop until the server reports completion, every
    /// worker has left, or no events remain.
    ///
    /// `workers` pairs each behaviour with its script; external ids are
    /// `"W1"`, `"W2"`, ... in input order.
    pub fn run_sequential<'a>(
        &self,
        server: &mut dyn ExternalQuestionServer,
        workers: Vec<(WorkerScript, Box<dyn WorkerBehavior + 'a>)>,
    ) -> MarketOutcome {
        let _span = icrowd_obs::span!("market.run");
        let mut pool = HitPool::publish(
            self.config.num_hits,
            self.config.assignments_per_hit,
            self.config.tasks_per_hit,
            self.config.reward_cents,
        );
        let mut ledger = PaymentLedger::new();
        let mut events = EventLog::new();
        let mut end = Tick::ZERO;
        let mut answers = 0usize;

        let mut states: Vec<WorkerState<'a>> = workers
            .into_iter()
            .enumerate()
            .map(|(i, (script, behavior))| WorkerState {
                external_id: format!("W{}", i + 1),
                script,
                behavior,
                session: None,
                answered_total: 0,
                declines: 0,
            })
            .collect();

        // Min-heap of (tick, sequence, worker index).
        let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, st) in states.iter().enumerate() {
            heap.push(Reverse((st.script.arrival.0, seq, i)));
            seq += 1;
        }

        while let Some(Reverse((tick, _, wi))) = heap.pop() {
            let now = Tick(tick);
            end = end.max(now);
            let st = &mut states[wi];

            // Campaign over: close out any open session and drop the worker.
            if server.is_complete() {
                Self::leave(st, &mut pool, &mut ledger, &mut events, now, &self.config);
                continue;
            }

            // Worker exhausted her budget: leave.
            if st.answered_total >= st.script.max_answers {
                Self::leave(st, &mut pool, &mut ledger, &mut events, now, &self.config);
                continue;
            }

            // Ensure the worker holds a HIT.
            if st.session.is_none() {
                match pool.accept_any() {
                    Some(hit) => {
                        st.session = Some(WorkerSession::open(st.external_id.clone(), hit, now));
                        events.push(MarketEvent::HitAccepted {
                            at: now,
                            worker: st.external_id.clone(),
                            hit,
                        });
                    }
                    None => continue, // marketplace sold out; worker leaves
                }
            }

            // Request a microtask.
            match server.request_task(&st.external_id, now) {
                Some(task) => {
                    st.declines = 0;
                    events.push(MarketEvent::TaskAssigned {
                        at: now,
                        worker: st.external_id.clone(),
                        task,
                    });
                    let session = st.session.as_mut().expect("session ensured above");
                    session.assign(task);
                    let answer = st.behavior.answer(&self.tasks[task]);
                    session.complete_task();
                    st.answered_total += 1;
                    answers += 1;
                    events.push(MarketEvent::AnswerSubmitted {
                        at: now,
                        worker: st.external_id.clone(),
                        task,
                        answer,
                    });
                    server.submit_answer(&st.external_id, task, answer, now);

                    // HIT complete → pay and release the session.
                    if session.hit_finished(self.config.tasks_per_hit) {
                        let hit = session.hit;
                        session.close();
                        st.session = None;
                        ledger.pay(&st.external_id, hit, self.config.reward_cents);
                        events.push(MarketEvent::HitSubmitted {
                            at: now,
                            worker: st.external_id.clone(),
                            hit,
                            reward_cents: self.config.reward_cents,
                        });
                    }
                    heap.push(Reverse((now.0 + st.script.ticks_per_answer, seq, wi)));
                    seq += 1;
                }
                None => {
                    events.push(MarketEvent::RequestDeclined {
                        at: now,
                        worker: st.external_id.clone(),
                    });
                    st.declines += 1;
                    if st.declines <= self.config.max_retries {
                        heap.push(Reverse((now.0 + self.config.retry_backoff, seq, wi)));
                        seq += 1;
                    } else {
                        Self::leave(st, &mut pool, &mut ledger, &mut events, now, &self.config);
                    }
                }
            }
        }

        // Close any sessions still open when events ran out.
        let final_tick = end;
        for st in &mut states {
            Self::leave(
                st,
                &mut pool,
                &mut ledger,
                &mut events,
                final_tick,
                &self.config,
            );
        }

        events.export_to_obs();
        MarketOutcome {
            ledger,
            events,
            end,
            answers,
        }
    }

    /// Closes a worker's open session: pays a finished HIT, abandons a
    /// partial one (returning the slot to the pool).
    fn leave(
        st: &mut WorkerState<'_>,
        pool: &mut HitPool,
        ledger: &mut PaymentLedger,
        events: &mut EventLog,
        now: Tick,
        config: &MarketConfig,
    ) {
        let Some(mut session) = st.session.take() else {
            return;
        };
        let hit = session.hit;
        if session.hit_finished(config.tasks_per_hit) {
            ledger.pay(&st.external_id, hit, config.reward_cents);
            events.push(MarketEvent::HitSubmitted {
                at: now,
                worker: st.external_id.clone(),
                hit,
                reward_cents: config.reward_cents,
            });
        } else {
            pool.release(hit);
            events.push(MarketEvent::HitAbandoned {
                at: now,
                worker: st.external_id.clone(),
                hit,
            });
        }
        session.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icrowd_core::task::Microtask;

    /// A server that hands out tasks round-robin until each has `k`
    /// answers, never assigning the same task to a worker twice.
    struct RoundRobinServer {
        k: usize,
        counts: Vec<usize>,
        answered_by: Vec<Vec<String>>,
    }

    impl RoundRobinServer {
        fn new(n: usize, k: usize) -> Self {
            Self {
                k,
                counts: vec![0; n],
                answered_by: vec![Vec::new(); n],
            }
        }
    }

    impl ExternalQuestionServer for RoundRobinServer {
        fn request_task(&mut self, worker: &str, _now: Tick) -> Option<TaskId> {
            (0..self.counts.len())
                .find(|&i| {
                    self.counts[i] < self.k && !self.answered_by[i].iter().any(|w| w == worker)
                })
                .map(|i| TaskId(i as u32))
        }

        fn submit_answer(&mut self, worker: &str, task: TaskId, _answer: Answer, _now: Tick) {
            self.counts[task.index()] += 1;
            self.answered_by[task.index()].push(worker.to_owned());
        }

        fn is_complete(&self) -> bool {
            self.counts.iter().all(|&c| c >= self.k)
        }
    }

    /// Always answers YES.
    struct YesBehavior;
    impl WorkerBehavior for YesBehavior {
        fn answer(&mut self, _task: &Microtask) -> Answer {
            Answer::YES
        }
    }

    fn tasks(n: u32) -> TaskSet {
        (0..n)
            .map(|i| Microtask::binary(TaskId(i), format!("task {i}")))
            .collect()
    }

    fn yes_workers(n: usize) -> Vec<(WorkerScript, Box<dyn WorkerBehavior>)> {
        (0..n)
            .map(|_| {
                (
                    WorkerScript::default(),
                    Box::new(YesBehavior) as Box<dyn WorkerBehavior>,
                )
            })
            .collect()
    }

    #[test]
    fn campaign_runs_to_completion() {
        let market = Marketplace::new(tasks(6), MarketConfig::default());
        let mut server = RoundRobinServer::new(6, 3);
        let outcome = market.run_sequential(&mut server, yes_workers(4));
        assert!(server.is_complete());
        assert_eq!(outcome.answers, 18, "6 tasks x 3 assignments");
        // No worker answered any task twice.
        for by in &server.answered_by {
            let mut sorted = by.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), by.len());
        }
    }

    #[test]
    fn payment_follows_hit_completion() {
        // 10 tasks/HIT, 30 answers total → exactly 3 full HITs if one
        // worker does everything.
        let config = MarketConfig {
            tasks_per_hit: 10,
            ..Default::default()
        };
        let market = Marketplace::new(tasks(10), config);
        let mut server = RoundRobinServer::new(10, 3);
        let outcome = market.run_sequential(&mut server, yes_workers(3));
        // 30 answers at 10 per HIT → 3 paid HITs (each worker answers each
        // task once → 10 answers each → 1 full HIT each).
        assert_eq!(outcome.answers, 30);
        assert_eq!(outcome.ledger.num_payments(), 3);
        assert_eq!(outcome.ledger.total_spend(), 30);
        for w in ["W1", "W2", "W3"] {
            assert_eq!(outcome.ledger.earnings(w), 10);
        }
    }

    #[test]
    fn partial_hits_are_abandoned_unpaid() {
        // 5 tasks, k=1: a single worker answers 5 < 10 tasks and abandons.
        let market = Marketplace::new(tasks(5), MarketConfig::default());
        let mut server = RoundRobinServer::new(5, 1);
        let outcome = market.run_sequential(&mut server, yes_workers(1));
        assert_eq!(outcome.answers, 5);
        assert_eq!(outcome.ledger.total_spend(), 0);
        assert!(outcome
            .events
            .events()
            .iter()
            .any(|e| matches!(e, MarketEvent::HitAbandoned { .. })));
    }

    #[test]
    fn declined_workers_retry_then_leave() {
        struct NeverServer;
        impl ExternalQuestionServer for NeverServer {
            fn request_task(&mut self, _w: &str, _n: Tick) -> Option<TaskId> {
                None
            }
            fn submit_answer(&mut self, _w: &str, _t: TaskId, _a: Answer, _n: Tick) {}
            fn is_complete(&self) -> bool {
                false
            }
        }
        let market = Marketplace::new(tasks(3), MarketConfig::default());
        let outcome = market.run_sequential(&mut NeverServer, yes_workers(1));
        let declines = outcome
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, MarketEvent::RequestDeclined { .. }))
            .count();
        assert_eq!(declines, 3, "initial try + max_retries = 2 retries");
        assert_eq!(outcome.answers, 0);
    }

    #[test]
    fn worker_budget_limits_answers() {
        let market = Marketplace::new(tasks(10), MarketConfig::default());
        let mut server = RoundRobinServer::new(10, 1);
        let workers = vec![(
            WorkerScript {
                max_answers: 4,
                ..Default::default()
            },
            Box::new(YesBehavior) as Box<dyn WorkerBehavior>,
        )];
        let outcome = market.run_sequential(&mut server, workers);
        assert_eq!(outcome.answers, 4);
    }

    #[test]
    fn arrivals_are_honored() {
        let market = Marketplace::new(tasks(2), MarketConfig::default());
        let mut server = RoundRobinServer::new(2, 1);
        let workers = vec![(
            WorkerScript {
                arrival: Tick(100),
                ..Default::default()
            },
            Box::new(YesBehavior) as Box<dyn WorkerBehavior>,
        )];
        let outcome = market.run_sequential(&mut server, workers);
        assert!(outcome.events.events()[0].at() >= Tick(100));
        assert!(outcome.end >= Tick(100));
    }

    #[test]
    fn deterministic_event_log() {
        let run = || {
            let market = Marketplace::new(tasks(6), MarketConfig::default());
            let mut server = RoundRobinServer::new(6, 3);
            market
                .run_sequential(&mut server, yes_workers(4))
                .events
                .to_json_lines()
        };
        assert_eq!(run(), run());
    }

    mod properties {
        use super::*;
        use crate::events::MarketEvent;
        use proptest::prelude::*;

        fn arb_scripts() -> impl Strategy<Value = Vec<WorkerScript>> {
            proptest::collection::vec(
                (0u64..50, 1usize..40, 1u64..5).prop_map(|(arrival, max_answers, pace)| {
                    WorkerScript {
                        arrival: Tick(arrival),
                        max_answers,
                        ticks_per_answer: pace,
                    }
                }),
                1..6,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Marketplace accounting invariants hold for ANY worker
            /// script mix: answers match events, payments match submitted
            /// HITs, no task is oversubscribed, and the clock never runs
            /// backwards.
            #[test]
            fn accounting_invariants_hold_for_random_crowds(
                scripts in arb_scripts(),
                n_tasks in 1u32..12,
                k in 1usize..4,
            ) {
                let market = Marketplace::new(tasks(n_tasks), MarketConfig::default());
                let mut server = RoundRobinServer::new(n_tasks as usize, k);
                let workers: Vec<(WorkerScript, Box<dyn WorkerBehavior>)> = scripts
                    .into_iter()
                    .map(|s| (s, Box::new(YesBehavior) as Box<dyn WorkerBehavior>))
                    .collect();
                let outcome = market.run_sequential(&mut server, workers);

                // 1. Every answer is an AnswerSubmitted event and vice versa.
                let answer_events = outcome
                    .events
                    .events()
                    .iter()
                    .filter(|e| matches!(e, MarketEvent::AnswerSubmitted { .. }))
                    .count();
                prop_assert_eq!(answer_events, outcome.answers);

                // 2. Ledger spend equals the sum over HitSubmitted events.
                let submitted: u64 = outcome
                    .events
                    .events()
                    .iter()
                    .filter_map(|e| match e {
                        MarketEvent::HitSubmitted { reward_cents, .. } => {
                            Some(u64::from(*reward_cents))
                        }
                        _ => None,
                    })
                    .sum();
                prop_assert_eq!(outcome.ledger.total_spend(), submitted);

                // 3. No task collected more than k answers.
                for &c in &server.counts {
                    prop_assert!(c <= k);
                }

                // 4. Event timestamps are monotone.
                let mut last = Tick::ZERO;
                for e in outcome.events.events() {
                    prop_assert!(e.at() >= last);
                    last = e.at();
                }
            }
        }
    }
}
