//! The marketplace event loop.
//!
//! [`Marketplace::run_sequential`] drives a population of scripted
//! workers against an [`ExternalQuestionServer`] — the role iCrowd (or a
//! baseline) plays — reproducing the Appendix-A interaction: a worker
//! accepts a HIT, repeatedly requests a microtask and submits an answer,
//! and is paid when the HIT completes. The loop is event-driven over a
//! logical [`Tick`] clock and fully deterministic: events are ordered by
//! `(tick, sequence-number)`.
//!
//! [`Marketplace::run_with_faults`] is the same loop with a seedable
//! [`FaultPlan`] injected between the worker and the server: answers can
//! be lost in transit, delivered late or twice, workers can stall on an
//! assignment forever or depart en masse. A `None` plan takes exactly
//! the plain code paths, so fault-free runs are bit-identical to
//! `run_sequential`.

use icrowd_core::answer::Answer;
use icrowd_core::task::{Microtask, TaskId, TaskSet};
use icrowd_core::worker::Tick;

use crate::driver::{MarketDriver, TurnOutcome};
use crate::events::{EventLog, RejectReason};
use crate::faults::{FaultConfig, FaultStats};
use crate::payment::PaymentLedger;

/// The server's verdict on a submitted answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The answer was recorded (and will be paid if the HIT completes).
    Accepted,
    /// The answer was refused and must not be recorded or paid.
    Rejected(RejectReason),
}

/// The server side of the ExternalQuestion loop — implemented by iCrowd's
/// adaptive assigner and by every baseline strategy.
pub trait ExternalQuestionServer {
    /// A worker identified by `worker` (AMT external id) requests a
    /// microtask at `now`. Returns the assigned task, or `None` when the
    /// server has nothing for this worker (rejected worker, no eligible
    /// task, or campaign complete). Re-requesting while an assignment is
    /// in flight must idempotently re-issue the same task.
    fn request_task(&mut self, worker: &str, now: Tick) -> Option<TaskId>;

    /// The worker submits her answer to a previously assigned task. The
    /// server must validate the submission against its assignment record
    /// — unsolicited, duplicate, or stale answers are rejected, never
    /// silently recorded.
    fn submit_answer(
        &mut self,
        worker: &str,
        task: TaskId,
        answer: Answer,
        now: Tick,
    ) -> SubmitOutcome;

    /// Whether the campaign is finished (all microtasks globally
    /// completed); the marketplace stops issuing requests once true.
    fn is_complete(&self) -> bool;
}

/// How a simulated worker answers microtasks (implemented in
/// `icrowd-sim`; behaviour is deliberately opaque to the platform).
pub trait WorkerBehavior: Send {
    /// Answers the given microtask.
    fn answer(&mut self, task: &Microtask) -> Answer;
}

/// A worker's marketplace script: when she shows up and how she paces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerScript {
    /// When the worker first arrives.
    pub arrival: Tick,
    /// Total microtasks she is willing to answer before leaving.
    pub max_answers: usize,
    /// Ticks taken per answered microtask.
    pub ticks_per_answer: u64,
}

impl Default for WorkerScript {
    fn default() -> Self {
        Self {
            arrival: Tick::ZERO,
            max_answers: usize::MAX,
            ticks_per_answer: 1,
        }
    }
}

/// Marketplace parameters (defaults mirror Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarketConfig {
    /// Published HITs.
    pub num_hits: usize,
    /// "Number of Assignments per HIT" (the paper used 10).
    pub assignments_per_hit: u32,
    /// Microtasks per HIT (the paper used 10).
    pub tasks_per_hit: usize,
    /// Reward per completed assignment, in cents (the paper used 10¢).
    pub reward_cents: u32,
    /// Backoff before a declined worker retries.
    pub retry_backoff: u64,
    /// Declines tolerated before a worker gives up and leaves.
    pub max_retries: u32,
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self {
            num_hits: 64,
            assignments_per_hit: 10,
            tasks_per_hit: 10,
            reward_cents: 10,
            retry_backoff: 5,
            max_retries: 2,
        }
    }
}

/// Answer-level accounting over a marketplace run.
///
/// Every answer a worker *produces* either reaches the server (counted in
/// `answers_submitted`, then split into accepted/rejected), is lost in
/// transit (`answers_dropped`), or is held forever by a stalled worker
/// (`stalled`). Every *accepted* answer is eventually paid (its HIT was
/// submitted) or abandoned (its HIT was released unpaid) — never both,
/// never neither.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarketAccounting {
    /// Answers that reached the server (including duplicate deliveries).
    pub answers_submitted: u64,
    /// Submissions the server recorded.
    pub answers_accepted: u64,
    /// Submissions the server refused (duplicate, stale, unsolicited).
    pub answers_rejected: u64,
    /// Answers lost in transit; the server never saw them.
    pub answers_dropped: u64,
    /// Accepted answers inside HITs that were submitted and paid.
    pub answers_paid: u64,
    /// Accepted answers inside HITs that were abandoned unpaid.
    pub answers_abandoned: u64,
    /// Workers who stalled on an assignment and never returned.
    pub stalled: u64,
    /// Workers who departed in churn spikes.
    pub churned: u64,
}

impl MarketAccounting {
    /// The run-level conservation laws. A server that double-records a
    /// duplicate (paying an answer twice) breaks the second equation —
    /// that is the bug this detector exists for.
    pub fn balanced(&self) -> bool {
        self.answers_accepted + self.answers_rejected == self.answers_submitted
            && self.answers_paid + self.answers_abandoned == self.answers_accepted
    }
}

/// What a marketplace run produced.
#[derive(Debug)]
pub struct MarketOutcome {
    /// Payments made.
    pub ledger: PaymentLedger,
    /// The full event log.
    pub events: EventLog,
    /// When the last event happened.
    pub end: Tick,
    /// Total answers collected (accepted by the server).
    pub answers: usize,
    /// Answer-level accounting.
    pub accounting: MarketAccounting,
    /// Faults injected (all zero when no plan was supplied).
    pub faults: FaultStats,
}

/// The simulated marketplace.
pub struct Marketplace {
    tasks: TaskSet,
    config: MarketConfig,
}

impl Marketplace {
    /// Creates a marketplace publishing HITs over `tasks`.
    pub fn new(tasks: TaskSet, config: MarketConfig) -> Self {
        Self { tasks, config }
    }

    /// The task set on offer.
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// Runs the event loop until the server reports completion, every
    /// worker has left, or no events remain.
    ///
    /// `workers` pairs each behaviour with its script; external ids are
    /// `"W1"`, `"W2"`, ... in input order.
    pub fn run_sequential<'a>(
        &self,
        server: &mut dyn ExternalQuestionServer,
        workers: Vec<(WorkerScript, Box<dyn WorkerBehavior + 'a>)>,
    ) -> MarketOutcome {
        self.run_with_faults(server, workers, None)
    }

    /// [`Self::run_sequential`] with an optional fault plan injected
    /// between the workers and the server. With `faults: None` the run is
    /// bit-identical to `run_sequential`.
    ///
    /// The schedule itself lives in [`MarketDriver`]; this wrapper only
    /// closes the assignment → answer gap with a direct behaviour call,
    /// so the served (networked) and in-process paths run the same code.
    pub fn run_with_faults<'a>(
        &self,
        server: &mut dyn ExternalQuestionServer,
        workers: Vec<(WorkerScript, Box<dyn WorkerBehavior + 'a>)>,
        faults: Option<FaultConfig>,
    ) -> MarketOutcome {
        let _span = icrowd_obs::span!("market.run");
        let (scripts, mut behaviors): (Vec<WorkerScript>, Vec<Box<dyn WorkerBehavior + 'a>>) =
            workers.into_iter().unzip();
        let mut driver = MarketDriver::new(self.tasks.clone(), self.config, scripts, faults);
        while let TurnOutcome::Assigned { worker, task } = driver.advance(server) {
            let answer = behaviors[worker].answer(&self.tasks[task]);
            driver.submit_scheduled(worker, answer, server);
        }
        driver.into_outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::MarketEvent;
    use icrowd_core::task::Microtask;
    use std::collections::BTreeMap;

    /// A server that hands out tasks round-robin until each has `k`
    /// answers, never assigning the same task to a worker twice. Tracks
    /// in-flight assignments so re-requests are idempotent and stray
    /// submissions are rejected.
    struct RoundRobinServer {
        k: usize,
        counts: Vec<usize>,
        answered_by: Vec<Vec<String>>,
        in_flight: BTreeMap<String, TaskId>,
    }

    impl RoundRobinServer {
        fn new(n: usize, k: usize) -> Self {
            Self {
                k,
                counts: vec![0; n],
                answered_by: vec![Vec::new(); n],
                in_flight: BTreeMap::new(),
            }
        }
    }

    impl ExternalQuestionServer for RoundRobinServer {
        fn request_task(&mut self, worker: &str, _now: Tick) -> Option<TaskId> {
            if let Some(&task) = self.in_flight.get(worker) {
                if self.counts[task.index()] < self.k {
                    return Some(task); // idempotent re-issue after a dropped answer
                }
                // Others finished the task while this answer was in
                // flight; release the stale assignment.
                self.in_flight.remove(worker);
            }
            let task = (0..self.counts.len())
                .find(|&i| {
                    self.counts[i] < self.k && !self.answered_by[i].iter().any(|w| w == worker)
                })
                .map(|i| TaskId(i as u32))?;
            self.in_flight.insert(worker.to_owned(), task);
            Some(task)
        }

        fn submit_answer(
            &mut self,
            worker: &str,
            task: TaskId,
            _answer: Answer,
            _now: Tick,
        ) -> SubmitOutcome {
            if self.in_flight.get(worker) != Some(&task) {
                let reason = if self.answered_by[task.index()].iter().any(|w| w == worker) {
                    RejectReason::Duplicate
                } else {
                    RejectReason::NotAssigned
                };
                return SubmitOutcome::Rejected(reason);
            }
            self.in_flight.remove(worker);
            if self.counts[task.index()] >= self.k {
                return SubmitOutcome::Rejected(RejectReason::TaskCompleted);
            }
            self.counts[task.index()] += 1;
            self.answered_by[task.index()].push(worker.to_owned());
            SubmitOutcome::Accepted
        }

        fn is_complete(&self) -> bool {
            self.counts.iter().all(|&c| c >= self.k)
        }
    }

    /// Always answers YES.
    struct YesBehavior;
    impl WorkerBehavior for YesBehavior {
        fn answer(&mut self, _task: &Microtask) -> Answer {
            Answer::YES
        }
    }

    fn tasks(n: u32) -> TaskSet {
        (0..n)
            .map(|i| Microtask::binary(TaskId(i), format!("task {i}")))
            .collect()
    }

    fn yes_workers(n: usize) -> Vec<(WorkerScript, Box<dyn WorkerBehavior>)> {
        (0..n)
            .map(|_| {
                (
                    WorkerScript::default(),
                    Box::new(YesBehavior) as Box<dyn WorkerBehavior>,
                )
            })
            .collect()
    }

    #[test]
    fn campaign_runs_to_completion() {
        let market = Marketplace::new(tasks(6), MarketConfig::default());
        let mut server = RoundRobinServer::new(6, 3);
        let outcome = market.run_sequential(&mut server, yes_workers(4));
        assert!(server.is_complete());
        assert_eq!(outcome.answers, 18, "6 tasks x 3 assignments");
        assert!(outcome.accounting.balanced());
        // No worker answered any task twice.
        for by in &server.answered_by {
            let mut sorted = by.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), by.len());
        }
    }

    #[test]
    fn payment_follows_hit_completion() {
        // 10 tasks/HIT, 30 answers total → exactly 3 full HITs if one
        // worker does everything.
        let config = MarketConfig {
            tasks_per_hit: 10,
            ..Default::default()
        };
        let market = Marketplace::new(tasks(10), config);
        let mut server = RoundRobinServer::new(10, 3);
        let outcome = market.run_sequential(&mut server, yes_workers(3));
        // 30 answers at 10 per HIT → 3 paid HITs (each worker answers each
        // task once → 10 answers each → 1 full HIT each).
        assert_eq!(outcome.answers, 30);
        assert_eq!(outcome.ledger.num_payments(), 3);
        assert_eq!(outcome.ledger.total_spend(), 30);
        for w in ["W1", "W2", "W3"] {
            assert_eq!(outcome.ledger.earnings(w), 10);
        }
        assert_eq!(outcome.accounting.answers_paid, 30);
        assert!(outcome.accounting.balanced());
    }

    #[test]
    fn partial_hits_are_abandoned_unpaid() {
        // 5 tasks, k=1: a single worker answers 5 < 10 tasks and abandons.
        let market = Marketplace::new(tasks(5), MarketConfig::default());
        let mut server = RoundRobinServer::new(5, 1);
        let outcome = market.run_sequential(&mut server, yes_workers(1));
        assert_eq!(outcome.answers, 5);
        assert_eq!(outcome.ledger.total_spend(), 0);
        assert!(outcome
            .events
            .events()
            .iter()
            .any(|e| matches!(e, MarketEvent::HitAbandoned { answered: 5, .. })));
        assert_eq!(outcome.accounting.answers_abandoned, 5);
        assert!(outcome.accounting.balanced());
    }

    #[test]
    fn declined_workers_retry_then_leave() {
        struct NeverServer;
        impl ExternalQuestionServer for NeverServer {
            fn request_task(&mut self, _w: &str, _n: Tick) -> Option<TaskId> {
                None
            }
            fn submit_answer(
                &mut self,
                _w: &str,
                _t: TaskId,
                _a: Answer,
                _n: Tick,
            ) -> SubmitOutcome {
                SubmitOutcome::Rejected(RejectReason::NotAssigned)
            }
            fn is_complete(&self) -> bool {
                false
            }
        }
        let market = Marketplace::new(tasks(3), MarketConfig::default());
        let outcome = market.run_sequential(&mut NeverServer, yes_workers(1));
        let declines = outcome
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, MarketEvent::RequestDeclined { .. }))
            .count();
        assert_eq!(declines, 3, "initial try + max_retries = 2 retries");
        assert_eq!(outcome.answers, 0);
    }

    #[test]
    fn worker_budget_limits_answers() {
        let market = Marketplace::new(tasks(10), MarketConfig::default());
        let mut server = RoundRobinServer::new(10, 1);
        let workers = vec![(
            WorkerScript {
                max_answers: 4,
                ..Default::default()
            },
            Box::new(YesBehavior) as Box<dyn WorkerBehavior>,
        )];
        let outcome = market.run_sequential(&mut server, workers);
        assert_eq!(outcome.answers, 4);
    }

    #[test]
    fn arrivals_are_honored() {
        let market = Marketplace::new(tasks(2), MarketConfig::default());
        let mut server = RoundRobinServer::new(2, 1);
        let workers = vec![(
            WorkerScript {
                arrival: Tick(100),
                ..Default::default()
            },
            Box::new(YesBehavior) as Box<dyn WorkerBehavior>,
        )];
        let outcome = market.run_sequential(&mut server, workers);
        assert!(outcome.events.events()[0].at() >= Tick(100));
        assert!(outcome.end >= Tick(100));
    }

    #[test]
    fn deterministic_event_log() {
        let run = || {
            let market = Marketplace::new(tasks(6), MarketConfig::default());
            let mut server = RoundRobinServer::new(6, 3);
            market
                .run_sequential(&mut server, yes_workers(4))
                .events
                .to_json_lines()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_plain_run() {
        let run = |faults: Option<FaultConfig>| {
            let market = Marketplace::new(tasks(6), MarketConfig::default());
            let mut server = RoundRobinServer::new(6, 3);
            market
                .run_with_faults(&mut server, yes_workers(4), faults)
                .events
                .to_json_lines()
        };
        assert_eq!(run(None), run(Some(FaultConfig::default())));
    }

    #[test]
    fn dropped_answers_are_retried_to_completion() {
        let market = Marketplace::new(tasks(4), MarketConfig::default());
        let mut server = RoundRobinServer::new(4, 2);
        let faults = FaultConfig {
            seed: 11,
            drop_rate: 0.3,
            ..Default::default()
        };
        let outcome = market.run_with_faults(&mut server, yes_workers(3), Some(faults));
        assert!(server.is_complete(), "retries must converge");
        assert_eq!(outcome.answers, 8, "4 tasks x 2 assignments");
        assert!(outcome.faults.drops > 0, "a 30% drop rate must fire");
        assert_eq!(outcome.accounting.answers_dropped, outcome.faults.drops);
        assert!(outcome.accounting.balanced());
    }

    #[test]
    fn stalled_workers_hold_assignments_forever() {
        let market = Marketplace::new(tasks(2), MarketConfig::default());
        let mut server = RoundRobinServer::new(2, 1);
        let faults = FaultConfig {
            seed: 3,
            stall_rate: 1.0,
            ..Default::default()
        };
        let outcome = market.run_with_faults(&mut server, yes_workers(2), Some(faults));
        assert!(!server.is_complete());
        assert_eq!(outcome.answers, 0);
        assert_eq!(outcome.accounting.stalled, 2);
        assert_eq!(outcome.ledger.total_spend(), 0);
        assert!(outcome.accounting.balanced());
        let stalls = outcome
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, MarketEvent::WorkerStalled { .. }))
            .count();
        assert_eq!(stalls, 2);
    }

    #[test]
    fn duplicate_submissions_pay_exactly_once() {
        // Every accepted answer is redelivered; the copy must be rejected
        // so one full pass over 10 tasks still pays exactly one HIT.
        let market = Marketplace::new(tasks(10), MarketConfig::default());
        let mut server = RoundRobinServer::new(10, 1);
        let faults = FaultConfig {
            seed: 5,
            dup_rate: 1.0,
            ..Default::default()
        };
        let outcome = market.run_with_faults(&mut server, yes_workers(1), Some(faults));
        assert!(server.is_complete());
        assert_eq!(outcome.answers, 10);
        assert_eq!(outcome.accounting.answers_submitted, 20);
        assert_eq!(outcome.accounting.answers_rejected, 10);
        assert_eq!(outcome.ledger.num_payments(), 1, "one HIT, paid once");
        assert_eq!(outcome.ledger.total_spend(), 10);
        assert!(outcome.accounting.balanced());
        assert!(outcome.events.events().iter().any(|e| matches!(
            e,
            MarketEvent::AnswerRejected {
                reason: RejectReason::Duplicate,
                ..
            }
        )));
    }

    #[test]
    fn late_answers_are_delivered_after_a_delay() {
        let market = Marketplace::new(tasks(4), MarketConfig::default());
        let mut server = RoundRobinServer::new(4, 1);
        let faults = FaultConfig {
            seed: 8,
            late_rate: 1.0,
            late_max_ticks: 5,
            ..Default::default()
        };
        let outcome = market.run_with_faults(&mut server, yes_workers(1), Some(faults));
        assert!(server.is_complete());
        assert_eq!(outcome.answers, 4);
        assert_eq!(outcome.faults.lates, 4);
        assert!(outcome.accounting.balanced());
        // Each answer arrives strictly after its assignment tick.
        let evs = outcome.events.events();
        for (i, e) in evs.iter().enumerate() {
            if let MarketEvent::AnswerSubmitted { at, task, .. } = e {
                let assigned_at = evs[..i]
                    .iter()
                    .rev()
                    .find_map(|p| match p {
                        MarketEvent::TaskAssigned { at, task: t, .. } if t == task => Some(*at),
                        _ => None,
                    })
                    .expect("assignment precedes submission");
                assert!(*at > assigned_at, "late answers arrive strictly later");
            }
        }
    }

    #[test]
    fn churn_spike_removes_workers() {
        let market = Marketplace::new(tasks(50), MarketConfig::default());
        let mut server = RoundRobinServer::new(50, 3);
        let faults = FaultConfig {
            seed: 1,
            churn: vec![crate::faults::ChurnSpike {
                at: 5,
                fraction: 1.0,
            }],
            ..Default::default()
        };
        let outcome = market.run_with_faults(&mut server, yes_workers(3), Some(faults));
        assert!(!server.is_complete(), "everyone left at tick 5");
        assert_eq!(outcome.accounting.churned, 3);
        assert!(outcome.accounting.balanced());
        let churned = outcome
            .events
            .events()
            .iter()
            .filter(|e| matches!(e, MarketEvent::WorkerChurned { .. }))
            .count();
        assert_eq!(churned, 3);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            let market = Marketplace::new(tasks(8), MarketConfig::default());
            let mut server = RoundRobinServer::new(8, 2);
            let faults = FaultConfig {
                seed: 77,
                drop_rate: 0.2,
                dup_rate: 0.1,
                late_rate: 0.2,
                late_max_ticks: 4,
                stall_rate: 0.05,
                churn: vec![crate::faults::ChurnSpike {
                    at: 30,
                    fraction: 0.2,
                }],
            };
            market
                .run_with_faults(&mut server, yes_workers(5), Some(faults))
                .events
                .to_json_lines()
        };
        assert_eq!(run(), run());
    }

    mod properties {
        use super::*;
        use crate::events::MarketEvent;
        use proptest::prelude::*;

        fn arb_scripts() -> impl Strategy<Value = Vec<WorkerScript>> {
            proptest::collection::vec(
                (0u64..50, 1usize..40, 1u64..5).prop_map(|(arrival, max_answers, pace)| {
                    WorkerScript {
                        arrival: Tick(arrival),
                        max_answers,
                        ticks_per_answer: pace,
                    }
                }),
                1..6,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Marketplace accounting invariants hold for ANY worker
            /// script mix: answers match events, payments match submitted
            /// HITs, no task is oversubscribed, and the clock never runs
            /// backwards.
            #[test]
            fn accounting_invariants_hold_for_random_crowds(
                scripts in arb_scripts(),
                n_tasks in 1u32..12,
                k in 1usize..4,
            ) {
                let market = Marketplace::new(tasks(n_tasks), MarketConfig::default());
                let mut server = RoundRobinServer::new(n_tasks as usize, k);
                let workers: Vec<(WorkerScript, Box<dyn WorkerBehavior>)> = scripts
                    .into_iter()
                    .map(|s| (s, Box::new(YesBehavior) as Box<dyn WorkerBehavior>))
                    .collect();
                let outcome = market.run_sequential(&mut server, workers);

                // 1. Every answer is an AnswerSubmitted event and vice versa.
                let answer_events = outcome
                    .events
                    .events()
                    .iter()
                    .filter(|e| matches!(e, MarketEvent::AnswerSubmitted { .. }))
                    .count();
                prop_assert_eq!(answer_events, outcome.answers);

                // 2. Ledger spend equals the sum over HitSubmitted events.
                let submitted: u64 = outcome
                    .events
                    .events()
                    .iter()
                    .filter_map(|e| match e {
                        MarketEvent::HitSubmitted { reward_cents, .. } => {
                            Some(u64::from(*reward_cents))
                        }
                        _ => None,
                    })
                    .sum();
                prop_assert_eq!(outcome.ledger.total_spend(), submitted);

                // 3. No task collected more than k answers.
                for &c in &server.counts {
                    prop_assert!(c <= k);
                }

                // 4. Event timestamps are monotone.
                let mut last = Tick::ZERO;
                for e in outcome.events.events() {
                    prop_assert!(e.at() >= last);
                    last = e.at();
                }

                // 5. Answer conservation laws hold.
                prop_assert!(outcome.accounting.balanced());
            }
        }
    }
}
