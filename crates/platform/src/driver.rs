//! The resumable marketplace driver.
//!
//! [`MarketDriver`] is the marketplace event loop of
//! [`crate::market::Marketplace`] split open at the one point where a
//! worker produces an answer: [`MarketDriver::advance`] runs the
//! deterministic `(tick, sequence)` schedule up to the next assignment
//! and then *suspends*, and [`MarketDriver::submit_scheduled`] resumes
//! it with the answer. The in-process harness closes the gap with a
//! direct [`crate::market::WorkerBehavior`] call; the TCP serving layer
//! closes it with a network round-trip to a remote client. Both paths
//! execute the identical driver code in the identical order, which is
//! what makes a served campaign's outcome bit-identical to the
//! in-process run at the same seed.
//!
//! While an assignment is outstanding ([`MarketDriver::pending`]), no
//! other worker's turn can run — exactly as in the single-threaded loop,
//! where the behaviour call sits inline between assignment and delivery.
//! Remote workers polling out of turn get [`PollOutcome::Wait`] and try
//! again; deferred (late) deliveries queued in the heap are pumped by
//! whichever worker polls next.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use icrowd_core::answer::Answer;
use icrowd_core::task::{TaskId, TaskSet};
use icrowd_core::worker::Tick;

use crate::events::{EventLog, MarketEvent};
use crate::faults::{FaultConfig, FaultPlan};
use crate::hit::HitPool;
use crate::market::{
    ExternalQuestionServer, MarketAccounting, MarketConfig, MarketOutcome, SubmitOutcome,
    WorkerScript,
};
use crate::payment::PaymentLedger;
use crate::session::WorkerSession;

/// A heap entry's payload: a worker's next turn, or the deferred
/// delivery of a late answer (indexing the side table of deliveries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Pending {
    Turn(usize),
    Deliver(usize),
}

/// A late answer in flight: produced at assignment time, delivered to
/// the server several ticks later.
#[derive(Debug, Clone, Copy)]
struct Delivery {
    wi: usize,
    task: TaskId,
    answer: Answer,
}

/// Per-worker driver state (the behaviour lives with the caller).
struct DriverWorker {
    external_id: String,
    script: WorkerScript,
    session: Option<WorkerSession>,
    answered_total: usize,
    declines: u32,
    /// Next churn spike this worker has not yet rolled against.
    churn_idx: usize,
}

/// An assignment the driver is suspended on: the worker's answer must
/// arrive via [`MarketDriver::submit_scheduled`] before any other turn
/// can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingAssignment {
    /// Worker index (0-based; external id `"W{index+1}"`).
    pub worker: usize,
    /// The assigned microtask.
    pub task: TaskId,
    /// The logical tick of the assignment turn.
    pub at: Tick,
}

/// What [`MarketDriver::advance`] stopped on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnOutcome {
    /// A worker was assigned a task; the driver is suspended until
    /// [`MarketDriver::submit_scheduled`] delivers her answer.
    Assigned {
        /// Worker index.
        worker: usize,
        /// The assigned microtask.
        task: TaskId,
    },
    /// The schedule is exhausted: final sweep done, outcome ready.
    Finished,
}

/// What one worker's poll produced (the serving layer's view of a turn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// It is this worker's turn and she was assigned `task` (or her
    /// outstanding assignment was idempotently re-issued).
    Assigned(TaskId),
    /// Another worker's turn (or in-flight assignment) is ahead in the
    /// schedule; poll again shortly.
    Wait,
    /// The server had no task for this worker. With `retry` true she has
    /// a backoff turn queued; with `retry` false she gave up and left.
    Declined {
        /// Whether a retry turn was queued.
        retry: bool,
    },
    /// The worker left the marketplace (campaign complete, churned,
    /// budget exhausted, marketplace sold out) — no more turns for her.
    Left,
}

/// How a scheduled submission was settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitReport {
    /// The answer reached the server, which returned this verdict.
    Delivered(SubmitOutcome),
    /// A fault swallowed the answer in transit; the worker will be
    /// re-issued the task on her next turn.
    Dropped,
    /// The worker stalled on the assignment forever; no further turns.
    Stalled,
    /// A fault deferred delivery; the answer arrives a few ticks later,
    /// pumped by a subsequent poll.
    Deferred,
}

/// The marketplace event loop as a suspendable state machine. See the
/// module docs; construct via [`MarketDriver::new`], drive via
/// [`MarketDriver::advance`]/[`MarketDriver::submit_scheduled`] (in
/// process) or [`MarketDriver::poll`]/[`MarketDriver::submit_scheduled`]
/// (serving layer), then collect [`MarketDriver::into_outcome`].
pub struct MarketDriver {
    tasks: TaskSet,
    config: MarketConfig,
    plan: Option<FaultPlan>,
    pool: HitPool,
    ledger: PaymentLedger,
    events: EventLog,
    accounting: MarketAccounting,
    end: Tick,
    answers: usize,
    states: Vec<DriverWorker>,
    heap: BinaryHeap<Reverse<(u64, u64, Pending)>>,
    deliveries: Vec<Delivery>,
    seq: u64,
    pending: Option<PendingAssignment>,
    finished: bool,
    /// Mutation epoch: bumped whenever schedule, accounting or server
    /// state changes. A journaling layer compares epochs around a call
    /// to decide whether the call must be logged — idempotent re-issues
    /// and out-of-turn waits leave the epoch untouched.
    epoch: u64,
}

fn fault_counter(name: &str) {
    if icrowd_obs::is_enabled() {
        icrowd_obs::counter_add(name, 1);
    }
}

impl MarketDriver {
    /// Builds a driver over `tasks` for workers with the given scripts
    /// (external ids are `"W1"`, `"W2"`, ... in input order), with an
    /// optional fault plan injected between the workers and the server.
    pub fn new(
        tasks: TaskSet,
        config: MarketConfig,
        scripts: Vec<WorkerScript>,
        faults: Option<FaultConfig>,
    ) -> Self {
        let pool = HitPool::publish(
            config.num_hits,
            config.assignments_per_hit,
            config.tasks_per_hit,
            config.reward_cents,
        );
        let states: Vec<DriverWorker> = scripts
            .into_iter()
            .enumerate()
            .map(|(i, script)| DriverWorker {
                external_id: format!("W{}", i + 1),
                script,
                session: None,
                answered_total: 0,
                declines: 0,
                churn_idx: 0,
            })
            .collect();
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, st) in states.iter().enumerate() {
            heap.push(Reverse((st.script.arrival.0, seq, Pending::Turn(i))));
            seq += 1;
        }
        Self {
            tasks,
            config,
            plan: faults.map(FaultPlan::new),
            pool,
            ledger: PaymentLedger::new(),
            events: EventLog::new(),
            accounting: MarketAccounting::default(),
            end: Tick::ZERO,
            answers: 0,
            states,
            heap,
            deliveries: Vec::new(),
            seq,
            pending: None,
            finished: false,
            epoch: 0,
        }
    }

    /// Number of workers the driver schedules.
    pub fn num_workers(&self) -> usize {
        self.states.len()
    }

    /// The task set on offer.
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// A worker's external id (`"W{index+1}"`).
    pub fn external_id(&self, worker: usize) -> &str {
        &self.states[worker].external_id
    }

    /// The assignment the driver is currently suspended on, if any.
    pub fn pending(&self) -> Option<PendingAssignment> {
        self.pending
    }

    /// Whether the schedule has been exhausted and the final sweep ran.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Accounting so far (final once [`Self::is_finished`]).
    pub fn accounting(&self) -> MarketAccounting {
        self.accounting
    }

    /// Answers accepted by the server so far.
    pub fn answers(&self) -> usize {
        self.answers
    }

    /// The latest logical tick the schedule has reached.
    pub fn now(&self) -> Tick {
        self.end
    }

    /// The current mutation epoch (see the field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Runs the schedule until the next assignment or the end of the
    /// run. Used by the in-process harness; must not be called while an
    /// assignment is pending or after the driver finished.
    ///
    /// # Panics
    /// If called while suspended on a pending assignment.
    pub fn advance(&mut self, server: &mut dyn ExternalQuestionServer) -> TurnOutcome {
        assert!(
            self.pending.is_none(),
            "advance() while an assignment is pending"
        );
        loop {
            if self.finished {
                return TurnOutcome::Finished;
            }
            let Some(Reverse((tick, _, pending))) = self.heap.pop() else {
                self.finish();
                return TurnOutcome::Finished;
            };
            match self.run_entry(server, tick, pending) {
                Some(PollOutcome::Assigned(task)) => {
                    let worker = self.pending.expect("assignment suspends").worker;
                    return TurnOutcome::Assigned { worker, task };
                }
                _ => continue,
            }
        }
    }

    /// One worker's poll of the schedule, for the serving layer: pumps
    /// any deferred deliveries at the head of the heap, then runs this
    /// worker's turn if it is next — otherwise [`PollOutcome::Wait`].
    /// Unknown external ids get [`PollOutcome::Left`].
    pub fn poll(&mut self, server: &mut dyn ExternalQuestionServer, external: &str) -> PollOutcome {
        let _tspan = icrowd_obs::TraceSpan::start("driver.poll");
        if let Some(p) = self.pending {
            // Re-requesting while her own assignment is in flight
            // idempotently re-issues it; everyone else waits.
            return if self.states[p.worker].external_id == external {
                PollOutcome::Assigned(p.task)
            } else {
                PollOutcome::Wait
            };
        }
        loop {
            if self.finished {
                return PollOutcome::Left;
            }
            match self.heap.peek() {
                None => {
                    self.finish();
                    return PollOutcome::Left;
                }
                Some(&Reverse((_, _, Pending::Turn(wi)))) => {
                    if self.states[wi].external_id != external {
                        return PollOutcome::Wait;
                    }
                    let Reverse((tick, _, pending)) = self.heap.pop().expect("peeked");
                    if let Some(outcome) = self.run_entry(server, tick, pending) {
                        return outcome;
                    }
                }
                Some(&Reverse((_, _, Pending::Deliver(_)))) => {
                    let Reverse((tick, _, pending)) = self.heap.pop().expect("peeked");
                    self.run_entry(server, tick, pending);
                }
            }
        }
    }

    /// Pumps deferred deliveries sitting at the head of the schedule
    /// without consuming any worker turn, and runs the final sweep if
    /// the schedule is exhausted. The serving layer calls this on
    /// `STATUS` and at drain so late answers still land after every
    /// worker has left.
    pub fn pump(&mut self, server: &mut dyn ExternalQuestionServer) {
        let _tspan = icrowd_obs::TraceSpan::start("driver.pump");
        while let Some(&Reverse((tick, _, pending @ Pending::Deliver(_)))) = self.heap.peek() {
            self.heap.pop();
            self.run_entry(server, tick, pending);
        }
        if self.heap.is_empty() && self.pending.is_none() && !self.finished {
            self.finish();
        }
    }

    /// Resumes the driver with the answer for the pending assignment:
    /// runs the fault branches, delivers to the server, settles payment,
    /// and schedules the worker's next turn.
    ///
    /// # Panics
    /// If no assignment is pending or `worker` is not its holder.
    pub fn submit_scheduled(
        &mut self,
        worker: usize,
        answer: Answer,
        server: &mut dyn ExternalQuestionServer,
    ) -> SubmitReport {
        let _tspan = icrowd_obs::TraceSpan::start("driver.submit");
        let p = self.pending.take().expect("no pending assignment");
        assert_eq!(p.worker, worker, "submission from the wrong worker");
        self.epoch += 1;
        let (wi, task, now) = (p.worker, p.task, p.at);
        self.states[wi].answered_total += 1;

        if self.plan.is_some() {
            // Stall: the worker sits on the assignment forever. No
            // further events for her; her lease expires server-side and
            // her HIT is abandoned at cleanup.
            if self.plan.as_mut().expect("checked").stall() {
                self.accounting.stalled += 1;
                fault_counter("fault.stall");
                self.events.push(MarketEvent::WorkerStalled {
                    at: now,
                    worker: self.states[wi].external_id.clone(),
                    task,
                });
                return SubmitReport::Stalled;
            }
            // Drop: the submission is lost in transit. The worker
            // notices nothing and re-requests next turn.
            if self.plan.as_mut().expect("checked").drop_answer() {
                self.accounting.answers_dropped += 1;
                fault_counter("fault.drop");
                let st = &mut self.states[wi];
                st.session.as_mut().expect("assigned").abort_task();
                let pace = st.script.ticks_per_answer;
                self.events.push(MarketEvent::AnswerDropped {
                    at: now,
                    worker: self.states[wi].external_id.clone(),
                    task,
                });
                self.push_turn(now.0 + pace, wi);
                return SubmitReport::Dropped;
            }
            // Late: the answer arrives `delay` ticks from now; the
            // worker's next turn follows the delivery.
            if let Some(delay) = self.plan.as_mut().expect("checked").late_delay() {
                fault_counter("fault.late");
                self.deliveries.push(Delivery { wi, task, answer });
                self.heap.push(Reverse((
                    now.0 + delay,
                    self.seq,
                    Pending::Deliver(self.deliveries.len() - 1),
                )));
                self.seq += 1;
                return SubmitReport::Deferred;
            }
        }

        let (accepted, outcome) = self.deliver(server, wi, task, answer, now);
        self.answers += accepted;
        let pace = self.states[wi].script.ticks_per_answer;
        self.push_turn(now.0 + pace, wi);
        SubmitReport::Delivered(outcome)
    }

    /// Delivers a submission that is *not* the pending scheduled one —
    /// a duplicate or unsolicited message arriving over the wire. The
    /// server validates it through the regular `submit_answer` path (a
    /// compliant server rejects it), and the accounting counts it so
    /// the conservation laws keep holding. Sessions, payments and the
    /// schedule are untouched, so the in-process parity is preserved:
    /// this path exists only for network clients misbehaving.
    pub fn submit_stray(
        &mut self,
        server: &mut dyn ExternalQuestionServer,
        external: &str,
        task: TaskId,
        answer: Answer,
    ) -> SubmitOutcome {
        let _tspan = icrowd_obs::TraceSpan::start("driver.submit_stray");
        let now = self.end;
        self.epoch += 1;
        self.accounting.answers_submitted += 1;
        self.events.push(MarketEvent::AnswerSubmitted {
            at: now,
            worker: external.to_owned(),
            task,
            answer,
        });
        match server.submit_answer(external, task, answer, now) {
            SubmitOutcome::Accepted => {
                // A compliant server never accepts a stray; if it does,
                // the acceptance has no session credit and `balanced()`
                // exposes the double-count at the end of the run.
                self.accounting.answers_accepted += 1;
                self.answers += 1;
                SubmitOutcome::Accepted
            }
            SubmitOutcome::Rejected(reason) => {
                self.accounting.answers_rejected += 1;
                self.events.push(MarketEvent::AnswerRejected {
                    at: now,
                    worker: external.to_owned(),
                    task,
                    reason,
                });
                SubmitOutcome::Rejected(reason)
            }
        }
    }

    /// Consumes the driver into the run's outcome.
    ///
    /// # Panics
    /// If the run has not finished (the final sweep has not run).
    pub fn into_outcome(self) -> MarketOutcome {
        assert!(self.finished, "into_outcome() before the run finished");
        let faults = self.plan.as_ref().map(FaultPlan::stats).unwrap_or_default();
        MarketOutcome {
            ledger: self.ledger,
            events: self.events,
            end: self.end,
            answers: self.answers,
            accounting: self.accounting,
            faults,
        }
    }

    /// Forces the end-of-run sweep even with turns still queued — the
    /// serving layer's drain path when shut down mid-campaign. Open
    /// sessions are settled (finished HITs paid, partial ones abandoned)
    /// and the event log is exported, so accounting balances.
    pub fn finish_now(&mut self) {
        self.pending = None;
        self.heap.clear();
        if !self.finished {
            self.finish();
        }
    }

    // -- internals ----------------------------------------------------

    fn push_turn(&mut self, tick: u64, wi: usize) {
        self.heap.push(Reverse((tick, self.seq, Pending::Turn(wi))));
        self.seq += 1;
    }

    /// Executes one popped heap entry. Returns `None` for deliveries
    /// (schedule keeps moving) and the worker-visible outcome for turns.
    /// An `Assigned` return means the driver is now suspended.
    fn run_entry(
        &mut self,
        server: &mut dyn ExternalQuestionServer,
        tick: u64,
        pending: Pending,
    ) -> Option<PollOutcome> {
        let now = Tick(tick);
        self.epoch += 1;
        self.end = self.end.max(now);

        // A late answer reaches the server. The session has been
        // `Working` since assignment (no turn is queued while a
        // delivery is in flight), so this is delivered even after
        // campaign completion — the server rejects it as stale.
        if let Pending::Deliver(di) = pending {
            let Delivery { wi, task, answer } = self.deliveries[di];
            let (accepted, _) = self.deliver(server, wi, task, answer, now);
            self.answers += accepted;
            let pace = self.states[wi].script.ticks_per_answer;
            self.push_turn(now.0 + pace, wi);
            return None;
        }
        let Pending::Turn(wi) = pending else {
            unreachable!()
        };

        // Campaign over: close out any open session and drop the worker.
        if server.is_complete() {
            self.leave(wi, now);
            return Some(PollOutcome::Left);
        }

        // Churn spike: the worker rolls against every spike whose tick
        // has passed since her last turn, and departs on the first hit.
        if let Some(p) = self.plan.as_mut() {
            let st = &mut self.states[wi];
            let mut departed = false;
            while st.churn_idx < p.num_spikes() && now.0 >= p.spike_at(st.churn_idx) {
                let hit = p.churn_hits(st.churn_idx);
                st.churn_idx += 1;
                if hit {
                    departed = true;
                    break;
                }
            }
            if departed {
                self.accounting.churned += 1;
                fault_counter("fault.churn");
                self.events.push(MarketEvent::WorkerChurned {
                    at: now,
                    worker: self.states[wi].external_id.clone(),
                });
                self.leave(wi, now);
                return Some(PollOutcome::Left);
            }
        }

        // Worker exhausted her budget: leave.
        if self.states[wi].answered_total >= self.states[wi].script.max_answers {
            self.leave(wi, now);
            return Some(PollOutcome::Left);
        }

        // Ensure the worker holds a HIT.
        if self.states[wi].session.is_none() {
            match self.pool.accept_any() {
                Some(hit) => {
                    let st = &mut self.states[wi];
                    st.session = Some(WorkerSession::open(st.external_id.clone(), hit, now));
                    self.events.push(MarketEvent::HitAccepted {
                        at: now,
                        worker: st.external_id.clone(),
                        hit,
                    });
                }
                None => return Some(PollOutcome::Left), // marketplace sold out
            }
        }

        // Request a microtask.
        match server.request_task(&self.states[wi].external_id, now) {
            Some(task) => {
                let st = &mut self.states[wi];
                st.declines = 0;
                self.events.push(MarketEvent::TaskAssigned {
                    at: now,
                    worker: st.external_id.clone(),
                    task,
                });
                // Re-requesting a dropped answer's task re-issues the
                // same in-flight assignment; the session is already
                // `Ready` after the abort, so `assign` is safe.
                st.session
                    .as_mut()
                    .expect("session ensured above")
                    .assign(task);
                self.pending = Some(PendingAssignment {
                    worker: wi,
                    task,
                    at: now,
                });
                Some(PollOutcome::Assigned(task))
            }
            None => {
                let st = &mut self.states[wi];
                self.events.push(MarketEvent::RequestDeclined {
                    at: now,
                    worker: st.external_id.clone(),
                });
                st.declines += 1;
                if st.declines <= self.config.max_retries {
                    let backoff = self.config.retry_backoff;
                    self.push_turn(now.0 + backoff, wi);
                    Some(PollOutcome::Declined { retry: true })
                } else {
                    self.leave(wi, now);
                    Some(PollOutcome::Declined { retry: false })
                }
            }
        }
    }

    /// Delivers one answer to the server and settles the outcome:
    /// accepted answers credit the session (and may complete the HIT),
    /// rejected answers abort the in-flight task without credit.
    /// Returns `(answers accepted, server verdict)`.
    fn deliver(
        &mut self,
        server: &mut dyn ExternalQuestionServer,
        wi: usize,
        task: TaskId,
        answer: Answer,
        now: Tick,
    ) -> (usize, SubmitOutcome) {
        let external = self.states[wi].external_id.clone();
        self.accounting.answers_submitted += 1;
        self.events.push(MarketEvent::AnswerSubmitted {
            at: now,
            worker: external.clone(),
            task,
            answer,
        });
        match server.submit_answer(&external, task, answer, now) {
            SubmitOutcome::Accepted => {
                let st = &mut self.states[wi];
                st.session
                    .as_mut()
                    .expect("delivery requires a session")
                    .complete_task();
                self.accounting.answers_accepted += 1;

                // Duplicate: the same accepted answer is delivered again.
                // A compliant server refuses the copy; if it accepts, the
                // extra acceptance has no session credit and `balanced()`
                // exposes the double-count.
                if let Some(p) = self.plan.as_mut() {
                    if p.duplicate() {
                        fault_counter("fault.dup");
                        self.accounting.answers_submitted += 1;
                        self.events.push(MarketEvent::AnswerSubmitted {
                            at: now,
                            worker: external.clone(),
                            task,
                            answer,
                        });
                        match server.submit_answer(&external, task, answer, now) {
                            SubmitOutcome::Accepted => self.accounting.answers_accepted += 1,
                            SubmitOutcome::Rejected(reason) => {
                                self.accounting.answers_rejected += 1;
                                self.events.push(MarketEvent::AnswerRejected {
                                    at: now,
                                    worker: external.clone(),
                                    task,
                                    reason,
                                });
                            }
                        }
                    }
                }

                // HIT complete → pay and release the session.
                let st = &mut self.states[wi];
                let session = st.session.as_mut().expect("session still open");
                if session.hit_finished(self.config.tasks_per_hit) {
                    let hit = session.hit;
                    self.accounting.answers_paid += session.answered as u64;
                    session.close();
                    st.session = None;
                    self.ledger.pay(&external, hit, self.config.reward_cents);
                    self.events.push(MarketEvent::HitSubmitted {
                        at: now,
                        worker: external,
                        hit,
                        reward_cents: self.config.reward_cents,
                    });
                }
                (1, SubmitOutcome::Accepted)
            }
            SubmitOutcome::Rejected(reason) => {
                self.states[wi]
                    .session
                    .as_mut()
                    .expect("delivery requires a session")
                    .abort_task();
                self.accounting.answers_rejected += 1;
                self.events.push(MarketEvent::AnswerRejected {
                    at: now,
                    worker: external,
                    task,
                    reason,
                });
                (0, SubmitOutcome::Rejected(reason))
            }
        }
    }

    /// Closes a worker's open session: pays a finished HIT, abandons a
    /// partial one (returning the slot to the pool).
    fn leave(&mut self, wi: usize, now: Tick) {
        let st = &mut self.states[wi];
        let Some(mut session) = st.session.take() else {
            return;
        };
        let hit = session.hit;
        if session.hit_finished(self.config.tasks_per_hit) {
            self.accounting.answers_paid += session.answered as u64;
            self.ledger
                .pay(&st.external_id, hit, self.config.reward_cents);
            self.events.push(MarketEvent::HitSubmitted {
                at: now,
                worker: st.external_id.clone(),
                hit,
                reward_cents: self.config.reward_cents,
            });
        } else {
            self.accounting.answers_abandoned += session.answered as u64;
            self.pool.release(hit);
            self.events.push(MarketEvent::HitAbandoned {
                at: now,
                worker: st.external_id.clone(),
                hit,
                answered: session.answered,
            });
        }
        session.close();
    }

    /// Close any sessions still open when events ran out (including
    /// stalled workers, whose sessions are still `Working`).
    fn finish(&mut self) {
        self.epoch += 1;
        let final_tick = self.end;
        for wi in 0..self.states.len() {
            self.leave(wi, final_tick);
        }
        self.events.export_to_obs();
        self.finished = true;
    }
}
