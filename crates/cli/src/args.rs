//! A tiny `--flag value` argument parser — enough for the CLI's needs
//! without pulling a dependency into the workspace.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs.
    options: HashMap<String, String>,
    /// Bare `--flags` with no value.
    flags: Vec<String>,
    /// Positional arguments after the subcommand (e.g. the file
    /// operands of `icrowd obs report <file>`). Commands that take
    /// none reject leftovers via [`Args::expect_no_positionals`].
    positionals: Vec<String>,
}

/// CLI-level errors with user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    /// Rejects empty input and a leading `--option` without a
    /// subcommand. Positional arguments are collected; commands that
    /// take none reject them via [`Args::expect_no_positionals`].
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, CliError> {
        let mut iter = raw.into_iter().peekable();
        let command = iter
            .next()
            .filter(|c| !c.starts_with("--"))
            .ok_or_else(|| CliError("expected a subcommand; try `icrowd help`".into()))?;
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                positionals.push(arg);
                continue;
            };
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    options.insert(key.to_owned(), iter.next().expect("peeked"));
                }
                _ => flags.push(key.to_owned()),
            }
        }
        Ok(Self {
            command,
            options,
            flags,
            positionals,
        })
    }

    /// The value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// The value of `--key` or a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A parsed numeric option.
    ///
    /// # Errors
    /// Reports the offending key and value.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("invalid value `{v}` for --{key}"))),
        }
    }

    /// Whether a bare `--flag` was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The positional arguments after the subcommand.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Fails if any positional arguments were passed — the guard for
    /// commands whose grammar is purely `--key value`.
    ///
    /// # Errors
    /// Reports the first stray argument.
    pub fn expect_no_positionals(&self) -> Result<(), CliError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(arg) => Err(CliError(format!("unexpected positional argument `{arg}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, CliError> {
        Args::parse(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("campaign --dataset yahooqa --seed 7 --json").unwrap();
        assert_eq!(a.command, "campaign");
        assert_eq!(a.get("dataset"), Some("yahooqa"));
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 7);
        assert!(a.has_flag("json"));
        assert!(!a.has_flag("quiet"));
        assert_eq!(a.get_or("approach", "icrowd"), "icrowd");
    }

    #[test]
    fn rejects_missing_subcommand_and_positional_noise() {
        assert!(parse("").is_err());
        assert!(parse("--dataset yahooqa").is_err());
        // Positionals parse, but a no-positional grammar rejects them.
        let a = parse("campaign stray").unwrap();
        assert_eq!(a.positionals(), ["stray"]);
        assert!(a.expect_no_positionals().is_err());
        assert!(parse("campaign --seed 7")
            .unwrap()
            .expect_no_positionals()
            .is_ok());
    }

    #[test]
    fn positionals_interleave_with_options() {
        let a = parse("obs diff base.jsonl new.jsonl --assert --max-p99-regress 0.2").unwrap();
        assert_eq!(a.command, "obs");
        assert_eq!(a.positionals(), ["diff", "base.jsonl", "new.jsonl"]);
        assert!(a.has_flag("assert"));
        assert_eq!(a.get("max-p99-regress"), Some("0.2"));
    }

    #[test]
    fn invalid_numbers_are_reported() {
        let a = parse("campaign --seed banana").unwrap();
        let err = a.get_parsed("seed", 0u64).unwrap_err();
        assert!(err.0.contains("banana"));
    }
}
