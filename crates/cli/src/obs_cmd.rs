//! `icrowd obs report|diff` — the telemetry JSONL analyzer and the CI
//! latency-regression gate.
//!
//! Both subcommands read files written by `--telemetry <path>` (or the
//! `--metrics-out` window stream). Quantiles are **recomputed from the
//! exported histogram buckets** (`{"type":"hist",...}` lines) via
//! [`LogHistogram::from_parts`], not read off the pre-rendered span
//! summaries — so a diff compares the actual mergeable series two runs
//! recorded, at the same ≤1% error bound the live registry reports.
//! Files without `hist` lines (older exports) fall back to the span
//! lines' p50/p99.
//!
//! `report` summarizes one file: spans (count/p50/p99), the BUSY rate
//! (`loadgen.busy` over client-side request attempts), counters and
//! gauges. `--json` emits the same numbers machine-readable — the
//! BENCH_serve.json rows come from there.
//!
//! `diff` compares two files span-by-span and emits a machine-readable
//! verdict: any span (≥ `--min-count` samples in both files, optionally
//! filtered by `--span <prefix>`) whose p99 grew more than
//! `--max-p99-regress` (default 0.25 = +25%) or whose p50 grew more
//! than `--max-p50-regress` (default 0.5) is a regression. With
//! `--assert` a failed verdict becomes a CLI error (nonzero exit) —
//! that is the CI gate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use icrowd_obs::LogHistogram;
use serde_json::Value;

use crate::args::{Args, CliError};

/// One file's parsed telemetry.
#[derive(Default)]
struct Telemetry {
    /// Span summaries as exported: `(count, total_ns, p50_ns, p99_ns)`.
    spans: BTreeMap<String, (u64, u64, u64, u64)>,
    /// Reconstructed histograms (the preferred quantile source).
    hists: BTreeMap<String, LogHistogram>,
    counters: BTreeMap<String, u64>,
    /// Gauges as `(last, min, max)`.
    gauges: BTreeMap<String, (f64, f64, f64)>,
    /// Trace events seen (count only; the tree itself is for humans).
    traces: u64,
}

impl Telemetry {
    /// Loads a telemetry JSONL file, ignoring record types it does not
    /// know (events, windows) so the analyzer keeps working as the
    /// export grows.
    fn load(path: &str) -> Result<Telemetry, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("cannot read telemetry `{path}`: {e}")))?;
        let mut t = Telemetry::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(line)
                .map_err(|_| CliError(format!("`{path}` line {}: not valid JSON", i + 1)))?;
            let name = || {
                v.get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_owned()
            };
            let num = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
            let f = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            match v.get("type").and_then(Value::as_str) {
                Some("span") => {
                    t.spans.insert(
                        name(),
                        (num("count"), num("total_ns"), num("p50_ns"), num("p99_ns")),
                    );
                }
                Some("hist") => {
                    let buckets = v
                        .get("buckets")
                        .and_then(Value::as_array)
                        .map(|rows| {
                            rows.iter()
                                .filter_map(|row| {
                                    let pair = row.as_array()?;
                                    Some((pair.first()?.as_u64()? as u16, pair.get(1)?.as_u64()?))
                                })
                                .collect::<Vec<_>>()
                        })
                        .unwrap_or_default();
                    t.hists.insert(
                        name(),
                        LogHistogram::from_parts(num("min"), num("max"), num("sum"), buckets),
                    );
                }
                Some("counter") => {
                    t.counters.insert(name(), num("value"));
                }
                Some("gauge") => {
                    t.gauges.insert(name(), (f("value"), f("min"), f("max")));
                }
                Some("trace") => t.traces += 1,
                _ => {}
            }
        }
        Ok(t)
    }

    /// The quantile source for `name`: the reconstructed histogram when
    /// present, else the exported span summary.
    fn quantiles(&self, name: &str) -> Option<(u64, u64, u64)> {
        if let Some(h) = self.hists.get(name) {
            if !h.is_empty() {
                return Some((h.count(), h.percentile(0.50), h.percentile(0.99)));
            }
        }
        self.spans
            .get(name)
            .map(|&(count, _, p50, p99)| (count, p50, p99))
    }

    /// Every span name with a quantile source, in name order.
    fn span_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.spans.keys().cloned().collect();
        for k in self.hists.keys() {
            if !self.spans.contains_key(k) {
                names.push(k.clone());
            }
        }
        names.sort();
        names
    }

    /// BUSY back-pressure rate: `loadgen.busy` responses over all
    /// client-side request attempts (successful + retry series). `None`
    /// when the file has no client-side series at all.
    fn busy_rate(&self) -> Option<f64> {
        let attempts: u64 = [
            "loadgen.request",
            "loadgen.request.retry",
            "loadgen.submit",
            "loadgen.submit.retry",
        ]
        .iter()
        .filter_map(|n| self.quantiles(n).map(|(c, _, _)| c))
        .sum();
        if attempts == 0 {
            return None;
        }
        let busy = self.counters.get("loadgen.busy").copied().unwrap_or(0);
        Some(busy as f64 / attempts as f64)
    }
}

/// Dispatches `icrowd obs <report|diff> ...`.
///
/// # Errors
/// Missing operands, unreadable files, and (under `--assert`) a failed
/// regression verdict.
pub fn obs_cmd(args: &Args) -> Result<String, CliError> {
    match args.positionals() {
        [] => Err(CliError(
            "obs requires a subcommand: `obs report <file>` or `obs diff <baseline> <current>`"
                .into(),
        )),
        [sub, rest @ ..] => match (sub.as_str(), rest) {
            ("report", [file]) => report(args, file),
            ("report", _) => Err(CliError("obs report takes exactly one file".into())),
            ("diff", [base, new]) => diff(args, base, new),
            ("diff", _) => Err(CliError(
                "obs diff takes exactly two files: <baseline> <current>".into(),
            )),
            (other, _) => Err(CliError(format!(
                "unknown obs subcommand `{other}` (try report or diff)"
            ))),
        },
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn report(args: &Args, path: &str) -> Result<String, CliError> {
    let t = Telemetry::load(path)?;
    if args.has_flag("json") {
        let spans: Vec<Value> = t
            .span_names()
            .iter()
            .filter_map(|n| {
                let (count, p50, p99) = t.quantiles(n)?;
                Some(serde_json::json!({
                    "name": n,
                    "count": count,
                    "p50_us": us(p50),
                    "p99_us": us(p99),
                }))
            })
            .collect();
        let counters: Vec<Value> = t
            .counters
            .iter()
            .map(|(n, v)| serde_json::json!({"name": n, "value": v}))
            .collect();
        let mut v = serde_json::json!({
            "file": path,
            "spans": spans,
            "counters": counters,
            "traces": t.traces,
        });
        if let (Some(rate), Value::Object(o)) = (t.busy_rate(), &mut v) {
            o.push(("busy_rate".into(), serde_json::json!(rate)));
        }
        return serde_json::to_string_pretty(&v)
            .map(|s| s + "\n")
            .map_err(|e| CliError(format!("cannot serialize report: {e}")));
    }

    let mut out = String::new();
    writeln!(out, "telemetry report: {path}").unwrap();
    writeln!(
        out,
        "{:<28} {:>9} {:>12} {:>12}",
        "span", "count", "p50_us", "p99_us"
    )
    .unwrap();
    for n in t.span_names() {
        let Some((count, p50, p99)) = t.quantiles(&n) else {
            continue;
        };
        writeln!(
            out,
            "{n:<28} {count:>9} {:>12.1} {:>12.1}",
            us(p50),
            us(p99)
        )
        .unwrap();
    }
    if let Some(rate) = t.busy_rate() {
        writeln!(out, "busy rate: {:.4} of client request attempts", rate).unwrap();
    }
    if !t.counters.is_empty() {
        writeln!(out, "{:<28} {:>12}", "counter", "value").unwrap();
        for (n, v) in &t.counters {
            writeln!(out, "{n:<28} {v:>12}").unwrap();
        }
    }
    if !t.gauges.is_empty() {
        writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>12}",
            "gauge", "last", "min", "max"
        )
        .unwrap();
        for (n, (last, min, max)) in &t.gauges {
            writeln!(out, "{n:<28} {last:>12.3} {min:>12.3} {max:>12.3}").unwrap();
        }
    }
    if t.traces > 0 {
        writeln!(out, "trace spans: {}", t.traces).unwrap();
    }
    Ok(out)
}

fn diff(args: &Args, base_path: &str, new_path: &str) -> Result<String, CliError> {
    let base = Telemetry::load(base_path)?;
    let new = Telemetry::load(new_path)?;
    let max_p99 = args.get_parsed("max-p99-regress", 0.25f64)?;
    let max_p50 = args.get_parsed("max-p50-regress", 0.50f64)?;
    let min_count = args.get_parsed("min-count", 50u64)?;
    let prefix = args.get("span");

    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for name in new.span_names() {
        if let Some(p) = prefix {
            if !name.starts_with(p) {
                continue;
            }
        }
        let (Some((bc, bp50, bp99)), Some((nc, np50, np99))) =
            (base.quantiles(&name), new.quantiles(&name))
        else {
            continue;
        };
        if bc < min_count || nc < min_count {
            continue;
        }
        // Relative growth; sub-microsecond baselines are floored so a
        // 100ns→300ns jitter on a trivial span cannot fail a build.
        let growth = |b: u64, n: u64| (n as f64 - b as f64) / (b.max(1_000) as f64);
        let (g50, g99) = (growth(bp50, np50), growth(bp99, np99));
        for (metric, b, n, g, cap) in [
            ("p50", bp50, np50, g50, max_p50),
            ("p99", bp99, np99, g99, max_p99),
        ] {
            if g > cap {
                regressions.push(serde_json::json!({
                    "span": name,
                    "metric": metric,
                    "baseline_us": us(b),
                    "current_us": us(n),
                    "regress": g,
                    "max_allowed": cap,
                }));
            }
        }
        rows.push((name.clone(), bc, nc, bp50, np50, g50, bp99, np99, g99));
    }

    let verdict = if regressions.is_empty() {
        "pass"
    } else {
        "fail"
    };
    let verdict_json = serde_json::to_string_pretty(&serde_json::json!({
        "verdict": verdict,
        "baseline": base_path,
        "current": new_path,
        "max_p50_regress": max_p50,
        "max_p99_regress": max_p99,
        "min_count": min_count,
        "spans_compared": rows.len(),
        "regressions": regressions,
    }))
    .map_err(|e| CliError(format!("cannot serialize verdict: {e}")))?;

    if args.has_flag("json") {
        if verdict == "fail" && args.has_flag("assert") {
            return Err(CliError(verdict_json));
        }
        return Ok(verdict_json + "\n");
    }

    let mut out = String::new();
    writeln!(out, "obs diff: {base_path} -> {new_path}").unwrap();
    writeln!(
        out,
        "{:<28} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "span", "p50_us", "p50'_us", "Δp50", "p99_us", "p99'_us", "Δp99"
    )
    .unwrap();
    for (name, _, _, bp50, np50, g50, bp99, np99, g99) in &rows {
        writeln!(
            out,
            "{name:<28} {:>10.1} {:>10.1} {:>+7.1}% {:>10.1} {:>10.1} {:>+7.1}%",
            us(*bp50),
            us(*np50),
            g50 * 100.0,
            us(*bp99),
            us(*np99),
            g99 * 100.0,
        )
        .unwrap();
    }
    writeln!(
        out,
        "verdict: {verdict} ({} spans compared, {} regressions)",
        rows.len(),
        regressions.len()
    )
    .unwrap();
    out.push_str(&verdict_json);
    out.push('\n');
    if verdict == "fail" && args.has_flag("assert") {
        return Err(CliError(out));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(str::to_owned)).unwrap()
    }

    fn write_telemetry(tag: &str, p50_target_ns: u64, samples: u64) -> String {
        icrowd_obs::reset();
        icrowd_obs::enable();
        for i in 0..samples {
            // A spread around the target so p50 ≈ target and p99 is
            // deterministically above it.
            icrowd_obs::record_span_ns("loadgen.request", p50_target_ns + i * 10);
            icrowd_obs::record_span_ns("serve.request", p50_target_ns / 2 + i * 10);
        }
        icrowd_obs::counter_add("loadgen.busy", samples / 10);
        icrowd_obs::disable();
        let path =
            std::env::temp_dir().join(format!("icrowd_obs_cmd_{tag}_{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap().to_owned();
        icrowd_obs::write_jsonl(&path).unwrap();
        icrowd_obs::reset();
        path
    }

    #[test]
    fn report_recomputes_quantiles_from_histograms() {
        let _g = crate::obs_test_guard();
        let path = write_telemetry("report", 100_000, 200);
        let out = obs_cmd(&args(&format!("obs report {path}"))).unwrap();
        assert!(out.contains("loadgen.request"), "{out}");
        assert!(out.contains("busy rate"), "{out}");

        let json = obs_cmd(&args(&format!("obs report {path} --json"))).unwrap();
        let v: Value = serde_json::from_str(&json).unwrap();
        let spans = v["spans"].as_array().unwrap();
        let req = spans
            .iter()
            .find(|s| s["name"] == "loadgen.request")
            .unwrap();
        assert_eq!(req["count"].as_u64(), Some(200));
        // Samples are 100_000..102_000 ns → p50 ≈ 101 µs within 1%.
        let p50 = req["p50_us"].as_f64().unwrap();
        assert!((p50 - 101.0).abs() <= 2.0, "p50 {p50}");
        // busy = 20 / (200 request attempts) = 0.1.
        let rate = v["busy_rate"].as_f64().unwrap();
        assert!((rate - 0.1).abs() < 1e-9, "rate {rate}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn diff_passes_like_runs_and_fails_regressions() {
        let _g = crate::obs_test_guard();
        let base = write_telemetry("diff_base", 100_000, 200);
        let same = write_telemetry("diff_same", 100_000, 200);
        let slow = write_telemetry("diff_slow", 200_000, 200);

        let out = obs_cmd(&args(&format!("obs diff {base} {same}"))).unwrap();
        assert!(out.contains("\"verdict\": \"pass\""), "{out}");

        // +100% p50/p99 against a 25%/50% budget: fail, and --assert
        // turns the fail into a CLI error.
        let out = obs_cmd(&args(&format!("obs diff {base} {slow}"))).unwrap();
        assert!(out.contains("\"verdict\": \"fail\""), "{out}");
        assert!(out.contains("loadgen.request"), "{out}");
        let err = obs_cmd(&args(&format!("obs diff {base} {slow} --assert"))).unwrap_err();
        assert!(err.0.contains("fail"), "{}", err.0);

        // A generous budget lets the same pair pass.
        let out = obs_cmd(&args(&format!(
            "obs diff {base} {slow} --max-p99-regress 5 --max-p50-regress 5"
        )))
        .unwrap();
        assert!(out.contains("\"verdict\": \"pass\""), "{out}");

        // --span filters the comparison; --min-count excludes thin data.
        let out = obs_cmd(&args(&format!("obs diff {base} {slow} --span serve."))).unwrap();
        assert!(!out.contains("loadgen.request"), "{out}");
        let out = obs_cmd(&args(&format!("obs diff {base} {slow} --min-count 1000"))).unwrap();
        assert!(out.contains("0 spans compared"), "{out}");

        for p in [base, same, slow] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn obs_usage_errors_are_user_facing() {
        assert!(obs_cmd(&args("obs")).unwrap_err().0.contains("report"));
        assert!(obs_cmd(&args("obs report"))
            .unwrap_err()
            .0
            .contains("one file"));
        assert!(obs_cmd(&args("obs diff one.jsonl"))
            .unwrap_err()
            .0
            .contains("two files"));
        assert!(obs_cmd(&args("obs explode x"))
            .unwrap_err()
            .0
            .contains("unknown obs subcommand"));
        assert!(obs_cmd(&args("obs report /nonexistent/telemetry.jsonl"))
            .unwrap_err()
            .0
            .contains("cannot read"));
    }
}
