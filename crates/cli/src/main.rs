//! The `icrowd` command-line tool. See `icrowd help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match icrowd_cli::Args::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut notify = |line: &str| {
        use std::io::Write as _;
        println!("{line}");
        std::io::stdout().flush().ok();
    };
    match icrowd_cli::run_with(&parsed, &mut notify) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
