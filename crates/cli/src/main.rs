//! The `icrowd` command-line tool. See `icrowd help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match icrowd_cli::Args::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match icrowd_cli::run(&parsed) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
