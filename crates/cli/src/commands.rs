//! The CLI subcommands.

use std::fmt::Write as _;

use icrowd::AssignStrategy;
use icrowd_core::config::ICrowdConfig;
use icrowd_graph::GraphBuilder;
use icrowd_serve::{run_loadgen, CampaignEngine, ClientFaultConfig, LoadgenConfig, ServeConfig};
use icrowd_sim::campaign::{
    labels_lines, run_campaign, Approach, CampaignConfig, CampaignResult, MetricChoice,
    QualStrategy,
};
use icrowd_sim::datasets::{by_name, Dataset};

use crate::args::{Args, CliError};

/// Dispatches a parsed command line, returning the text to print.
/// Progress lines emitted mid-command (the `serve` listening banner)
/// are dropped; use [`run_with`] to receive them.
///
/// # Errors
/// Unknown subcommands, datasets, approaches or bad option values.
pub fn run(args: &Args) -> Result<String, CliError> {
    run_with(args, &mut |_| {})
}

/// Like [`run`], but streams progress lines through `notify` as they
/// happen. Long-running commands use this for output that must appear
/// before they return — `serve` announces its bound address so scripts
/// can discover an ephemeral port before the command blocks in the
/// drain. The binary prints and flushes each line; the library itself
/// never writes to stdout.
///
/// # Errors
/// Unknown subcommands, datasets, approaches or bad option values.
pub fn run_with(args: &Args, notify: &mut dyn FnMut(&str)) -> Result<String, CliError> {
    // `obs` takes positional operands (subcommand + files); every other
    // grammar is purely `--key value`.
    if args.command != "obs" {
        args.expect_no_positionals()?;
    }
    match args.command.as_str() {
        "help" => Ok(help_text()),
        "datasets" => datasets_cmd(),
        "campaign" => campaign_cmd(args),
        "compare" => compare_cmd(args),
        "graph" => graph_cmd(args),
        "quals" => quals_cmd(args),
        "serve" => serve_cmd(args, notify),
        "loadgen" => loadgen_cmd(args),
        "obs" => crate::obs_cmd::obs_cmd(args),
        other => Err(CliError(format!(
            "unknown subcommand `{other}`; try `icrowd help`"
        ))),
    }
}

fn help_text() -> String {
    "icrowd — adaptive crowdsourcing campaigns (SIGMOD 2015 reproduction)

USAGE:
    icrowd datasets
    icrowd campaign --dataset <name> [--approach <a>] [--seed N] [--k N] [--faults <spec>] [--json] [--telemetry <path>]
    icrowd compare  --dataset <name> [--seed N] [--faults <spec>] [--telemetry <path>]
    icrowd graph    --dataset <name> [--metric <m>] [--threshold X]
    icrowd quals    --dataset <name> [--q N] [--strategy inf|random]
    icrowd serve    --dataset <name> [--approach <a>] [--addr H:P] [--handlers N]
                    [--queue N] [--seed N] [--faults <spec>] [--labels-out <path>]
                    [--journal <path> | --recover <path>] [--fsync N]
                    [--snapshot-every N] [--idle-timeout-ms T] [--telemetry <path>]
                    [--metrics-every MS] [--metrics-out <path>]
    icrowd loadgen  (--addr H:P | --addr-file <path>) [--workers N] [--think-ms T]
                    [--give-up-ms T] [--faults dup=R,late=R:MS,seed=N]
                    [--labels-out <path>] [--no-shutdown] [--telemetry <path>]
    icrowd obs report <telemetry.jsonl> [--json]
    icrowd obs diff <baseline.jsonl> <current.jsonl> [--assert] [--json]
                    [--max-p99-regress R] [--max-p50-regress R]
                    [--min-count N] [--span <prefix>]

DATASETS:    yahooqa, item_compare, table1, quiz
APPROACHES:  icrowd (Adapt), best-effort, qf-only, random-mv, random-em, avgacc-pv
METRICS:     jaccard, cos-tfidf, cos-topic, edit-distance

FAULTS:      --faults injects marketplace faults, e.g.
             drop=0.2,stall=0.05,dup=0.1,late=0.1:12,churn=50:0.3,seed=7
             (drop/dup/stall are rates; late takes an optional :maxticks;
             churn=TICK:FRACTION may repeat). Runs stay deterministic
             under a fixed seed; rejected/duplicate answers are counted
             and never double-paid.

TELEMETRY:   --telemetry <path> records span timings (index.build, ppr.solve,
             assign.loop, estimator.refresh, ...), counters and marketplace
             events during the run and writes them to <path> as JSON lines.
             Every p50/p99 comes from deterministic log-bucketed histograms
             (≤1% relative error) exported alongside the span summaries, so
             `icrowd obs report` and `icrowd obs diff` can recompute and
             compare quantiles offline; `obs diff --assert` exits nonzero on
             regression (the CI latency gate). A telemetry-armed `serve` +
             `loadgen` pair also records a causally linked trace-span tree
             per request (loadgen stamps trace ids; serve propagates them
             engine -> driver -> journal).

LIVE METRICS: `icrowd serve --metrics-every MS [--metrics-out <path>]` emits
             a windowed snapshot (counter deltas, windowed histograms, gauge
             min/max/last) as one JSON line per window. The METRICS protocol
             verb scrapes the same windows on demand over the wire.

SERVING:     `icrowd serve` hosts one campaign behind a line-delimited JSON
             TCP protocol (HELLO/REQUEST_TASK/SUBMIT_ANSWER/STATUS/RESULTS/
             SHUTDOWN) and drains gracefully on SHUTDOWN. `icrowd loadgen`
             drives it with N concurrent simulated workers and reports
             throughput + p50/p99 latency. At the same seed, the served
             campaign's consensus labels are byte-identical to the
             in-process `icrowd campaign` run (compare via --labels-out).

DURABILITY:  --journal <path> appends every accepted state transition to a
             crash-consistent write-ahead journal (CRC32-framed records;
             --fsync N batches fsyncs, 1 = every record, 0 = never;
             --snapshot-every N interleaves verification snapshots and
             compacts the file). After a crash, --recover <path> replays
             the journal through a fresh campaign, verifies snapshots and
             the accounting conservation laws, truncates any torn tail,
             and resumes serving — consensus stays byte-identical to an
             uninterrupted run. `icrowd loadgen --addr-file` re-reads the
             server address before every connection, so clients follow a
             restarted server to its new port and re-submit idempotently.
"
    .to_owned()
}

fn dataset_by_name(name: &str, seed: u64) -> Result<Dataset, CliError> {
    by_name(name, seed).ok_or_else(|| {
        CliError(format!(
            "unknown dataset `{name}` (try: yahooqa, item_compare, table1, quiz)"
        ))
    })
}

/// Writes consensus labels to `--labels-out` when requested.
fn write_labels(args: &Args, labels: &str) -> Result<(), CliError> {
    let Some(path) = args.get("labels-out") else {
        return Ok(());
    };
    std::fs::write(path, labels)
        .map_err(|e| CliError(format!("cannot write labels to `{path}`: {e}")))
}

fn approach_by_name(name: &str) -> Result<Approach, CliError> {
    match name {
        "icrowd" | "adapt" => Ok(Approach::ICrowd(AssignStrategy::Adapt)),
        "best-effort" | "besteffort" => Ok(Approach::ICrowd(AssignStrategy::BestEffort)),
        "qf-only" | "qfonly" => Ok(Approach::ICrowd(AssignStrategy::QfOnly)),
        "random-mv" | "randommv" => Ok(Approach::RandomMV),
        "random-em" | "randomem" => Ok(Approach::RandomEM),
        "avgacc-pv" | "avgaccpv" => Ok(Approach::AvgAccPV),
        other => Err(CliError(format!("unknown approach `{other}`"))),
    }
}

fn metric_by_name(name: &str) -> Result<MetricChoice, CliError> {
    match name {
        "jaccard" => Ok(MetricChoice::Jaccard),
        "cos-tfidf" | "tfidf" => Ok(MetricChoice::CosTfIdf),
        "cos-topic" | "topic" => Ok(MetricChoice::CosTopic { num_topics: 8 }),
        "edit-distance" | "edit" => Ok(MetricChoice::EditDistance),
        other => Err(CliError(format!("unknown metric `{other}`"))),
    }
}

/// Default metric per dataset: short product-ish texts work better with
/// lexical metrics than topic models.
fn default_metric(dataset: &str) -> &'static str {
    match dataset {
        "table1" => "jaccard",
        _ => "cos-topic",
    }
}

fn campaign_config(args: &Args, dataset: &str) -> Result<CampaignConfig, CliError> {
    let seed = args.get_parsed("seed", 42u64)?;
    let k = args.get_parsed("k", 3usize)?;
    let threshold = args.get_parsed("threshold", 0.8f64)?;
    let q = args.get_parsed("q", 10usize)?;
    let metric = metric_by_name(args.get_or("metric", default_metric(dataset)))?;
    let qual = match args.get_or("strategy", "inf") {
        "inf" | "influence" => QualStrategy::Influence,
        "random" => QualStrategy::Random,
        other => {
            return Err(CliError(format!(
                "unknown qualification strategy `{other}`"
            )))
        }
    };
    let mut icrowd = ICrowdConfig {
        assignment_size: k,
        similarity_threshold: threshold,
        ..Default::default()
    };
    icrowd.warmup.num_qualification = q;
    icrowd
        .validate()
        .map_err(|e| CliError(format!("invalid configuration: {e}")))?;
    let faults = args
        .get("faults")
        .map(|spec| {
            icrowd::platform::FaultConfig::parse(spec)
                .map_err(|e| CliError(format!("invalid --faults spec: {e}")))
        })
        .transpose()?;
    Ok(CampaignConfig {
        seed,
        icrowd,
        metric,
        qual,
        faults,
        ..Default::default()
    })
}

/// Arms the telemetry sink when `--telemetry <path>` is present,
/// returning the export path. The registry is cleared first so the
/// export covers exactly this invocation.
fn telemetry_begin(args: &Args) -> Option<&str> {
    let path = args.get("telemetry");
    if path.is_some() {
        icrowd_obs::reset();
        icrowd_obs::enable();
    }
    path
}

/// Writes the JSONL export (if armed) and, when `out` is given (i.e.
/// the command prints human-readable text, not JSON), appends the
/// summary table to it.
fn telemetry_end(path: Option<&str>, out: Option<&mut String>) -> Result<(), CliError> {
    let Some(path) = path else {
        return Ok(());
    };
    icrowd_obs::disable();
    icrowd_obs::write_jsonl(path)
        .map_err(|e| CliError(format!("cannot write telemetry to `{path}`: {e}")))?;
    if let Some(out) = out {
        out.push('\n');
        out.push_str(&icrowd_obs::summary_table());
        writeln!(out, "telemetry written to {path}").unwrap();
    }
    Ok(())
}

fn datasets_cmd() -> Result<String, CliError> {
    let mut out = String::new();
    writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8}",
        "dataset", "tasks", "domains", "workers"
    )
    .unwrap();
    for name in ["yahooqa", "item_compare", "table1", "quiz"] {
        let ds = dataset_by_name(name, 42)?;
        let (t, d, w) = ds.statistics();
        writeln!(out, "{name:<14} {t:>8} {d:>8} {w:>8}").unwrap();
    }
    Ok(out)
}

fn campaign_cmd(args: &Args) -> Result<String, CliError> {
    let name = args
        .get("dataset")
        .ok_or_else(|| CliError("campaign requires --dataset".into()))?;
    let config = campaign_config(args, name)?;
    let ds = dataset_by_name(name, config.seed)?;
    let approach = approach_by_name(args.get_or("approach", "icrowd"))?;
    let telemetry = telemetry_begin(args);
    let r = run_campaign(&ds, approach, &config);
    write_labels(args, &labels_lines(&r.labels))?;

    if args.has_flag("json") {
        telemetry_end(telemetry, None)?;
        let per_domain: Vec<serde_json::Value> = r
            .per_domain
            .iter()
            .map(|d| {
                serde_json::json!({
                    "domain": d.domain,
                    "accuracy": d.accuracy(),
                    "correct": d.correct,
                    "total": d.total,
                })
            })
            .collect();
        let mut v = serde_json::json!({
            "dataset": r.dataset,
            "approach": r.approach,
            "overall_accuracy": r.overall,
            "per_domain": per_domain,
            "answers": r.answers,
            "spend_cents": r.spend_cents,
            "gold_tasks": r.gold.len(),
            "elapsed_ms": r.elapsed_ms,
        });
        // Fault-free output stays byte-identical to the pre-fault CLI;
        // the extra accounting appears only when faults are requested.
        if config.faults.is_some() {
            let a = r.accounting;
            let f = r.fault_stats;
            if let serde_json::Value::Object(o) = &mut v {
                o.push(("completed".into(), serde_json::json!(r.completed)));
                o.push((
                    "accounting".into(),
                    serde_json::json!({
                        "submitted": a.answers_submitted,
                        "accepted": a.answers_accepted,
                        "rejected": a.answers_rejected,
                        "dropped": a.answers_dropped,
                        "paid": a.answers_paid,
                        "abandoned": a.answers_abandoned,
                    }),
                ));
                o.push((
                    "faults".into(),
                    serde_json::json!({
                        "drops": f.drops,
                        "dups": f.dups,
                        "lates": f.lates,
                        "stalls": f.stalls,
                        "churned": f.churned,
                    }),
                ));
            }
        }
        return serde_json::to_string_pretty(&v)
            .map(|s| s + "\n")
            .map_err(|e| CliError(format!("cannot serialize result: {e}")));
    }

    let mut out = String::new();
    writeln!(
        out,
        "{} on {} (seed {})",
        r.approach, r.dataset, config.seed
    )
    .unwrap();
    writeln!(out, "overall accuracy: {:.3}", r.overall).unwrap();
    for d in &r.per_domain {
        writeln!(
            out,
            "  {:<16} {:.3} ({}/{})",
            d.domain,
            d.accuracy(),
            d.correct,
            d.total
        )
        .unwrap();
    }
    writeln!(
        out,
        "answers: {}   spend: {} cents",
        r.answers, r.spend_cents
    )
    .unwrap();
    if config.faults.is_some() {
        let f = r.fault_stats;
        let a = r.accounting;
        writeln!(
            out,
            "faults: drop {} dup {} late {} stall {} churn {}",
            f.drops, f.dups, f.lates, f.stalls, f.churned
        )
        .unwrap();
        writeln!(
            out,
            "answers submitted: {}   accepted: {}   rejected: {}   completed: {}",
            a.answers_submitted, a.answers_accepted, a.answers_rejected, r.completed
        )
        .unwrap();
    }
    telemetry_end(telemetry, Some(&mut out))?;
    Ok(out)
}

fn compare_cmd(args: &Args) -> Result<String, CliError> {
    let name = args
        .get("dataset")
        .ok_or_else(|| CliError("compare requires --dataset".into()))?;
    let config = campaign_config(args, name)?;
    let ds = dataset_by_name(name, config.seed)?;
    let telemetry = telemetry_begin(args);
    let faulty = config.faults.is_some();
    let mut out = String::new();
    if faulty {
        writeln!(
            out,
            "{:<12} {:>9} {:>9} {:>8} {:>9} {:>6}",
            "approach", "overall", "answers", "cents", "rejected", "done"
        )
        .unwrap();
    } else {
        writeln!(
            out,
            "{:<12} {:>9} {:>9} {:>8}",
            "approach", "overall", "answers", "cents"
        )
        .unwrap();
    }
    for approach in [
        Approach::RandomMV,
        Approach::RandomEM,
        Approach::AvgAccPV,
        Approach::ICrowd(AssignStrategy::Adapt),
    ] {
        let r = run_campaign(&ds, approach, &config);
        if faulty {
            writeln!(
                out,
                "{:<12} {:>9.3} {:>9} {:>8} {:>9} {:>6}",
                r.approach,
                r.overall,
                r.answers,
                r.spend_cents,
                r.accounting.answers_rejected,
                if r.completed { "yes" } else { "no" }
            )
            .unwrap();
        } else {
            writeln!(
                out,
                "{:<12} {:>9.3} {:>9} {:>8}",
                r.approach, r.overall, r.answers, r.spend_cents
            )
            .unwrap();
        }
    }
    telemetry_end(telemetry, Some(&mut out))?;
    Ok(out)
}

fn graph_cmd(args: &Args) -> Result<String, CliError> {
    let name = args
        .get("dataset")
        .ok_or_else(|| CliError("graph requires --dataset".into()))?;
    let seed = args.get_parsed("seed", 42u64)?;
    let threshold = args.get_parsed("threshold", 0.5f64)?;
    let ds = dataset_by_name(name, seed)?;
    let metric = metric_by_name(args.get_or("metric", default_metric(name)))?;
    let built = metric.build(&ds.tasks, seed);
    let graph = GraphBuilder::new(threshold).build(&ds.tasks, &built);
    let mut out = String::new();
    writeln!(
        out,
        "{} graph over {}: {} nodes, {} edges, {} isolated (threshold {threshold})",
        metric.name(),
        ds.name,
        graph.num_tasks(),
        graph.num_edges(),
        graph.isolated_tasks().count()
    )
    .unwrap();
    let comps = graph.components();
    writeln!(out, "components: {}", comps.len()).unwrap();
    if graph.num_tasks() <= 20 {
        for (a, b, s) in graph.edges() {
            writeln!(out, "  {a} -- {b}  {s:.3}").unwrap();
        }
    }
    Ok(out)
}

fn quals_cmd(args: &Args) -> Result<String, CliError> {
    let name = args
        .get("dataset")
        .ok_or_else(|| CliError("quals requires --dataset".into()))?;
    let config = campaign_config(args, name)?;
    let ds = dataset_by_name(name, config.seed)?;
    let graph = icrowd_sim::campaign::build_graph(&ds, &config);
    let gold = icrowd_sim::campaign::select_gold(&ds, &graph, &config);
    let mut out = String::new();
    writeln!(
        out,
        "{} qualification tasks for {} ({}):",
        gold.len(),
        ds.name,
        config.qual.name()
    )
    .unwrap();
    for &g in &gold {
        writeln!(
            out,
            "  {g} [{}] {}",
            ds.domain_name(g),
            &ds.tasks[g].text.chars().take(60).collect::<String>()
        )
        .unwrap();
    }
    Ok(out)
}

/// Summarizes a finished (served) campaign, mirroring `campaign`'s
/// human-readable output.
fn campaign_summary(r: &CampaignResult, seed: u64) -> String {
    let mut out = String::new();
    writeln!(out, "{} on {} (seed {seed})", r.approach, r.dataset).unwrap();
    writeln!(out, "overall accuracy: {:.3}", r.overall).unwrap();
    writeln!(
        out,
        "answers: {}   spend: {} cents   completed: {}",
        r.answers,
        r.spend_cents,
        if r.completed { "yes" } else { "no" }
    )
    .unwrap();
    let a = r.accounting;
    writeln!(
        out,
        "accounting: submitted {} accepted {} rejected {} balanced {}",
        a.answers_submitted,
        a.answers_accepted,
        a.answers_rejected,
        a.balanced()
    )
    .unwrap();
    out
}

fn serve_cmd(args: &Args, notify: &mut dyn FnMut(&str)) -> Result<String, CliError> {
    let name = args
        .get("dataset")
        .ok_or_else(|| CliError("serve requires --dataset".into()))?;
    let config = campaign_config(args, name)?;
    let ds = dataset_by_name(name, config.seed)?;
    let approach = approach_by_name(args.get_or("approach", "icrowd"))?;
    let serve_config = ServeConfig {
        addr: args.get_or("addr", "127.0.0.1:7700").to_owned(),
        handlers: args.get_parsed("handlers", 4usize)?,
        queue_cap: args.get_parsed("queue", 64usize)?,
        idle_timeout_ms: args.get_parsed("idle-timeout-ms", 10_000u64)?,
        metrics_every_ms: args.get_parsed("metrics-every", 0u64)?,
        metrics_out: args.get("metrics-out").map(str::to_owned),
    };
    if serve_config.metrics_every_ms > 0 && args.get("telemetry").is_none() {
        // The window emitter reads the global registry; arm it even
        // without an exit-time export path.
        icrowd_obs::reset();
        icrowd_obs::enable();
    }
    let fsync_every = args.get_parsed("fsync", 1usize)?;
    let snapshot_every = args.get_parsed("snapshot-every", 64usize)?;
    let journal = args.get("journal");
    let recover_path = args.get("recover");
    if let (Some(j), Some(r)) = (journal, recover_path) {
        if j != r {
            return Err(CliError(format!(
                "--journal `{j}` and --recover `{r}` must name the same file \
                 (recovery reattaches the journal it replays)"
            )));
        }
    }
    let telemetry = telemetry_begin(args);
    let seed = config.seed;

    let engine = if let Some(path) = recover_path {
        let (engine, report) = icrowd_serve::recover(
            std::path::Path::new(path),
            name,
            ds,
            approach,
            config,
            fsync_every,
            snapshot_every,
        )
        .map_err(|e| CliError(format!("cannot recover from `{path}`: {e}")))?;
        notify(&format!(
            "recovered {} ops from {path} ({} snapshots verified, {} torn bytes truncated, \
             {} answers, balanced {})",
            report.ops_replayed,
            report.snapshots_verified,
            report.truncated_bytes,
            report.answers,
            report.balanced
        ));
        engine
    } else {
        let engine = CampaignEngine::new(name, ds, approach, config);
        if let Some(path) = journal {
            engine
                .start_journal(std::path::Path::new(path), fsync_every, snapshot_every)
                .map_err(|e| CliError(format!("cannot create journal `{path}`: {e}")))?;
        }
        engine
    };
    let handle = icrowd_serve::serve(engine, &serve_config)
        .map_err(|e| CliError(format!("cannot bind `{}`: {e}", serve_config.addr)))?;
    // Emitted before blocking so scripts can discover an ephemeral
    // port; everything else arrives at drain.
    notify(&format!("icrowd-serve listening on {}", handle.addr()));

    let result = handle.join();
    write_labels(args, &labels_lines(&result.labels))?;
    let mut out = campaign_summary(&result, seed);
    telemetry_end(telemetry, Some(&mut out))?;
    Ok(out)
}

fn loadgen_cmd(args: &Args) -> Result<String, CliError> {
    let addr_file = args.get("addr-file").map(str::to_owned);
    let addr = match (args.get("addr"), &addr_file) {
        (Some(a), _) => a.to_owned(),
        (None, Some(_)) => String::new(), // resolved from the file per connection
        (None, None) => return Err(CliError("loadgen requires --addr or --addr-file".into())),
    };
    let faults = args
        .get("faults")
        .map(|spec| {
            ClientFaultConfig::parse(spec)
                .map_err(|e| CliError(format!("invalid --faults spec: {e}")))
        })
        .transpose()?;
    let config = LoadgenConfig {
        addr,
        addr_file,
        workers: args.get_parsed("workers", 8usize)?,
        think_ms: args.get_parsed("think-ms", 0u64)?,
        give_up_ms: args.get_parsed("give-up-ms", 30_000u64)?,
        faults,
        shutdown: !args.has_flag("no-shutdown"),
        fetch_labels: true,
    };
    let telemetry = telemetry_begin(args);
    let report = run_loadgen(&config).map_err(CliError)?;
    if let Some(labels) = &report.labels {
        write_labels(args, labels)?;
    }

    let mut out = String::new();
    let target = if config.addr.is_empty() {
        format!("addr-file {}", config.addr_file.as_deref().unwrap_or("?"))
    } else {
        config.addr.clone()
    };
    writeln!(
        out,
        "loadgen: {} threads over {} workers against {target}",
        report.threads, report.roster
    )
    .unwrap();
    writeln!(
        out,
        "requests: {}   accepted: {}   rejected: {}   dups sent: {}   retries: {}   busy: {}",
        report.requests,
        report.accepted,
        report.rejected,
        report.dups_sent,
        report.retries,
        report.busy
    )
    .unwrap();
    writeln!(
        out,
        "complete: {}   balanced: {}   elapsed: {:.2}s   throughput: {:.1} answers/s",
        if report.complete { "yes" } else { "no" },
        report.balanced,
        report.elapsed.as_secs_f64(),
        report.throughput
    )
    .unwrap();
    writeln!(
        out,
        "latency us: request p50 {:.0} p99 {:.0}   submit p50 {:.0} p99 {:.0}",
        report.request_p50_us, report.request_p99_us, report.submit_p50_us, report.submit_p99_us
    )
    .unwrap();
    telemetry_end(telemetry, Some(&mut out))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &str) -> Result<String, CliError> {
        run(&Args::parse(line.split_whitespace().map(str::to_owned)).unwrap())
    }

    #[test]
    fn help_and_datasets() {
        assert!(run_line("help").unwrap().contains("USAGE"));
        let d = run_line("datasets").unwrap();
        assert!(d.contains("yahooqa"));
        assert!(d.contains("360"), "item_compare task count shown");
    }

    #[test]
    fn campaign_on_table1_prints_accuracy() {
        let out = run_line("campaign --dataset table1 --approach random-mv --q 3").unwrap();
        assert!(out.contains("overall accuracy"), "{out}");
        assert!(out.contains("RandomMV"));
    }

    #[test]
    fn campaign_json_output_parses() {
        let out = run_line("campaign --dataset table1 --approach icrowd --q 3 --json").unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        assert_eq!(v["approach"], "iCrowd");
        assert!(v["overall_accuracy"].as_f64().unwrap() >= 0.0);
        assert_eq!(v["per_domain"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn graph_command_prints_edges_for_small_sets() {
        let out = run_line("graph --dataset table1 --metric jaccard --threshold 0.5").unwrap();
        assert!(out.contains("12 nodes"));
        assert!(out.contains("t2 -- t7"), "{out}");
    }

    #[test]
    fn quals_command_lists_gold_tasks() {
        let out = run_line("quals --dataset table1 --q 3").unwrap();
        assert!(out.contains("3 qualification tasks"));
        assert!(out.contains("InfQF"));
    }

    #[test]
    fn campaign_telemetry_writes_parseable_jsonl() {
        let _g = crate::obs_test_guard();
        let path = std::env::temp_dir().join("icrowd_cli_telemetry_test.jsonl");
        let path_str = path.to_str().unwrap().to_owned();
        let out = run_line(&format!(
            "campaign --dataset table1 --approach icrowd --q 3 --telemetry {path_str}"
        ))
        .unwrap();
        assert!(out.contains("telemetry summary"), "{out}");
        assert!(out.contains("telemetry written to"), "{out}");

        let text = std::fs::read_to_string(&path).unwrap();
        let mut span_names = Vec::new();
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("every line parses");
            if v["type"] == "span" {
                assert!(v["count"].as_u64().unwrap() > 0);
                assert!(v["total_ns"].as_u64().is_some());
                assert!(v["p50_ns"].as_u64().is_some());
                assert!(v["p99_ns"].as_u64().is_some());
                span_names.push(v["name"].as_str().unwrap().to_owned());
            }
        }
        for expected in [
            "index.build",
            "ppr.solve",
            "assign.loop",
            "estimator.refresh",
        ] {
            assert!(
                span_names.iter().any(|n| n == expected),
                "missing span {expected} in {span_names:?}"
            );
        }
        // Marketplace lifecycle events are bridged into the same sink.
        assert!(text.contains("\"type\":\"counter\""), "{text}");
        assert!(text.contains("market.answer_submitted"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn campaign_with_faults_reports_accounting() {
        let out = run_line(
            "campaign --dataset table1 --approach icrowd --q 3 --faults drop=0.2,stall=0.05,seed=7",
        )
        .unwrap();
        assert!(out.contains("faults: drop"), "{out}");
        assert!(out.contains("rejected:"), "{out}");
        // Deterministic under a fixed seed.
        let again = run_line(
            "campaign --dataset table1 --approach icrowd --q 3 --faults drop=0.2,stall=0.05,seed=7",
        )
        .unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn campaign_json_with_faults_carries_accounting() {
        let out = run_line(
            "campaign --dataset table1 --approach icrowd --q 3 --faults dup=0.3,seed=1 --json",
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        let a = &v["accounting"];
        assert_eq!(
            a["accepted"].as_u64().unwrap() + a["rejected"].as_u64().unwrap(),
            a["submitted"].as_u64().unwrap()
        );
        assert!(v["faults"]["dups"].as_u64().unwrap() > 0);
    }

    #[test]
    fn zero_fault_spec_output_matches_fault_free_run() {
        // An all-zero fault plan must not perturb the campaign itself —
        // only the extra reporting lines differ.
        let plain = run_line("campaign --dataset table1 --approach icrowd --q 3").unwrap();
        let zero =
            run_line("campaign --dataset table1 --approach icrowd --q 3 --faults seed=9").unwrap();
        let stripped: String = zero
            .lines()
            .filter(|l| !l.starts_with("faults:") && !l.starts_with("answers submitted:"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(plain, stripped);
    }

    #[test]
    fn compare_with_faults_adds_rejection_column() {
        let out = run_line("compare --dataset table1 --q 3 --faults drop=0.1,seed=3").unwrap();
        assert!(out.contains("rejected"), "{out}");
        assert!(out.contains("done"), "{out}");
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(run_line("nonsense")
            .unwrap_err()
            .0
            .contains("unknown subcommand"));
        assert!(run_line("campaign").unwrap_err().0.contains("--dataset"));
        assert!(run_line("campaign --dataset mars")
            .unwrap_err()
            .0
            .contains("unknown dataset"));
        assert!(run_line("campaign --dataset table1 --approach magic")
            .unwrap_err()
            .0
            .contains("unknown approach"));
        assert!(run_line("campaign --dataset table1 --k 0")
            .unwrap_err()
            .0
            .contains("invalid configuration"));
        assert!(run_line("campaign --dataset table1 --faults drop=2.0")
            .unwrap_err()
            .0
            .contains("invalid --faults"));
        assert!(run_line("campaign --dataset table1 --faults wobble=0.1")
            .unwrap_err()
            .0
            .contains("invalid --faults"));
    }

    /// Regression: the serving commands reject malformed options with an
    /// error (nonzero exit in `main`) instead of panicking — none of
    /// these may reach the network.
    #[test]
    fn serving_command_errors_are_user_facing() {
        assert!(run_line("serve").unwrap_err().0.contains("--dataset"));
        assert!(run_line("loadgen").unwrap_err().0.contains("--addr"));
        assert!(run_line("loadgen --addr 127.0.0.1:1 --workers banana")
            .unwrap_err()
            .0
            .contains("banana"));
        assert!(run_line("loadgen --addr 127.0.0.1:1 --faults dup=banana")
            .unwrap_err()
            .0
            .contains("invalid --faults"));
        assert!(run_line("loadgen --addr 127.0.0.1:1 --faults late=0.5:xx")
            .unwrap_err()
            .0
            .contains("invalid --faults"));
        assert!(run_line("serve --dataset table1 --handlers many")
            .unwrap_err()
            .0
            .contains("many"));
    }

    #[test]
    fn campaign_labels_out_writes_canonical_lines() {
        let path = std::env::temp_dir().join("icrowd_cli_labels_test.txt");
        let path_str = path.to_str().unwrap().to_owned();
        run_line(&format!(
            "campaign --dataset table1 --approach random-mv --q 3 --labels-out {path_str}"
        ))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 12, "one line per table1 task");
        for line in text.lines() {
            let (t, a) = line.split_once(' ').expect("task answer");
            t.parse::<u32>().unwrap();
            a.parse::<u8>().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
