//! # icrowd-cli
//!
//! Library backing the `icrowd` command-line tool: a tiny argument
//! parser (no external dependencies) and the command implementations,
//! separated from `main` so they are unit-testable.
//!
//! ```text
//! icrowd datasets
//! icrowd campaign --dataset yahooqa --approach icrowd --seed 42 [--json]
//! icrowd compare  --dataset item_compare [--seed N]
//! icrowd graph    --dataset table1 --metric jaccard --threshold 0.5
//! icrowd quals    --dataset yahooqa --q 10
//! ```

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod args;
pub mod commands;
pub mod obs_cmd;

pub use args::{Args, CliError};
pub use commands::{run, run_with};

/// The telemetry registry is process-global; tests that arm or reset it
/// serialize through this lock so the test harness's thread pool cannot
/// interleave enable/reset calls across modules.
#[cfg(test)]
pub(crate) fn obs_test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
