//! # icrowd-cli
//!
//! Library backing the `icrowd` command-line tool: a tiny argument
//! parser (no external dependencies) and the command implementations,
//! separated from `main` so they are unit-testable.
//!
//! ```text
//! icrowd datasets
//! icrowd campaign --dataset yahooqa --approach icrowd --seed 42 [--json]
//! icrowd compare  --dataset item_compare [--seed N]
//! icrowd graph    --dataset table1 --metric jaccard --threshold 0.5
//! icrowd quals    --dataset yahooqa --q 10
//! ```

#![warn(missing_docs)]
#![warn(clippy::dbg_macro)]

pub mod args;
pub mod commands;

pub use args::{Args, CliError};
pub use commands::{run, run_with};
